//! Differential session-fuzz suite: a persistent [`Session`] driven
//! through randomized `push`/`pop`/`assert`/`check` interleavings must be
//! *invisible* next to a fresh solver — at every `check`, the session's
//! verdict must equal what a brand-new orchestrator says about the
//! problem as currently asserted, and every satisfiable model must
//! re-check against that problem.
//!
//! The corpus is restricted to the Boolean-linear fragment over small
//! boxed integers (the `solver_agreement` shape), where verdicts are
//! decisive: the only legitimate difference between a warm session and a
//! fresh solve is effort, never the answer. Scripts run both with the
//! theory-verdict cache on (default) and off.
//!
//! The pinned tape in `testkit-regressions/session_agreement.txt` locks
//! in the stale-learned-clause hazard shape — an UNSAT check inside a
//! pushed frame followed by checks after `pop` — alongside the explicit
//! deterministic regressions below.

use absolver::core::{Orchestrator, OrchestratorOptions, Outcome, Session, VarKind};
use absolver::linear::CmpOp;
use absolver::nonlinear::Expr;
use absolver::num::{Interval, Rational};
use absolver_testkit::{gen, property, Gen};

/// One step of a session script. Atom/clause indices are resolved modulo
/// the number of atoms declared *so far*, so tapes stay meaningful under
/// shrinking.
#[derive(Clone, Debug)]
enum Op {
    /// Declare a fresh linear atom `k1·v1 + k2·v2 ⋈ rhs` (no clause yet).
    Atom {
        v1: usize,
        v2: usize,
        k1: i64,
        k2: i64,
        rhs: i64,
        cmp: usize,
    },
    /// Assert a clause over already-declared atoms.
    Clause {
        picks: Vec<(usize, bool)>,
    },
    Push,
    Pop,
    Check,
}

fn atom_gen() -> Gen<Op> {
    let var = gen::ints(0..=1usize);
    let coeff = gen::ints(-2i64..=2);
    let rhs = gen::ints(-4i64..=4);
    let cmp = gen::ints(0..=4usize);
    Gen::new(move |src| Op::Atom {
        v1: var.generate(src),
        v2: var.generate(src),
        k1: coeff.generate(src),
        k2: coeff.generate(src),
        rhs: rhs.generate(src),
        cmp: cmp.generate(src),
    })
}

fn clause_gen() -> Gen<Op> {
    let pick = {
        let idx = gen::ints(0..=7usize);
        let sign = gen::bool_any();
        Gen::new(move |src| (idx.generate(src), sign.generate(src)))
    };
    gen::vec_of(pick, 1..=3).map(|picks| Op::Clause { picks })
}

/// Weighted op mix: assertions dominate, with enough frame traffic and
/// checks to interleave them meaningfully.
fn op_gen() -> Gen<Op> {
    gen::one_of(vec![
        atom_gen(),
        atom_gen(),
        atom_gen(),
        clause_gen(),
        clause_gen(),
        clause_gen(),
        Gen::new(|_| Op::Push),
        Gen::new(|_| Op::Push),
        Gen::new(|_| Op::Pop),
        Gen::new(|_| Op::Pop),
        Gen::new(|_| Op::Check),
        Gen::new(|_| Op::Check),
        Gen::new(|_| Op::Check),
    ])
}

fn cmp_op(idx: usize) -> CmpOp {
    match idx % 5 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        _ => CmpOp::Eq,
    }
}

fn verdict(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Sat(_) => "sat",
        Outcome::Unsat => "unsat",
        Outcome::Unknown => "unknown",
    }
}

/// Replays `ops` through one persistent session, checking every verdict
/// and model against a fresh solver on the identical problem. Returns the
/// number of checks run.
fn run_script(label: &str, ops: &[Op], options: OrchestratorOptions) -> usize {
    let orc = Orchestrator::with_defaults().with_options(options);
    let mut session = Session::with_orchestrator(orc);
    let vars: Vec<_> = (0..2)
        .map(|i| {
            session
                .arith_var(&format!("v{i}"), VarKind::Int)
                .expect("fresh names cannot clash")
        })
        .collect();
    for &v in &vars {
        session
            .assert_range(v, Interval::new(-3.0, 3.0))
            .expect("declared above");
        let lo = session
            .atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-3))
            .expect("declared");
        session.require(lo.positive());
        let hi = session
            .atom(Expr::var(v), CmpOp::Le, Rational::from_int(3))
            .expect("declared");
        session.require(hi.positive());
    }
    let mut atoms = Vec::new();
    let mut checks = 0usize;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Atom {
                v1,
                v2,
                k1,
                k2,
                rhs,
                cmp,
            } => {
                let expr =
                    Expr::int(*k1) * Expr::var(vars[*v1]) + Expr::int(*k2) * Expr::var(vars[*v2]);
                atoms.push(
                    session
                        .atom(expr, cmp_op(*cmp), Rational::from_int(*rhs))
                        .expect("declared"),
                );
            }
            Op::Clause { picks } => {
                if atoms.is_empty() {
                    continue;
                }
                let lits: Vec<_> = picks
                    .iter()
                    .map(|&(idx, positive)| {
                        let a = atoms[idx % atoms.len()];
                        if positive {
                            a.positive()
                        } else {
                            a.negative()
                        }
                    })
                    .collect();
                session.assert_clause(lits);
            }
            Op::Push => session.push(),
            Op::Pop => {
                // Popping the root is an error by contract; scripts just
                // skip it.
                let _ = session.pop();
            }
            Op::Check => {
                checks += 1;
                let got = session
                    .check()
                    .unwrap_or_else(|e| panic!("{label}: step {step}: session check failed: {e}"));
                let want = Orchestrator::with_defaults()
                    .solve(session.problem())
                    .unwrap_or_else(|e| panic!("{label}: step {step}: oracle failed: {e}"));
                assert_eq!(
                    verdict(&got),
                    verdict(&want),
                    "{label}: step {step} (check {checks}, depth {}): session says {} but a \
                     fresh solver says {}",
                    session.depth(),
                    verdict(&got),
                    verdict(&want),
                );
                if let Some(m) = got.model() {
                    assert!(
                        m.satisfies(session.problem(), 1e-9),
                        "{label}: step {step}: session model fails re-check"
                    );
                }
                if let Some(m) = want.model() {
                    assert!(
                        m.satisfies(session.problem(), 1e-9),
                        "{label}: step {step}: oracle model fails re-check"
                    );
                }
            }
        }
    }
    checks
}

property! {
    #![cases = 128]

    /// The tentpole differential property: randomized interleavings of
    /// `push`/`pop`/`assert`/`check`, verdict- and model-checked against
    /// a fresh-solver-per-check oracle, with the theory cache on and off.
    fn session_interleavings_agree_with_fresh_solver(
        ops in gen::vec_of(op_gen(), 4..=24),
    ) {
        run_script("cache-on", &ops, OrchestratorOptions::default());
        run_script(
            "cache-off",
            &ops,
            OrchestratorOptions {
                theory_cache: false,
                ..Default::default()
            },
        );
    }
}

// ----------------------------------------------------------------------
// Deterministic stale-learned-clause regressions
// ----------------------------------------------------------------------

/// The hazard the frame contract exists to prevent: atoms declared in
/// frame 2 die with the `pop`, and a later assertion re-uses their
/// variable indices with a *different* meaning. A lemma learned from the
/// frame-2 UNSAT conflict (`¬a ∨ ¬b` over the old atoms) would, if kept,
/// incorrectly constrain the recycled indices and flip a satisfiable
/// frame-1 check to UNSAT.
#[test]
fn popped_frame_lemmas_do_not_poison_recycled_variables() {
    let mut session = Session::new();
    let x = session.arith_var("x", VarKind::Int).unwrap();
    session.assert_range(x, Interval::new(-3.0, 3.0)).unwrap();
    let lo = session
        .atom(Expr::var(x), CmpOp::Ge, Rational::from_int(-3))
        .expect("declared");
    session.require(lo.positive());
    let hi = session
        .atom(Expr::var(x), CmpOp::Le, Rational::from_int(3))
        .expect("declared");
    session.require(hi.positive());
    assert!(session.check().unwrap().is_sat(), "frame 1 baseline");

    // Frame 2: two contradictory atoms, both asserted — the theory
    // conflict teaches the solver `¬(x ≥ 2) ∨ ¬(x ≤ 1)`.
    session.push();
    let ge2 = session
        .atom(Expr::var(x), CmpOp::Ge, Rational::from_int(2))
        .expect("declared");
    session.require(ge2.positive());
    let le1 = session
        .atom(Expr::var(x), CmpOp::Le, Rational::from_int(1))
        .expect("declared");
    session.require(le1.positive());
    assert!(
        session.check().unwrap().is_unsat(),
        "frame 2 is contradictory"
    );
    session.pop().unwrap();

    // Recycle the indices: the same Boolean slots now mean `x ≥ 2` and
    // `x ≤ 3`, which are jointly satisfiable — and we demand both. A
    // stale frame-2 lemma over these indices would force UNSAT.
    let ge2_again = session
        .atom(Expr::var(x), CmpOp::Ge, Rational::from_int(2))
        .expect("declared");
    session.require(ge2_again.positive());
    let le3 = session
        .atom(Expr::var(x), CmpOp::Le, Rational::from_int(3))
        .expect("declared");
    session.require(le3.positive());
    let outcome = session.check().unwrap();
    assert!(
        outcome.is_sat(),
        "stale frame-2 lemma flipped a satisfiable frame-1 check: {outcome:?}"
    );
    let model = outcome.model().expect("sat outcome carries a model");
    assert!(model.satisfies(session.problem(), 1e-9));
}

/// Range flavour of the same hazard: an UNSAT proof found under a
/// frame-local range tightening must not survive the `pop` that widens
/// the box back out (nonlinear path, where ranges are load-bearing).
#[test]
fn popped_range_tightening_does_not_pin_unsat() {
    let mut session = Session::new();
    let x = session.arith_var("x", VarKind::Real).unwrap();
    session.assert_range(x, Interval::new(-2.0, 2.0)).unwrap();
    // x² = 2 — satisfiable at ±√2 in the full box.
    let a = session
        .atom(Expr::var(x).pow(2), CmpOp::Eq, Rational::from_int(2))
        .expect("declared");
    session.require(a.positive());
    assert!(session.check().unwrap().is_sat(), "±√2 is in the box");

    session.push();
    session.assert_range(x, Interval::new(-1.0, 1.0)).unwrap();
    assert!(
        session.check().unwrap().is_unsat(),
        "x² = 2 has no root in [-1, 1]"
    );
    session.pop().unwrap();

    let outcome = session.check().unwrap();
    assert!(
        outcome.is_sat(),
        "frame-local tightening leaked: post-pop check is {outcome:?}"
    );
    let model = outcome.model().expect("sat outcome carries a model");
    assert!(model.satisfies(session.problem(), 1e-6));
}
