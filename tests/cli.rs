//! End-to-end tests of the `absolver` command-line binary: documented
//! exit codes, `--stats json` machine-readable output, and `--trace`
//! JSONL emission.
//!
//! Exit-code contract (also printed by `absolver --help`):
//! 10 sat, 20 unsat, 30 unknown, 40 iteration limit, 2 usage/parse error.

use std::io::Write;
use std::process::{Command, Output, Stdio};

const FIG2: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig2.dimacs");

fn absolver() -> Command {
    Command::new(env!("CARGO_BIN_EXE_absolver"))
}

/// Runs the binary with `input` piped to stdin and returns the output.
fn run_stdin(args: &[&str], input: &str) -> Output {
    let mut child = absolver()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn absolver");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("wait for absolver")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("process exited normally")
}

#[test]
fn sat_input_exits_10() {
    let out = absolver().arg(FIG2).output().expect("run absolver");
    assert_eq!(
        exit_code(&out),
        10,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s SATISFIABLE"), "stdout: {stdout}");
}

#[test]
fn unsat_input_exits_20() {
    let out = run_stdin(&[], "p cnf 1 2\n1 0\n-1 0\n");
    assert_eq!(exit_code(&out), 20);
    assert!(String::from_utf8_lossy(&out.stdout).contains("s UNSATISFIABLE"));
}

#[test]
fn unknown_verdict_exits_30() {
    // The penalty engine alone cannot refute x*x <= -1, so the solver
    // must admit Unknown rather than claim a verdict. (The preprocessor
    // would refute this statically, hence --no-preprocess.)
    let input = "p cnf 1 1\n1 0\nc def real 1 x * x <= -1\nc range x -10 10\n";
    let out = run_stdin(&["--nonlinear", "penalty", "--no-preprocess"], input);
    assert_eq!(
        exit_code(&out),
        30,
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("s UNKNOWN"));
}

#[test]
fn iteration_limit_exits_40() {
    let out = absolver()
        .args(["--max-iterations", "0", FIG2])
        .output()
        .expect("run");
    assert_eq!(
        exit_code(&out),
        40,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn parse_error_exits_2() {
    let out = run_stdin(&[], "this is not dimacs\n");
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn near_miss_directive_is_a_parse_error() {
    // Satellite regression: a misspelled directive must be a hard error,
    // not a silently ignored comment that flips the verdict.
    let input = "p cnf 1 1\n1 0\nc dff int 1 i >= 0\n";
    let out = run_stdin(&[], input);
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("misspelled"), "stderr: {stderr}");
}

#[test]
fn stats_json_emits_one_valid_object_with_phase_timings() {
    let out = absolver()
        .args(["--stats", "json", FIG2])
        .output()
        .expect("run");
    assert_eq!(exit_code(&out), 10);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("a JSON stats line on stdout");
    assert!(json_line.ends_with('}'));
    for key in [
        "\"boolean_iterations\":",
        "\"theory_checks\":",
        "\"simplex_pivots\":",
        "\"hc4_contractions\":",
        "\"phase\":{",
        "\"boolean_us\":",
        "\"linear_us\":",
        "\"nonlinear_us\":",
        "\"conflict_min_us\":",
        "\"elapsed_us\":",
    ] {
        assert!(json_line.contains(key), "missing {key} in {json_line}");
    }
    // No pretty-printing, no trailing garbage: exactly one object.
    assert_eq!(json_line.matches("\"elapsed_us\":").count(), 1);
}

#[test]
fn stats_json_works_in_parallel_mode() {
    let out = absolver()
        .args(["--jobs", "2", "--stats", "json", FIG2])
        .output()
        .expect("run");
    assert_eq!(exit_code(&out), 10);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("a JSON stats line on stdout");
    for key in [
        "\"jobs\":",
        "\"clauses_shared\":",
        "\"share_latency_us\":",
        "\"elapsed_us\":",
    ] {
        assert!(json_line.contains(key), "missing {key} in {json_line}");
    }
}

#[test]
fn trace_flag_writes_jsonl_events() {
    let dir = std::env::temp_dir().join(format!("absolver-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let trace_path = dir.join("fig2.trace.jsonl");
    let out = absolver()
        .args(["--trace", trace_path.to_str().unwrap(), FIG2])
        .output()
        .expect("run");
    assert_eq!(exit_code(&out), 10);
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let lines: Vec<&str> = trace.lines().collect();
    assert!(!lines.is_empty(), "trace must not be empty");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not JSONL: {line}"
        );
    }
    assert!(trace.contains("\"kind\":\"solve.start\""));
    assert!(trace.contains("\"kind\":\"solve.end\""));
    assert!(trace.contains("\"kind\":\"theory.check\""));
    std::fs::remove_dir_all(&dir).ok();
}

const MALFORMED: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/analyze/malformed.dimacs"
);
const LINTS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/analyze/lints.dimacs");

#[test]
fn check_clean_input_exits_0() {
    let out = absolver().args(["check", FIG2]).output().expect("run");
    assert_eq!(
        exit_code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 error(s), 0 warning(s)"),
        "stdout: {stdout}"
    );
}

#[test]
fn check_warnings_exit_3() {
    let out = absolver().args(["check", LINTS]).output().expect("run");
    assert_eq!(exit_code(&out), 3);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Compiler-style anchors: file:line:col: severity[code]: message.
    assert!(stdout.contains(":5:1: warning[AB006]:"), "stdout: {stdout}");
    assert!(
        stdout.contains("0 error(s), 6 warning(s)"),
        "stdout: {stdout}"
    );
}

#[test]
fn check_errors_exit_4_with_stable_json() {
    let out = absolver()
        .args(["check", "--json", MALFORMED])
        .output()
        .expect("run");
    assert_eq!(exit_code(&out), 4);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/analyze/malformed.expected.json"
    ))
    .expect("golden file");
    assert_eq!(stdout.trim_end(), expected.trim_end());
}

#[test]
fn check_reads_stdin() {
    let out = run_stdin(&["check"], "p cnf 1 1\n1 -1 0\n");
    assert_eq!(exit_code(&out), 3);
    assert!(String::from_utf8_lossy(&out.stdout).contains("<stdin>:2:1: warning[AB006]"));
}

#[test]
fn check_missing_file_exits_2() {
    let out = absolver()
        .args(["check", "/no/such/file.dimacs"])
        .output()
        .expect("run");
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn preprocess_flags_agree_on_verdict() {
    let on = absolver().args(["--quiet", FIG2]).output().expect("run");
    let off = absolver()
        .args(["--no-preprocess", "--quiet", FIG2])
        .output()
        .expect("run");
    assert_eq!(exit_code(&on), 10);
    assert_eq!(exit_code(&off), 10);
}

#[test]
fn preprocess_stats_appear_in_json() {
    let out = absolver()
        .args(["--stats", "json", "--quiet", FIG2])
        .output()
        .expect("run");
    assert_eq!(exit_code(&out), 10);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("stats JSON");
    for key in [
        "\"preprocess\":{",
        "\"vars_eliminated\":",
        "\"ranges_tightened\":",
        "\"time_us\":",
    ] {
        assert!(json_line.contains(key), "missing {key} in {json_line}");
    }
}

// ----------------------------------------------------------------------
// `absolver session` — the line-oriented incremental script mode
// ----------------------------------------------------------------------

/// A push/pop script whose three checks go sat → unsat → sat.
const SESSION_SCRIPT: &str = "\
# incremental script
var real x
def real 1 x >= 0
assert 1
check
model
push
def real 2 x <= -1
assert 2
check
pop
check
model
";

#[test]
fn session_reads_stdin_and_exits_with_last_check() {
    let out = run_stdin(&["session"], SESSION_SCRIPT);
    assert_eq!(
        exit_code(&out),
        10,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let verdicts: Vec<&str> = stdout.lines().filter(|l| l.starts_with("s ")).collect();
    assert_eq!(
        verdicts,
        ["s SATISFIABLE", "s UNSATISFIABLE", "s SATISFIABLE"],
        "stdout: {stdout}"
    );
    // Both `model` commands fall on satisfiable checks.
    assert_eq!(stdout.matches("v x = ").count(), 2, "stdout: {stdout}");
}

#[test]
fn session_reads_a_script_file() {
    let dir = std::env::temp_dir().join(format!("absolver-cli-session-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("script.abs");
    std::fs::write(&path, "assert 1\nassert -1\ncheck\n").expect("write script");
    let out = absolver()
        .args(["session", path.to_str().unwrap()])
        .output()
        .expect("run");
    assert_eq!(exit_code(&out), 20);
    assert!(String::from_utf8_lossy(&out.stdout).contains("s UNSATISFIABLE"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_without_checks_exits_0() {
    let out = run_stdin(&["session"], "var real x\npush\npop\n");
    assert_eq!(exit_code(&out), 0);
}

#[test]
fn session_unknown_command_is_ab020() {
    let out = run_stdin(&["session"], "check\nfrobnicate 1 2\n");
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("<stdin>:2:1: error[AB020]:"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("frobnicate"), "stderr: {stderr}");
}

#[test]
fn session_malformed_command_is_ab021_with_span() {
    // The parse error points into the constraint body, not at column 1.
    let out = run_stdin(&["session"], "var real x\ndef real 1 x >=\n");
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("<stdin>:2:16: error[AB021]:"),
        "stderr: {stderr}"
    );
}

#[test]
fn session_undeclared_variable_is_ab021() {
    let out = run_stdin(&["session"], "range nope 0 1\n");
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error[AB021]:") && stderr.contains("nope"),
        "stderr: {stderr}"
    );
}

#[test]
fn session_pop_without_frame_is_ab022() {
    let out = run_stdin(&["session"], "push\npop\npop\n");
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("<stdin>:3:1: error[AB022]:"),
        "stderr: {stderr}"
    );
}

#[test]
fn session_stats_json_emits_per_check_and_cumulative_blocks() {
    let out = run_stdin(&["session", "--stats", "json"], SESSION_SCRIPT);
    assert_eq!(exit_code(&out), 10);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_lines: Vec<&str> = stdout.lines().filter(|l| l.starts_with('{')).collect();
    // Three per-check blocks plus one cumulative block, all one-line JSON.
    assert_eq!(json_lines.len(), 4, "stdout: {stdout}");
    for (i, expected) in [("1", "sat"), ("2", "unsat"), ("3", "sat")]
        .iter()
        .enumerate()
    {
        let line = json_lines[i];
        assert!(
            line.contains(&format!("\"check\":{}", expected.0))
                && line.contains(&format!("\"verdict\":\"{}\"", expected.1))
                && line.contains("\"depth\":")
                && line.contains("\"stats\":{")
                && line.contains("\"elapsed_us\":"),
            "check block {i}: {line}"
        );
    }
    let cumulative = json_lines[3];
    for key in [
        "\"checks\":3",
        "\"lemmas_retained\":",
        "\"cumulative\":{",
        "\"theory_cache_hits\":",
    ] {
        assert!(cumulative.contains(key), "missing {key} in {cumulative}");
    }
}

#[test]
fn session_quiet_suppresses_models_but_not_verdicts() {
    let out = run_stdin(&["session", "--quiet"], SESSION_SCRIPT);
    assert_eq!(exit_code(&out), 10);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().filter(|l| l.starts_with("s ")).count(), 3);
    assert!(!stdout.contains("v x = "), "stdout: {stdout}");
}

#[test]
fn help_documents_exit_codes() {
    let out = absolver().arg("--help").output().expect("run");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    for needle in ["10 sat", "20 unsat", "30 unknown", "40 iteration limit"] {
        assert!(text.contains(needle), "--help must document `{needle}`");
    }
}
