//! Property suite for the contractor cascade: every contractor (HC4,
//! BC3, interval Newton — and their composition) must only ever *shrink*
//! a box, and must never prune a known solution out of it.
//!
//! The corpus is point-anchored: each case first draws a random point,
//! then builds a constraint that point satisfies with a comfortable
//! margin, then a random box around the point. Failures shrink via the
//! testkit's tape shrinker and are pinned under `testkit-regressions/`.

use absolver::linear::CmpOp;
use absolver::nonlinear::hc4::{hc4_revise, Contraction};
use absolver::nonlinear::{
    bc3_revise, cascade_contract, newton_revise, ContractorConfig, Expr, NlConstraint,
};
use absolver::num::{Interval, Rational};
use absolver_testkit::{assume, domain, gen, property, Gen};

const NUM_VARS: usize = 2;

/// Expressions for the inequality corpus: polynomial-ish with trig and
/// division, like the solver sees.
fn expr_gen() -> Gen<Expr> {
    domain::expr(NUM_VARS, 3, domain::ExprProfile::polyish())
}

/// A random point with coordinates in `[-4, 4]`.
fn point_gen() -> Gen<Vec<f64>> {
    gen::vec_of(gen::f64_in(-4.0, 4.0), NUM_VARS..=NUM_VARS)
}

/// A random box that contains `p` (each side extends `[0, 4]` outward).
fn box_around(p: &[f64], pads: &[(f64, f64)]) -> Vec<Interval> {
    p.iter()
        .zip(pads)
        .map(|(&x, &(a, b))| Interval::new(x - a, x + b))
        .collect()
}

fn pads_gen() -> Gen<Vec<(f64, f64)>> {
    let pad = Gen::new(|src| {
        (
            gen::f64_in(0.0, 4.0).generate(src),
            gen::f64_in(0.0, 4.0).generate(src),
        )
    });
    gen::vec_of(pad, NUM_VARS..=NUM_VARS)
}

/// Real-definedness: every subexpression evaluates to a finite value.
/// IEEE `f64` can "recover" from an undefined subterm (`0 / (x/0) = 0`)
/// where real — and hence interval — arithmetic says undefined, and a
/// contractor is *right* to refute such a point. (First pinned
/// counterexample of this suite: `0/(x/0) + 0 ≤ ½` at `x = -4`.)
fn real_defined(e: &Expr, point: &[f64]) -> bool {
    let own = e.eval_f64(point).is_finite();
    own && match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Neg(a)
        | Expr::Pow(a, _)
        | Expr::Sin(a)
        | Expr::Cos(a)
        | Expr::Exp(a)
        | Expr::Ln(a)
        | Expr::Sqrt(a)
        | Expr::Abs(a) => real_defined(a, point),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
            real_defined(a, point) && real_defined(b, point)
        }
    }
}

/// Builds an inequality that `p` satisfies with margin ≥ 0.5 — wide
/// enough that f64 evaluation noise cannot flip real-arithmetic truth.
fn anchored_constraint(e: Expr, p: &[f64], ge: bool, slack: f64) -> Option<NlConstraint> {
    if !real_defined(&e, p) {
        return None;
    }
    let v = e.eval_f64(p);
    if !v.is_finite() || v.abs() > 1e6 {
        return None;
    }
    let slack = 0.5 + slack;
    let rhs = if ge { v - slack } else { v + slack };
    let op = if ge { CmpOp::Ge } else { CmpOp::Le };
    Some(NlConstraint::new(e, op, Rational::from_f64(rhs)?))
}

/// `inner ⊆ outer`, dimension-wise (an empty dimension is trivially
/// contained).
fn contained(inner: &[Interval], outer: &[Interval]) -> bool {
    inner.iter().zip(outer).all(|(i, o)| {
        i.is_empty() || (i.lo() >= o.lo() - f64::EPSILON && i.hi() <= o.hi() + f64::EPSILON)
    })
}

fn point_in(bx: &[Interval], p: &[f64]) -> bool {
    bx.iter().zip(p).all(|(iv, &x)| iv.contains(x))
}

property! {
    #![cases = 192]

    /// HC4 revise: contraction (output ⊆ input) and solution
    /// preservation for the anchored inequality corpus.
    fn hc4_is_contracting_and_sound(
        e in expr_gen(),
        p in point_gen(),
        pads in pads_gen(),
        ge in gen::bool_any(),
        slack in gen::f64_in(0.0, 2.5),
    ) {
        let c = match anchored_constraint(e, &p, ge, slack) {
            Some(c) => c,
            None => absolver_testkit::runner::reject_case(),
        };
        assume!(c.eval(&p));
        let original = box_around(&p, &pads);
        let mut bx = original.clone();
        let out = hc4_revise(&c, &mut bx);
        assert!(contained(&bx, &original), "HC4 grew the box: {bx:?} ⊄ {original:?}");
        assert_ne!(out, Contraction::Empty, "HC4 refuted a box holding a solution");
        assert!(point_in(&bx, &p), "HC4 pruned the anchor {p:?} from {bx:?}");
    }

    /// BC3 bound shaving: contraction and solution preservation, one
    /// variable at a time.
    fn bc3_is_contracting_and_sound(
        e in expr_gen(),
        p in point_gen(),
        pads in pads_gen(),
        ge in gen::bool_any(),
        slack in gen::f64_in(0.0, 2.5),
        v in gen::ints(0usize..NUM_VARS),
    ) {
        let c = match anchored_constraint(e, &p, ge, slack) {
            Some(c) => c,
            None => absolver_testkit::runner::reject_case(),
        };
        assume!(c.eval(&p));
        let original = box_around(&p, &pads);
        let mut bx = original.clone();
        let out = bc3_revise(&c, v, &mut bx);
        assert!(contained(&bx, &original), "BC3 grew the box: {bx:?} ⊄ {original:?}");
        assert_ne!(out, Contraction::Empty, "BC3 refuted a box holding a solution");
        assert!(point_in(&bx, &p), "BC3 pruned the anchor {p:?} from {bx:?}");
    }

    /// The full cascade (HC4 → BC3 → Newton, scheduled): contraction and
    /// solution preservation.
    fn cascade_is_contracting_and_sound(
        e in expr_gen(),
        p in point_gen(),
        pads in pads_gen(),
        ge in gen::bool_any(),
        slack in gen::f64_in(0.0, 2.5),
    ) {
        let c = match anchored_constraint(e, &p, ge, slack) {
            Some(c) => c,
            None => absolver_testkit::runner::reject_case(),
        };
        assume!(c.eval(&p));
        let original = box_around(&p, &pads);
        let mut bx = original.clone();
        let out = cascade_contract(std::slice::from_ref(&c), &mut bx, ContractorConfig::default());
        assert!(contained(&bx, &original), "cascade grew the box: {bx:?} ⊄ {original:?}");
        assert_ne!(out, Contraction::Empty, "cascade refuted a box holding a solution");
        assert!(point_in(&bx, &p), "cascade pruned the anchor {p:?} from {bx:?}");
    }

    /// Interval Newton on equalities, with an IVT-certified root: when a
    /// certified sign change brackets a real solution inside the box,
    /// Newton must not refute the box and must keep (a bracket around)
    /// the root.
    fn newton_keeps_bracketed_roots(
        e in domain::expr(1, 3, {
            // Continuous-everywhere profile so the intermediate value
            // theorem applies on the whole segment.
            let mut p = domain::ExprProfile::polyish();
            p.div = false;
            p
        }),
        a in gen::f64_in(-4.0, 4.0),
        span in gen::f64_in(0.25, 4.0),
        pad in gen::f64_in(0.0, 3.0),
        t in gen::f64_in(0.1, 0.9),
    ) {
        let b = a + span;
        // Certified evaluations at the endpoints (point boxes).
        let ea = e.eval_interval(&[Interval::new(a, a)]);
        let eb = e.eval_interval(&[Interval::new(b, b)]);
        assume!(!ea.is_empty() && !eb.is_empty());
        // Pick a target strictly between the endpoint values.
        let (lo_end, hi_end) = if ea.hi() < eb.lo() {
            (ea.hi(), eb.lo())
        } else if eb.hi() < ea.lo() {
            (eb.hi(), ea.lo())
        } else {
            absolver_testkit::runner::reject_case()
        };
        assume!(hi_end - lo_end > 1e-6);
        let target = lo_end + t * (hi_end - lo_end);
        let rhs = match Rational::from_f64(target) {
            Some(r) => r,
            None => absolver_testkit::runner::reject_case(),
        };
        // By the IVT a real root of e = target lies in [a, b]; bisect a
        // certified bracket down to localise it.
        let (mut lo, mut hi) = (a, b);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let em = e.eval_interval(&[Interval::new(mid, mid)]);
            assume!(!em.is_empty());
            if em.hi() < target {
                if ea.hi() < eb.lo() { lo = mid } else { hi = mid }
            } else if em.lo() > target {
                if ea.hi() < eb.lo() { hi = mid } else { lo = mid }
            } else {
                // mid itself may be the root; tighten around it.
                lo = mid - (hi - lo) * 0.25;
                hi = mid + (hi - lo) * 0.25;
                break;
            }
        }
        let c = NlConstraint::new(e, CmpOp::Eq, rhs);
        let original = vec![Interval::new(a - pad, b + pad)];
        let mut bx = original.clone();
        let out = newton_revise(&c, &mut bx);
        assert!(contained(&bx, &original), "Newton grew the box: {bx:?} ⊄ {original:?}");
        assert_ne!(out, Contraction::Empty, "Newton refuted a box with a bracketed root");
        assert!(
            !bx[0].is_empty() && bx[0].lo() <= hi && lo <= bx[0].hi(),
            "Newton pruned the root bracket [{lo}, {hi}] from {}",
            bx[0]
        );
    }
}
