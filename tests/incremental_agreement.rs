//! Differential tests for the incremental theory engine: the
//! assertion-stack simplex path and the theory-verdict cache must be
//! invisible in verdicts — only the effort counters may differ.

use absolver::core::{
    AbProblem, CdclBoolean, LinearBackend, Orchestrator, OrchestratorOptions, SimplexLinear,
    VarKind,
};
use absolver::linear::{CmpOp, Feasibility, LinearConstraint};
use absolver::nonlinear::Expr;
use absolver::num::Rational;
use absolver_testkit::{Rng, TestRng};

/// A linear backend that answers exactly like [`SimplexLinear`] but
/// refuses to provide an assertion stack, forcing the orchestrator onto
/// the from-scratch `check_conjunction` path of the theory layer.
struct ScratchLinear(SimplexLinear);

impl LinearBackend for ScratchLinear {
    fn name(&self) -> &str {
        "scratch-simplex"
    }

    fn check(&mut self, constraints: &[LinearConstraint]) -> Feasibility {
        self.0.check(constraints)
    }
    // Default `make_stack` returns `None`: no incremental session.
}

/// Random Boolean-linear problems over boxed integer variables, the
/// same shape as the solver_agreement corpus.
fn random_problem(rng: &mut TestRng) -> AbProblem {
    let mut b = AbProblem::builder();
    let n_arith = rng.gen_range(1..=2usize);
    let vars: Vec<usize> = (0..n_arith)
        .map(|i| b.arith_var(&format!("v{i}"), VarKind::Int))
        .collect();
    let mut atoms = Vec::new();
    for &v in &vars {
        let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-3));
        b.require(lo.positive());
        let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(3));
        b.require(hi.positive());
    }
    for _ in 0..rng.gen_range(1..5usize) {
        let v1 = vars[rng.gen_range(0..vars.len())];
        let v2 = vars[rng.gen_range(0..vars.len())];
        let k1 = rng.gen_range(-2i64..=2);
        let k2 = rng.gen_range(-2i64..=2);
        let rhs = rng.gen_range(-4i64..=4);
        let op = match rng.gen_range(0..5) {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Gt,
            3 => CmpOp::Ge,
            _ => CmpOp::Eq,
        };
        atoms.push(b.atom(
            Expr::int(k1) * Expr::var(v1) + Expr::int(k2) * Expr::var(v2),
            op,
            Rational::from_int(rhs),
        ));
    }
    for _ in 0..rng.gen_range(1..4usize) {
        let len = rng.gen_range(1..=2usize);
        let lits: Vec<_> = (0..len)
            .map(|_| {
                let a = atoms[rng.gen_range(0..atoms.len())];
                if rng.gen_bool(0.5) {
                    a.positive()
                } else {
                    a.negative()
                }
            })
            .collect();
        b.add_clause(lits);
    }
    b.build()
}

#[test]
fn incremental_stack_agrees_with_scratch_backend() {
    let mut rng = TestRng::seed_from_u64(0x1CC0);
    let mut total_warm = 0u64;
    for round in 0..40 {
        let problem = random_problem(&mut rng);

        let mut inc = Orchestrator::with_defaults();
        let with_stack = inc.solve(&problem).unwrap();

        let mut scratch = Orchestrator::custom(Box::new(CdclBoolean::new()))
            .with_linear(Box::new(ScratchLinear(SimplexLinear::new())));
        let without_stack = scratch.solve(&problem).unwrap();

        assert_eq!(
            with_stack.is_sat(),
            without_stack.is_sat(),
            "round {round}: incremental {with_stack:?} vs scratch {without_stack:?}"
        );
        if let Some(m) = with_stack.model() {
            assert!(
                m.satisfies(&problem, 1e-9),
                "round {round}: incremental model invalid"
            );
        }
        if let Some(m) = without_stack.model() {
            assert!(
                m.satisfies(&problem, 1e-9),
                "round {round}: scratch model invalid"
            );
        }
        assert_eq!(
            scratch.stats().simplex_warm_starts,
            0,
            "round {round}: scratch backend must never warm-start"
        );
        total_warm += inc.stats().simplex_warm_starts;
    }
    assert!(total_warm > 0, "corpus never exercised the warm-start path");
}

#[test]
fn cache_on_and_off_are_verdict_identical() {
    let mut rng = TestRng::seed_from_u64(0xCAC4E);
    for round in 0..40 {
        let problem = random_problem(&mut rng);

        let mut on = Orchestrator::with_defaults();
        let with_cache = on.solve(&problem).unwrap();

        let mut off = Orchestrator::with_defaults().with_options(OrchestratorOptions {
            theory_cache: false,
            ..Default::default()
        });
        let without_cache = off.solve(&problem).unwrap();

        assert_eq!(
            with_cache.is_sat(),
            without_cache.is_sat(),
            "round {round}: cache-on {with_cache:?} vs cache-off {without_cache:?}"
        );
        if let Some(m) = without_cache.model() {
            assert!(
                m.satisfies(&problem, 1e-9),
                "round {round}: cache-off model invalid"
            );
        }
        assert_eq!(
            off.stats().theory_cache_hits,
            0,
            "round {round}: cache-off counted a hit"
        );
        assert_eq!(
            off.stats().theory_cache_misses,
            0,
            "round {round}: cache-off counted a miss"
        );
    }
}
