//! Golden-file tests for the static analyzer: each checked-in
//! `tests/analyze/*.dimacs` input must produce byte-identical JSON to its
//! `*.expected.json` sibling, so diagnostic codes, spans, and messages
//! are a stable machine-readable interface.

use absolver::analyze::{check_source, Code, Severity};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/analyze/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn golden(name: &str) {
    let input = fixture(&format!("{name}.dimacs"));
    let expected = fixture(&format!("{name}.expected.json"));
    let report = check_source(&input);
    assert_eq!(
        report.render_json(),
        expected.trim_end(),
        "golden mismatch for tests/analyze/{name}.dimacs — if the change is \
         intentional, regenerate with `absolver check --json`"
    );
}

#[test]
fn malformed_input_matches_golden_json() {
    golden("malformed");
}

#[test]
fn lints_input_matches_golden_json() {
    golden("lints");
}

#[test]
fn malformed_input_is_a_single_spanned_error() {
    let report = check_source(&fixture("malformed.dimacs"));
    assert_eq!(report.errors(), 1);
    assert_eq!(report.warnings(), 0);
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.span.line > 0 && d.span.col > 0,
        "parse errors must carry a span"
    );
}

#[test]
fn paper_example_is_clean() {
    let input =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig2.dimacs"))
            .unwrap();
    let report = check_source(&input);
    assert!(
        report.is_clean(),
        "fig2 must lint clean, got:\n{}",
        report.render_human("fig2")
    );
}

#[test]
fn subsumption_fixture_matches_golden_json() {
    golden("subsume");
    let report = check_source(&fixture("subsume.dimacs"));
    for code in [Code::AB013, Code::AB014, Code::AB015, Code::AB016] {
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "subsume.dimacs must trigger {code:?}"
        );
    }
    assert_eq!(report.errors(), 0, "subsumption lints are warnings");
}

#[test]
fn static_unsat_fixture_matches_golden_json() {
    golden("staticunsat");
    let report = check_source(&fixture("staticunsat.dimacs"));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::AB017)
        .expect("staticunsat.dimacs must trigger AB017");
    assert_eq!(
        d.severity,
        Severity::Error,
        "AB017 is an error: the input is unsatisfiable"
    );
}

#[test]
fn declared_range_miss_fixture_matches_golden_json() {
    golden("declared_miss");
    let report = check_source(&fixture("declared_miss.dimacs"));
    assert!(
        report.diagnostics.iter().any(|d| d.code == Code::AB018),
        "declared_miss.dimacs must trigger AB018"
    );
    assert_eq!(report.errors(), 0, "AB018 is suspicion, not refutation");
}
