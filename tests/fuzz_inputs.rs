//! Robustness fuzzing: none of the textual front ends may panic on
//! arbitrary input — malformed text must come back as a parse error.

use absolver_testkit::{gen, property};

property! {
    #![cases = 256]

    /// The extended DIMACS parser returns `Err`, never panics.
    fn ab_parser_never_panics(input in gen::ascii_string("\n\t", 0..=300)) {
        let _ = input.parse::<absolver::core::AbProblem>();
    }

    /// Structured-looking but corrupted definition lines.
    fn ab_parser_survives_mangled_defs(
        var in gen::ints(0u32..20),
        body in gen::string_from_charset("abcdefghijklmnopqrstuvwxyz0123456789+*/<>=. ()^-", 0..=60),
    ) {
        let text = format!("p cnf 3 1\n1 2 0\nc def int {var} {body}\n");
        let _ = text.parse::<absolver::core::AbProblem>();
    }

    /// The plain DIMACS layer never panics.
    fn dimacs_parser_never_panics(input in gen::ascii_string("\n", 0..=300)) {
        let _ = absolver::logic::dimacs::parse(&input);
    }

    /// The LUSTRE parser never panics.
    fn lustre_parser_never_panics(input in gen::ascii_string("\n", 0..=300)) {
        let _ = absolver::model::lustre::parse(&input);
    }

    /// LUSTRE with a plausible skeleton and a fuzzed equation body.
    fn lustre_parser_survives_mangled_equations(
        body in gen::string_from_charset("abcdefghijklmnopqrstuvwxyz0123456789+*/<>= ()-", 0..=60),
    ) {
        let text = format!("node f(a: real) returns (o: bool);\nlet o = {body}; tel");
        let _ = absolver::model::lustre::parse(&text);
    }

    /// Rational and BigInt parsers never panic.
    fn number_parsers_never_panic(input in gen::string_from_charset("0123456789./+-", 0..=40)) {
        let _ = input.parse::<absolver::num::Rational>();
        let _ = input.parse::<absolver::num::BigInt>();
    }
}

/// Error messages of the main front end are informative (mention what went
/// wrong), not just a generic failure.
#[test]
fn parse_errors_are_descriptive() {
    let err = "p cnf 1 1\n1 0\nc def bool 1 x >= 0\n"
        .parse::<absolver::core::AbProblem>()
        .unwrap_err();
    assert!(err.to_string().contains("int"), "{err}");
    let err = "p cnf 1 1\n1 0\nc def int 1 x >\n"
        .parse::<absolver::core::AbProblem>()
        .unwrap_err();
    assert!(err.to_string().contains("expected"), "{err}");
}
