//! Robustness fuzzing: none of the textual front ends may panic on
//! arbitrary input — malformed text must come back as a parse error.

use absolver_testkit::{gen, property};

property! {
    #![cases = 256]

    /// The extended DIMACS parser returns `Err`, never panics.
    fn ab_parser_never_panics(input in gen::ascii_string("\n\t", 0..=300)) {
        let _ = input.parse::<absolver::core::AbProblem>();
    }

    /// Structured-looking but corrupted definition lines.
    fn ab_parser_survives_mangled_defs(
        var in gen::ints(0u32..20),
        body in gen::string_from_charset("abcdefghijklmnopqrstuvwxyz0123456789+*/<>=. ()^-", 0..=60),
    ) {
        let text = format!("p cnf 3 1\n1 2 0\nc def int {var} {body}\n");
        let _ = text.parse::<absolver::core::AbProblem>();
    }

    /// The plain DIMACS layer never panics.
    fn dimacs_parser_never_panics(input in gen::ascii_string("\n", 0..=300)) {
        let _ = absolver::logic::dimacs::parse(&input);
    }

    /// The LUSTRE parser never panics.
    fn lustre_parser_never_panics(input in gen::ascii_string("\n", 0..=300)) {
        let _ = absolver::model::lustre::parse(&input);
    }

    /// LUSTRE with a plausible skeleton and a fuzzed equation body.
    fn lustre_parser_survives_mangled_equations(
        body in gen::string_from_charset("abcdefghijklmnopqrstuvwxyz0123456789+*/<>= ()-", 0..=60),
    ) {
        let text = format!("node f(a: real) returns (o: bool);\nlet o = {body}; tel");
        let _ = absolver::model::lustre::parse(&text);
    }

    /// Rational and BigInt parsers never panic.
    fn number_parsers_never_panic(input in gen::string_from_charset("0123456789./+-", 0..=40)) {
        let _ = input.parse::<absolver::num::Rational>();
        let _ = input.parse::<absolver::num::BigInt>();
    }
}

property! {
    #![cases = 64]

    /// The cube splitter never panics on degenerate pure-Boolean CNFs —
    /// including zero-variable, zero-clause, unit-conflicting, and
    /// trivially-UNSAT inputs — and its verdict matches sequential solve.
    fn cube_splitter_survives_degenerate_cnfs(
        num_vars in gen::ints(0usize..=4),
        raw_clauses in gen::vec_of(gen::vec_of(gen::ints(-4i64..=4), 0..4), 0..6),
        jobs in gen::ints(1usize..=4),
    ) {
        use absolver::core::{Orchestrator, ParallelOptions, ParallelStrategy};
        let mut text = String::new();
        let clauses: Vec<Vec<i64>> = raw_clauses
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .filter(|&l| l != 0 && l.unsigned_abs() as usize <= num_vars)
                    .collect()
            })
            .collect();
        text.push_str(&format!("p cnf {num_vars} {}\n", clauses.len()));
        for c in &clauses {
            for l in c {
                text.push_str(&format!("{l} "));
            }
            // Zero-length clauses survive the filter: an empty clause line
            // is a legal trivially-UNSAT input.
            text.push_str("0\n");
        }
        let problem: absolver::core::AbProblem = text.parse().unwrap();
        let sequential = Orchestrator::with_defaults().solve(&problem).unwrap();
        let opts = ParallelOptions {
            jobs,
            strategy: ParallelStrategy::Cubes,
            deterministic: true,
            ..Default::default()
        };
        let (outcome, _) =
            Orchestrator::with_defaults().solve_parallel(&problem, &opts).unwrap();
        assert_eq!(sequential.is_sat(), outcome.is_sat(), "jobs={jobs}: {text}");
        assert_eq!(sequential.is_unsat(), outcome.is_unsat(), "jobs={jobs}: {text}");
    }

    /// The cube splitter also survives problems with theory atoms whose
    /// CNF skeleton is already unsatisfiable (every cube is refuted
    /// before any theory check happens).
    fn cube_splitter_survives_bool_unsat_with_atoms(jobs in gen::ints(1usize..=4)) {
        use absolver::core::{Orchestrator, ParallelOptions, ParallelStrategy};
        let text = "p cnf 2 3\n1 0\n-1 0\n2 0\nc def real 2 x >= 0\n";
        let problem: absolver::core::AbProblem = text.parse().unwrap();
        let opts = ParallelOptions {
            jobs,
            strategy: ParallelStrategy::Cubes,
            deterministic: true,
            ..Default::default()
        };
        let (outcome, _) =
            Orchestrator::with_defaults().solve_parallel(&problem, &opts).unwrap();
        assert!(outcome.is_unsat());
    }
}

/// Error messages of the main front end are informative (mention what went
/// wrong), not just a generic failure.
#[test]
fn parse_errors_are_descriptive() {
    let err = "p cnf 1 1\n1 0\nc def bool 1 x >= 0\n"
        .parse::<absolver::core::AbProblem>()
        .unwrap_err();
    assert!(err.to_string().contains("int"), "{err}");
    let err = "p cnf 1 1\n1 0\nc def int 1 x >\n"
        .parse::<absolver::core::AbProblem>()
        .unwrap_err();
    assert!(err.to_string().contains("expected"), "{err}");
}

property! {
    #![cases = 256]

    /// The session script parser returns spanned diagnostics on arbitrary
    /// input, never panics.
    fn script_parser_never_panics(input in gen::ascii_string("\n\t", 0..=300)) {
        for (i, line) in input.lines().enumerate() {
            let _ = absolver::core::script::parse_script_line(line, i + 1);
        }
    }

    /// Plausible script commands with fuzzed operands (huge indices,
    /// broken ranges, mangled constraint bodies).
    fn script_parser_survives_mangled_commands(
        cmd in gen::from_slice(&["var", "range", "def", "assert", "push", "pop", "check", "model"]),
        body in gen::string_from_charset(
            "abcxyz0123456789+*/<>=. ()^-easdfnit realbo",
            0..=60,
        ),
    ) {
        let _ = absolver::core::script::parse_script_line(&format!("{cmd} {body}"), 1);
    }

    /// The absolverd request decoder is total over arbitrary bytes.
    fn service_decoder_never_panics(input in gen::ascii_string("\n\t=.", 0..=300)) {
        let mut decoder = absolver::service::RequestDecoder::new();
        for line in input.lines() {
            let _ = decoder.push_line(line);
        }
    }

    /// Plausible solve headers with fuzzed option values.
    fn service_decoder_survives_mangled_headers(
        key in gen::from_slice(&["id", "timeout_ms", "priority", "bogus", ""]),
        value in gen::string_from_charset("0123456789abchighnormalw=-", 0..=20),
        body in gen::ascii_string("\n", 0..=80),
    ) {
        let mut decoder = absolver::service::RequestDecoder::new();
        let _ = decoder.push_line(&format!("solve {key}={value}"));
        for line in body.lines() {
            let _ = decoder.push_line(line);
        }
        let _ = decoder.push_line(".");
    }
}
