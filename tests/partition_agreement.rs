//! Differential testing of the structural-partition subsystem: solving a
//! problem component-by-component (sequentially under the preprocessor,
//! concurrently under `solve_parallel`, or by hand via
//! [`Partition::extract`]/[`Partition::stitch`]) must agree verdict-for-
//! verdict with solving the whole problem at once, and every stitched
//! model must satisfy the *original* conjunction — the Boolean circuit
//! and the arithmetic constraints alike.
//!
//! The salted corpus deliberately includes disconnected problems: each
//! generated block draws its own arithmetic variables and its own atoms,
//! and no clause ever mixes atoms across blocks, so a `k`-block draw has
//! exactly `k` incidence-graph components.

use absolver::analyze::Simplifier;
use absolver::core::{
    AbModel, AbProblem, Orchestrator, Outcome, ParallelOptions, ParallelStrategy, Partition,
    VarKind,
};
use absolver::linear::CmpOp;
use absolver::logic::Tri;
use absolver::nonlinear::Expr;
use absolver::num::Rational;
use absolver::trace::{CollectingSink, TraceSink};
use absolver_testkit::{domain, gen, property, Gen};
use std::sync::Arc;

/// A testkit generator for problems made of 1–3 *independent* blocks:
/// every block is a small Boolean-linear subproblem over its own
/// arithmetic variables (the linear theory is complete, so verdicts are
/// always Sat or Unsat and differential comparison is exact).
fn disconnected_problem_gen() -> Gen<AbProblem> {
    let n_blocks = gen::ints(1usize..=3);
    let block_vars = gen::ints(1usize..=2);
    let int_kind = gen::bool_any();
    let atoms = gen::vec_of(
        {
            let var = gen::ints(0usize..2);
            let k = gen::ints(-3i64..=3);
            let rhs = gen::ints(-5i64..=5);
            let op = domain::cmp_op();
            Gen::new(move |src| {
                (
                    var.generate(src),
                    k.generate(src),
                    op.generate(src),
                    rhs.generate(src),
                )
            })
        },
        1..4,
    );
    let clauses = gen::vec_of(
        gen::vec_of(
            {
                let idx = gen::ints(0usize..8);
                let neg = gen::bool_any();
                Gen::new(move |src| (idx.generate(src), neg.generate(src)))
            },
            1..3,
        ),
        1..3,
    );
    Gen::new(move |src| {
        let mut b = AbProblem::builder();
        for blk in 0..n_blocks.generate(src) {
            let n = block_vars.generate(src);
            let kind = if int_kind.generate(src) {
                VarKind::Int
            } else {
                VarKind::Real
            };
            let vars: Vec<usize> = (0..n)
                .map(|i| b.arith_var(&format!("b{blk}v{i}"), kind))
                .collect();
            // Box every variable so verdicts don't hinge on unbounded rays.
            for &v in &vars {
                let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-6));
                b.require(lo.positive());
                let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(6));
                b.require(hi.positive());
            }
            let atom_vars: Vec<_> = atoms
                .generate(src)
                .into_iter()
                .map(|(v, k, op, rhs)| {
                    b.atom(
                        Expr::int(k) * Expr::var(vars[v % vars.len()]),
                        op,
                        Rational::from_int(rhs),
                    )
                })
                .collect();
            for clause in clauses.generate(src) {
                let lits: Vec<_> = clause
                    .into_iter()
                    .map(|(i, neg)| {
                        let a = atom_vars[i % atom_vars.len()];
                        if neg {
                            a.negative()
                        } else {
                            a.positive()
                        }
                    })
                    .collect();
                b.add_clause(lits);
            }
        }
        b.build()
    })
}

/// Asserts a Sat model satisfies the whole original problem.
fn assert_model_valid(problem: &AbProblem, model: &AbModel, context: &str) {
    assert_eq!(
        problem.cnf().eval(&model.boolean),
        Tri::True,
        "{context}: model fails the Boolean circuit"
    );
    assert!(
        model.satisfies(problem, 1e-9),
        "{context}: model violates an arithmetic constraint"
    );
}

property! {
    #![cases = 100]

    /// Whole-problem solving, the preprocessor's sequential component
    /// loop, the parallel component shards, and a by-hand
    /// extract/solve/stitch all agree on the verdict, and every Sat
    /// witness checks out against the original problem.
    fn partitioned_agrees_with_whole(problem in disconnected_problem_gen()) {
        // Control: the plain control loop on the whole problem, no
        // preprocessing, no partitioning.
        let mut control = Orchestrator::with_defaults();
        let whole = control.solve(&problem).unwrap();
        assert!(
            !matches!(whole, Outcome::Unknown),
            "linear problems must be decided"
        );

        // Sequential component loop (the `--preprocess` path).
        let mut seq = Orchestrator::with_defaults()
            .with_preprocessor(Box::new(Simplifier::new()));
        let seq_outcome = seq.solve(&problem).unwrap();
        assert_eq!(
            whole.is_sat(),
            seq_outcome.is_sat(),
            "sequential component loop diverged: whole {whole:?} vs {seq_outcome:?} ({})",
            seq.stats()
        );
        if let Outcome::Sat(m) = &seq_outcome {
            assert_model_valid(&problem, m, "sequential component loop");
        }

        // Parallel component shards (gated on >= 2 components inside
        // `solve_parallel`; single-component problems fall back to the
        // portfolio, which the parallel_agreement suite already pins).
        let opts = ParallelOptions {
            jobs: 2,
            strategy: ParallelStrategy::Portfolio,
            deterministic: true,
            ..Default::default()
        };
        let mut par = Orchestrator::with_defaults();
        let (par_outcome, pstats) = par.solve_parallel(&problem, &opts).unwrap();
        assert_eq!(
            whole.is_sat(),
            par_outcome.is_sat(),
            "parallel component shards diverged: whole {whole:?} vs {par_outcome:?} ({pstats})"
        );
        if let Outcome::Sat(m) = &par_outcome {
            assert_model_valid(&problem, m, "parallel component shards");
        }

        // By-hand partition: extract each component, solve it in
        // isolation, stitch the witnesses, and re-check the stitched
        // model against the *whole* problem.
        let partition = Partition::of(&problem);
        if partition.len() >= 2 {
            assert_eq!(pstats.components, partition.len(), "parallel stats miscount");
            let mut models = Vec::new();
            let mut any_unsat = false;
            for idx in 0..partition.len() {
                let sub = partition.extract(&problem, idx);
                match Orchestrator::with_defaults().solve(&sub).unwrap() {
                    Outcome::Sat(m) => models.push(*m),
                    Outcome::Unsat => any_unsat = true,
                    Outcome::Unknown => panic!("linear component must be decided"),
                }
            }
            if any_unsat {
                assert!(
                    whole.is_unsat(),
                    "a component is unsat but the whole problem is not"
                );
            } else {
                assert!(
                    whole.is_sat(),
                    "every component is sat but the whole problem is not"
                );
                let stitched = partition.stitch(&models);
                assert_model_valid(&problem, &stitched, "stitched model");
            }
        }
    }
}

/// A deliberately disconnected two-component problem: component A pins
/// `x` into `[1, 3]`, component B pins `y` into `[-2, 0]`; the two share
/// no variables.
const TWO_COMPONENTS: &str = "\
p cnf 4 4
1 0
2 0
3 0
4 0
c def real 1 x >= 1
c def real 2 x <= 3
c def real 3 y >= -2
c def real 4 y <= 0
";

#[test]
fn sequential_component_loop_reports_components_and_traces() {
    let problem: AbProblem = TWO_COMPONENTS.parse().unwrap();
    assert_eq!(Partition::of(&problem).len(), 2, "fixture must decompose");
    let sink = Arc::new(CollectingSink::new());
    let mut orc = Orchestrator::with_defaults()
        .with_preprocessor(Box::new(Simplifier::new()))
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let outcome = orc.solve(&problem).unwrap();
    assert!(outcome.is_sat());
    if let Outcome::Sat(m) = &outcome {
        assert_model_valid(&problem, m, "two-component fixture");
    }
    // The partition is announced once; note the *preprocessed* problem
    // may decompose differently from the raw one, so only presence and
    // consistency with the stats are asserted.
    let kinds = sink.kinds();
    assert!(
        kinds.iter().any(|k| k == "analyze.partition"),
        "missing analyze.partition event in {kinds:?}"
    );
    let components = orc.stats().components;
    assert!(components >= 1, "components stat must be recorded");
    if components >= 2 {
        assert!(
            kinds.iter().any(|k| k == "analyze.component"),
            "a multi-component solve must trace per-component outcomes"
        );
    }
}

#[test]
fn parallel_component_shards_solve_disconnected_problems() {
    let problem: AbProblem = TWO_COMPONENTS.parse().unwrap();
    let sink = Arc::new(CollectingSink::new());
    let mut orc = Orchestrator::with_defaults().with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let opts = ParallelOptions {
        jobs: 2,
        strategy: ParallelStrategy::Portfolio,
        deterministic: true,
        ..Default::default()
    };
    let (outcome, stats) = orc.solve_parallel(&problem, &opts).unwrap();
    assert!(outcome.is_sat(), "fixture is satisfiable: {stats}");
    if let Outcome::Sat(m) = &outcome {
        assert_model_valid(&problem, m, "parallel two-component fixture");
    }
    assert_eq!(
        stats.components, 2,
        "both components must be sharded: {stats}"
    );
    let kinds = sink.kinds();
    assert!(kinds.iter().any(|k| k == "analyze.partition"));
    assert!(kinds.iter().any(|k| k == "component.start"));
    assert!(kinds.iter().any(|k| k == "component.end"));
}

/// An unsat component refutes the whole conjunction even when its
/// sibling component is trivially satisfiable.
#[test]
fn one_unsat_component_refutes_the_whole_problem() {
    let text = "\
p cnf 3 3
1 0
2 0
3 0
c def real 1 x >= 1
c def real 2 x <= 0
c def real 3 y >= 5
";
    let problem: AbProblem = text.parse().unwrap();
    let whole = Orchestrator::with_defaults().solve(&problem).unwrap();
    assert!(whole.is_unsat());
    let opts = ParallelOptions {
        jobs: 2,
        strategy: ParallelStrategy::Portfolio,
        deterministic: true,
        ..Default::default()
    };
    let (outcome, _) = Orchestrator::with_defaults()
        .solve_parallel(&problem, &opts)
        .unwrap();
    assert!(outcome.is_unsat());
}

/// A statically-unsatisfiable problem is answered `Unsat` by the
/// preprocessor's dataflow refutation alone: the Boolean control loop
/// never starts (no `boolean.model` / `theory.check` events, zero
/// Boolean iterations) and the stats record the static answer.
#[test]
fn statically_unsat_problems_never_enter_the_solve_loop() {
    let text = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 0\n";
    let problem: AbProblem = text.parse().unwrap();
    let sink = Arc::new(CollectingSink::new());
    let mut orc = Orchestrator::with_defaults()
        .with_preprocessor(Box::new(Simplifier::new()))
        .with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let outcome = orc.solve(&problem).unwrap();
    assert!(outcome.is_unsat());
    let stats = orc.stats();
    assert_eq!(stats.static_unsat, 1, "static refutation must be counted");
    assert_eq!(
        stats.boolean_iterations, 0,
        "the Boolean loop must never have started: {stats}"
    );
    let kinds = sink.kinds();
    assert!(
        kinds.iter().any(|k| k == "analyze.static_unsat"),
        "missing analyze.static_unsat in {kinds:?}"
    );
    assert!(
        !kinds
            .iter()
            .any(|k| k == "boolean.model" || k == "theory.check" || k == "shard.start"),
        "the solve loop must not run on a statically-unsat problem: {kinds:?}"
    );
}
