//! Differential testing: ABsolver's loose control loop, the tight DPLL(T)
//! baseline, the eager baseline, and a brute-force grid oracle must agree
//! on random Boolean-linear problems.

use absolver::baselines::{BaselineVerdict, CvcLike, MathSatLike};
use absolver::core::{AbProblem, Orchestrator, VarKind};
use absolver::linear::CmpOp;
use absolver::logic::{Assignment, Tri};
use absolver::nonlinear::Expr;
use absolver::num::Rational;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random Boolean-linear AB-problem over `n_arith` integer
/// variables (integers so a finite grid oracle is complete on bounded
/// ranges).
fn random_problem(rng: &mut StdRng) -> AbProblem {
    let mut b = AbProblem::builder();
    let n_arith = rng.gen_range(1..=2usize);
    let vars: Vec<usize> = (0..n_arith)
        .map(|i| b.arith_var(&format!("v{i}"), VarKind::Int))
        .collect();
    // Hard range so the grid oracle is complete.
    let atoms: Vec<_> = {
        let mut atoms = Vec::new();
        for &v in &vars {
            let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-3));
            b.require(lo.positive());
            let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(3));
            b.require(hi.positive());
        }
        for _ in 0..rng.gen_range(1..5usize) {
            let v1 = vars[rng.gen_range(0..vars.len())];
            let v2 = vars[rng.gen_range(0..vars.len())];
            let k1 = rng.gen_range(-2i64..=2);
            let k2 = rng.gen_range(-2i64..=2);
            let rhs = rng.gen_range(-4i64..=4);
            let op = match rng.gen_range(0..5) {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                2 => CmpOp::Gt,
                3 => CmpOp::Ge,
                _ => CmpOp::Eq,
            };
            atoms.push(b.atom(
                Expr::int(k1) * Expr::var(v1) + Expr::int(k2) * Expr::var(v2),
                op,
                Rational::from_int(rhs),
            ));
        }
        atoms
    };
    for _ in 0..rng.gen_range(1..4usize) {
        let len = rng.gen_range(1..=2usize);
        let lits: Vec<_> = (0..len)
            .map(|_| {
                let a = atoms[rng.gen_range(0..atoms.len())];
                if rng.gen_bool(0.5) {
                    a.positive()
                } else {
                    a.negative()
                }
            })
            .collect();
        b.add_clause(lits);
    }
    b.build()
}

/// Complete oracle: tries every integer grid point in [-3, 3]^n against
/// every Boolean assignment consistency requirement.
fn grid_oracle(problem: &AbProblem) -> bool {
    let n = problem.arith_vars().len();
    let num_bool = problem.cnf().num_vars();
    assert!(n <= 2 && num_bool <= 16, "oracle limits");
    let points: Vec<Vec<f64>> = if n == 1 {
        (-3..=3).map(|x| vec![x as f64]).collect()
    } else {
        (-3..=3)
            .flat_map(|x| (-3..=3).map(move |y| vec![x as f64, y as f64]))
            .collect()
    };
    for point in &points {
        'bools: for bits in 0u32..(1 << num_bool) {
            let assignment = Assignment::from_bools((0..num_bool).map(|i| bits >> i & 1 == 1));
            if problem.cnf().eval(&assignment) != Tri::True {
                continue;
            }
            for (var, def) in problem.defs() {
                let want = assignment.value(var) == Tri::True;
                let all_hold = def.constraints.iter().all(|c| c.eval(point));
                if all_hold != want {
                    continue 'bools;
                }
            }
            return true;
        }
    }
    false
}

#[test]
fn four_way_agreement_on_random_problems() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_7E57);
    for round in 0..40 {
        let problem = random_problem(&mut rng);
        let expected = grid_oracle(&problem);

        let mut orc = Orchestrator::with_defaults();
        let loose = orc.solve(&problem).unwrap();
        match (expected, &loose) {
            (true, o) => {
                assert!(o.is_sat(), "round {round}: oracle sat, ABsolver {o:?}");
                assert!(
                    o.model().unwrap().satisfies(&problem, 1e-9),
                    "round {round}: invalid model"
                );
            }
            (false, o) => assert!(o.is_unsat(), "round {round}: oracle unsat, ABsolver {o:?}"),
        }

        let tight = MathSatLike::new().solve(&problem);
        match (expected, &tight.verdict) {
            (true, BaselineVerdict::Sat(m)) => {
                assert!(m.satisfies(&problem, 1e-9), "round {round}: tight model invalid")
            }
            (false, BaselineVerdict::Unsat) => {}
            other => panic!("round {round}: tight disagrees: {other:?}"),
        }

        let eager = CvcLike::new().solve(&problem);
        match (expected, &eager.verdict) {
            (true, BaselineVerdict::Sat(_)) | (false, BaselineVerdict::Unsat) => {}
            other => panic!("round {round}: eager disagrees: {other:?}"),
        }
    }
}

#[test]
fn integer_semantics_cross_check() {
    // 2x = 1 over ints: everyone says UNSAT; over reals: everyone SAT.
    let int_text = "p cnf 1 1\n1 0\nc def int 1 2 * x = 1\n";
    let real_text = "p cnf 1 1\n1 0\nc def real 1 2 * x = 1\n";
    let int_p: AbProblem = int_text.parse().unwrap();
    let real_p: AbProblem = real_text.parse().unwrap();
    let mut orc = Orchestrator::with_defaults();
    assert!(orc.solve(&int_p).unwrap().is_unsat());
    assert!(orc.solve(&real_p).unwrap().is_sat());
    assert_eq!(MathSatLike::new().solve(&int_p).verdict, BaselineVerdict::Unsat);
    assert!(MathSatLike::new().solve(&real_p).verdict.is_sat());
}
