//! Differential testing: ABsolver's loose control loop, the tight DPLL(T)
//! baseline, the eager baseline, and a brute-force grid oracle must agree
//! on random Boolean-linear problems.

use absolver::baselines::{BaselineVerdict, CvcLike, MathSatLike};
use absolver::core::{AbProblem, Orchestrator, VarKind};
use absolver::linear::CmpOp;
use absolver::logic::{Assignment, Tri};
use absolver::nonlinear::Expr;
use absolver::num::Rational;
use absolver_testkit::{domain, gen, property, Gen, Rng, TestRng};

/// Generates a random Boolean-linear AB-problem over `n_arith` integer
/// variables (integers so a finite grid oracle is complete on bounded
/// ranges).
fn random_problem(rng: &mut TestRng) -> AbProblem {
    let mut b = AbProblem::builder();
    let n_arith = rng.gen_range(1..=2usize);
    let vars: Vec<usize> = (0..n_arith)
        .map(|i| b.arith_var(&format!("v{i}"), VarKind::Int))
        .collect();
    // Hard range so the grid oracle is complete.
    let atoms: Vec<_> = {
        let mut atoms = Vec::new();
        for &v in &vars {
            let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-3));
            b.require(lo.positive());
            let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(3));
            b.require(hi.positive());
        }
        for _ in 0..rng.gen_range(1..5usize) {
            let v1 = vars[rng.gen_range(0..vars.len())];
            let v2 = vars[rng.gen_range(0..vars.len())];
            let k1 = rng.gen_range(-2i64..=2);
            let k2 = rng.gen_range(-2i64..=2);
            let rhs = rng.gen_range(-4i64..=4);
            let op = match rng.gen_range(0..5) {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                2 => CmpOp::Gt,
                3 => CmpOp::Ge,
                _ => CmpOp::Eq,
            };
            atoms.push(b.atom(
                Expr::int(k1) * Expr::var(v1) + Expr::int(k2) * Expr::var(v2),
                op,
                Rational::from_int(rhs),
            ));
        }
        atoms
    };
    for _ in 0..rng.gen_range(1..4usize) {
        let len = rng.gen_range(1..=2usize);
        let lits: Vec<_> = (0..len)
            .map(|_| {
                let a = atoms[rng.gen_range(0..atoms.len())];
                if rng.gen_bool(0.5) {
                    a.positive()
                } else {
                    a.negative()
                }
            })
            .collect();
        b.add_clause(lits);
    }
    b.build()
}

/// Complete oracle: tries every integer grid point in [-3, 3]^n against
/// every Boolean assignment consistency requirement.
fn grid_oracle(problem: &AbProblem) -> bool {
    let n = problem.arith_vars().len();
    let num_bool = problem.cnf().num_vars();
    assert!(n <= 2 && num_bool <= 16, "oracle limits");
    let points: Vec<Vec<f64>> = if n == 1 {
        (-3..=3).map(|x| vec![x as f64]).collect()
    } else {
        (-3..=3)
            .flat_map(|x| (-3..=3).map(move |y| vec![x as f64, y as f64]))
            .collect()
    };
    for point in &points {
        'bools: for bits in 0u32..(1 << num_bool) {
            let assignment = Assignment::from_bools((0..num_bool).map(|i| bits >> i & 1 == 1));
            if problem.cnf().eval(&assignment) != Tri::True {
                continue;
            }
            for (var, def) in problem.defs() {
                let want = assignment.value(var) == Tri::True;
                let all_hold = def.constraints.iter().all(|c| c.eval(point));
                if all_hold != want {
                    continue 'bools;
                }
            }
            return true;
        }
    }
    false
}

#[test]
fn four_way_agreement_on_random_problems() {
    let mut rng = TestRng::seed_from_u64(0xD1FF_7E57);
    for round in 0..40 {
        let problem = random_problem(&mut rng);
        let expected = grid_oracle(&problem);

        let mut orc = Orchestrator::with_defaults();
        let loose = orc.solve(&problem).unwrap();
        match (expected, &loose) {
            (true, o) => {
                assert!(o.is_sat(), "round {round}: oracle sat, ABsolver {o:?}");
                assert!(
                    o.model().unwrap().satisfies(&problem, 1e-9),
                    "round {round}: invalid model"
                );
            }
            (false, o) => assert!(o.is_unsat(), "round {round}: oracle unsat, ABsolver {o:?}"),
        }

        let tight = MathSatLike::new().solve(&problem);
        match (expected, &tight.verdict) {
            (true, BaselineVerdict::Sat(m)) => {
                assert!(
                    m.satisfies(&problem, 1e-9),
                    "round {round}: tight model invalid"
                )
            }
            (false, BaselineVerdict::Unsat) => {}
            other => panic!("round {round}: tight disagrees: {other:?}"),
        }

        let eager = CvcLike::new().solve(&problem);
        match (expected, &eager.verdict) {
            (true, BaselineVerdict::Sat(_)) | (false, BaselineVerdict::Unsat) => {}
            other => panic!("round {round}: eager disagrees: {other:?}"),
        }
    }
}

/// A testkit generator for small linear AB-problems — richer than
/// [`random_problem`]: real or integer variables, up to three of them,
/// and sparse constraints from the shared domain generators. There is
/// no complete oracle at this size, so the property below checks mutual
/// agreement plus model validity instead.
fn linear_problem_gen() -> Gen<AbProblem> {
    let n_vars = gen::ints(1usize..=3);
    let int_kind = gen::bool_any();
    let atoms = gen::vec_of(
        {
            let var = gen::ints(0usize..3);
            let k = gen::ints(-3i64..=3);
            let rhs = gen::ints(-5i64..=5);
            let op = domain::cmp_op();
            Gen::new(move |src| {
                (
                    var.generate(src),
                    k.generate(src),
                    op.generate(src),
                    rhs.generate(src),
                )
            })
        },
        1..5,
    );
    let clauses = gen::vec_of(
        gen::vec_of(
            {
                let idx = gen::ints(0usize..8);
                let neg = gen::bool_any();
                Gen::new(move |src| (idx.generate(src), neg.generate(src)))
            },
            1..3,
        ),
        1..4,
    );
    Gen::new(move |src| {
        let n = n_vars.generate(src);
        let kind = if int_kind.generate(src) {
            VarKind::Int
        } else {
            VarKind::Real
        };
        let mut b = AbProblem::builder();
        let vars: Vec<usize> = (0..n)
            .map(|i| b.arith_var(&format!("v{i}"), kind))
            .collect();
        // Box every variable so verdicts don't hinge on unbounded rays.
        for &v in &vars {
            let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-6));
            b.require(lo.positive());
            let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(6));
            b.require(hi.positive());
        }
        let atom_vars: Vec<_> = atoms
            .generate(src)
            .into_iter()
            .map(|(v, k, op, rhs)| {
                b.atom(
                    Expr::int(k) * Expr::var(vars[v % vars.len()]),
                    op,
                    Rational::from_int(rhs),
                )
            })
            .collect();
        for clause in clauses.generate(src) {
            let lits: Vec<_> = clause
                .into_iter()
                .map(|(i, neg)| {
                    let a = atom_vars[i % atom_vars.len()];
                    if neg {
                        a.negative()
                    } else {
                        a.positive()
                    }
                })
                .collect();
            b.add_clause(lits);
        }
        b.build()
    })
}

property! {
    #![cases = 100]

    /// Differential agreement on testkit-generated problems: the
    /// orchestrator and both baselines must return the same SAT/UNSAT
    /// verdict, and every returned model must satisfy the problem —
    /// including its Boolean circuit under three-valued semantics.
    fn orchestrator_and_baselines_agree(problem in linear_problem_gen()) {
        let mut orc = Orchestrator::with_defaults();
        let loose = orc.solve(&problem).unwrap();
        let tight = MathSatLike::new().solve(&problem);
        let eager = CvcLike::new().solve(&problem);

        assert_eq!(
            loose.is_sat(),
            tight.verdict.is_sat(),
            "orchestrator {loose:?} vs tight {:?}",
            tight.verdict
        );
        assert_eq!(
            loose.is_sat(),
            eager.verdict.is_sat(),
            "orchestrator {loose:?} vs eager {:?}",
            eager.verdict
        );

        if loose.is_sat() {
            let m = loose.model().expect("sat verdict carries a model");
            assert_eq!(
                problem.cnf().eval(&m.boolean),
                Tri::True,
                "orchestrator model does not satisfy the Boolean circuit"
            );
            assert!(m.satisfies(&problem, 1e-9), "orchestrator model invalid");
            if let BaselineVerdict::Sat(bm) = &tight.verdict {
                assert_eq!(problem.cnf().eval(&bm.boolean), Tri::True);
                assert!(bm.satisfies(&problem, 1e-9), "tight model invalid");
            }
            if let BaselineVerdict::Sat(bm) = &eager.verdict {
                assert_eq!(problem.cnf().eval(&bm.boolean), Tri::True);
                assert!(bm.satisfies(&problem, 1e-9), "eager model invalid");
            }
        }
    }
}

#[test]
fn integer_semantics_cross_check() {
    // 2x = 1 over ints: everyone says UNSAT; over reals: everyone SAT.
    let int_text = "p cnf 1 1\n1 0\nc def int 1 2 * x = 1\n";
    let real_text = "p cnf 1 1\n1 0\nc def real 1 2 * x = 1\n";
    let int_p: AbProblem = int_text.parse().unwrap();
    let real_p: AbProblem = real_text.parse().unwrap();
    let mut orc = Orchestrator::with_defaults();
    assert!(orc.solve(&int_p).unwrap().is_unsat());
    assert!(orc.solve(&real_p).unwrap().is_sat());
    assert_eq!(
        MathSatLike::new().solve(&int_p).verdict,
        BaselineVerdict::Unsat
    );
    assert!(MathSatLike::new().solve(&real_p).verdict.is_sat());
}
