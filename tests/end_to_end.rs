//! Cross-crate integration tests: input language → orchestrator →
//! validated models, the model-conversion pipeline, and the paper's
//! benchmark generators.

use absolver::core::{AbProblem, Orchestrator, Outcome};
use absolver::model::{diagram_to_lustre, steering_problem};
use absolver_bench::fischer::{fischer, fischer_mutex, FischerConfig};
use absolver_bench::sudoku::{self, Difficulty};
use absolver_bench::table1;

#[test]
fn paper_example_full_pipeline() {
    let text = "\
p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c range a -10 10
c range x -10 10
c range y -10 10
";
    let problem: AbProblem = text.parse().unwrap();
    let mut orc = Orchestrator::with_defaults();
    let outcome = orc.solve(&problem).unwrap();
    let model = outcome.model().expect("satisfiable");
    assert!(model.satisfies(&problem, 1e-6));
    // Integers must actually be integral in the witness.
    for name in ["i", "j"] {
        let id = problem.arith_var(name).unwrap();
        let v = model.arith.value_f64(id).unwrap();
        assert!(
            (v - v.round()).abs() < 1e-6,
            "{name} = {v} must be integral"
        );
    }
}

#[test]
fn steering_case_study_statistics() {
    let p = steering_problem();
    assert_eq!(
        (
            p.cnf().len(),
            p.num_constraints(),
            p.num_linear(),
            p.num_nonlinear()
        ),
        (976, 24, 4, 20),
        "paper Table 1 row 1"
    );
}

#[test]
fn lustre_round_trip_of_steering_model() {
    let (node, _) = diagram_to_lustre(&absolver::model::steering_diagram());
    let text = node.to_string();
    let reparsed = absolver::model::lustre::parse(&text).unwrap();
    assert_eq!(reparsed.equations.len(), node.equations.len());
    assert_eq!(reparsed.inputs, node.inputs);
}

#[test]
fn table1_small_instances_solve_fast_and_correctly() {
    let mut orc = Orchestrator::with_defaults();
    let esat = table1::esat_n11_m8_nonlinear();
    assert!(orc.solve(&esat).unwrap().is_sat());
    let unsat = table1::nonlinear_unsat();
    assert!(orc.solve(&unsat).unwrap().is_unsat());
    let div = table1::div_operator();
    let outcome = orc.solve(&div).unwrap();
    assert!(outcome.model().unwrap().satisfies(&div, 1e-6));
}

#[test]
fn fischer_family_verdicts() {
    let mut orc = Orchestrator::with_defaults();
    for n in 1..=5 {
        let sat = fischer(n);
        let outcome = orc.solve(&sat).unwrap();
        assert!(
            outcome
                .model()
                .map(|m| m.satisfies(&sat, 1e-9))
                .unwrap_or(false),
            "fischer({n}) must be SAT with a valid model"
        );
    }
    let safe = fischer_mutex(FischerConfig::standard(3));
    assert!(orc.solve(&safe).unwrap().is_unsat());
}

#[test]
fn sudoku_mixed_encoding_end_to_end() {
    let (puzzle, _) = sudoku::generate(31, Difficulty::Easy);
    let problem = sudoku::encode_mixed(&puzzle);
    let mut orc = Orchestrator::with_defaults();
    match orc.solve(&problem).unwrap() {
        Outcome::Sat(model) => {
            let grid = sudoku::decode(&problem, &model).expect("integral");
            assert!(sudoku::is_valid_solution(&grid));
            assert!(sudoku::extends(&puzzle, &grid));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn enumeration_counts_distinct_boolean_models() {
    // x ∈ {1, 2, 3} via three atoms, exactly-one clauses: three models.
    let text = "\
p cnf 3 4
1 2 3 0
-1 -2 0
-1 -3 0
-2 -3 0
c def int 1 x = 1
c def int 2 x = 2
c def int 3 x = 3
";
    let problem: AbProblem = text.parse().unwrap();
    let mut orc = Orchestrator::with_defaults();
    let models = orc.solve_all(&problem, usize::MAX).unwrap();
    assert_eq!(models.len(), 3);
    for m in &models {
        assert!(m.satisfies(&problem, 1e-9));
    }
}

#[test]
fn baselines_and_absolver_agree_on_linear_fischer() {
    use absolver::baselines::{BaselineVerdict, CvcLike, MathSatLike};
    for n in 2..=4 {
        let sat = fischer(n);
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&sat).unwrap().is_sat());
        assert!(MathSatLike::new().solve(&sat).verdict.is_sat(), "n={n}");
        assert!(CvcLike::new().solve(&sat).verdict.is_sat(), "n={n}");
        let unsat = fischer_mutex(FischerConfig::standard(n));
        assert!(orc.solve(&unsat).unwrap().is_unsat());
        assert_eq!(
            MathSatLike::new().solve(&unsat).verdict,
            BaselineVerdict::Unsat
        );
        assert_eq!(CvcLike::new().solve(&unsat).verdict, BaselineVerdict::Unsat);
    }
}

#[test]
fn nonlinear_rejection_by_baselines() {
    use absolver::baselines::{BaselineVerdict, CvcLike, MathSatLike};
    for (_, p) in table1::table1_suite() {
        let m = MathSatLike::new().solve(&p);
        let c = CvcLike::new().solve(&p);
        assert!(matches!(m.verdict, BaselineVerdict::Rejected(_)));
        assert!(matches!(c.verdict, BaselineVerdict::Rejected(_)));
    }
}

#[test]
fn solve_all_surfaces_iteration_limit_error() {
    use absolver::core::{OrchestratorOptions, SolveError};
    let text = "p cnf 2 1\n1 2 0\nc def real 1 x >= 0\nc def real 2 x <= 100\n";
    let problem: AbProblem = text.parse().unwrap();
    let opts = OrchestratorOptions {
        max_iterations: 1,
        ..Default::default()
    };
    let mut orc = Orchestrator::with_defaults().with_options(opts);
    // Enumerating three models needs more than one Boolean iteration, so
    // the cap trips mid-enumeration and must surface as an error, not as
    // a silently short model list.
    assert_eq!(
        orc.solve_all(&problem, usize::MAX),
        Err(SolveError::IterationLimit(1))
    );
}

#[test]
fn solve_all_stops_at_unknown_without_fabricating_models() {
    use absolver::core::{CdclBoolean, PenaltyNonlinear, SimplexLinear};
    // Penalty-only stack on an UNSAT nonlinear core: every theory check is
    // Unknown, so enumeration finds nothing — and stats record why.
    let text = "p cnf 1 1\n1 0\nc def real 1 x^2 <= -1\nc range x -50 50\n";
    let problem: AbProblem = text.parse().unwrap();
    let mut orc = Orchestrator::custom(Box::new(CdclBoolean::new()))
        .with_linear(Box::new(SimplexLinear::new()))
        .with_nonlinear(Box::new(PenaltyNonlinear::default()));
    let models = orc.solve_all(&problem, usize::MAX).unwrap();
    assert!(models.is_empty());
    assert!(orc.stats().unknown_checks >= 1, "{}", orc.stats());
    assert_eq!(orc.solve(&problem).unwrap(), Outcome::Unknown);
}

#[test]
fn solve_all_mixes_decided_and_unknown_models() {
    use absolver::core::{CdclBoolean, PenaltyNonlinear, SimplexLinear};
    // One linearly-decidable atom and one hopeless nonlinear atom: the
    // enumeration returns exactly the models where the hopeless atom is
    // false, skipping (not inventing) the undecidable ones.
    let text = "p cnf 2 1\n1 -2 0\nc def real 1 x >= 0\nc def real 2 y^2 <= -1\nc range y -10 10\n";
    let problem: AbProblem = text.parse().unwrap();
    let mut orc = Orchestrator::custom(Box::new(CdclBoolean::new()))
        .with_linear(Box::new(SimplexLinear::new()))
        .with_nonlinear(Box::new(PenaltyNonlinear::default()));
    let models = orc.solve_all(&problem, usize::MAX).unwrap();
    assert!(!models.is_empty());
    for m in &models {
        assert!(m.satisfies(&problem, 1e-9));
    }
    assert!(orc.stats().unknown_checks >= 1, "{}", orc.stats());
}
