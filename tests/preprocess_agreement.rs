//! Differential tests for the equisatisfiable preprocessor: solving with
//! `--preprocess` (the `analyze` Simplifier installed) and without it
//! must produce identical verdicts, and every model of the preprocessed
//! run — after lifting through the reconstruction map — must satisfy the
//! *original* problem.

use absolver::analyze::Simplifier;
use absolver::core::{AbProblem, Orchestrator, VarKind};
use absolver::linear::CmpOp;
use absolver::nonlinear::Expr;
use absolver::num::{Interval, Rational};
use absolver_testkit::{Rng, TestRng};

/// Random problems in the solver_agreement shape, deliberately salted
/// with the structures the simplifier rewrites: statically-true atoms
/// (`v² ≥ −1`), unit clauses, pure Boolean variables, declared ranges,
/// and the occasional duplicate clause.
fn random_problem(rng: &mut TestRng) -> AbProblem {
    let mut b = AbProblem::builder();
    let n_arith = rng.gen_range(1..=2usize);
    let vars: Vec<usize> = (0..n_arith)
        .map(|i| b.arith_var(&format!("v{i}"), VarKind::Int))
        .collect();
    let mut atoms = Vec::new();
    for &v in &vars {
        let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-3));
        b.require(lo.positive());
        let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(3));
        b.require(hi.positive());
        if rng.gen_bool(0.5) {
            b.set_range(v, Interval::new(-8.0, 8.0));
        }
    }
    for _ in 0..rng.gen_range(1..5usize) {
        let v1 = vars[rng.gen_range(0..vars.len())];
        let v2 = vars[rng.gen_range(0..vars.len())];
        let k1 = rng.gen_range(-2i64..=2);
        let k2 = rng.gen_range(-2i64..=2);
        let rhs = rng.gen_range(-4i64..=4);
        let op = match rng.gen_range(0..5) {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Gt,
            3 => CmpOp::Ge,
            _ => CmpOp::Eq,
        };
        atoms.push(b.atom(
            Expr::int(k1) * Expr::var(v1) + Expr::int(k2) * Expr::var(v2),
            op,
            Rational::from_int(rhs),
        ));
    }
    if rng.gen_bool(0.5) {
        // A tautological theory atom: v² ≥ −1 holds at every real point,
        // so the simplifier eliminates it while the raw run must prove it.
        let v = vars[rng.gen_range(0..vars.len())];
        let atom = b.atom(
            Expr::var(v) * Expr::var(v),
            CmpOp::Ge,
            Rational::from_int(-1),
        );
        b.require(atom.positive());
    }
    // Pure Boolean skeleton: undefined variables the preprocessor may
    // resolve by unit propagation and pure-literal elimination.
    let pures: Vec<_> = (0..rng.gen_range(1..=2usize))
        .map(|_| b.bool_var())
        .collect();
    for _ in 0..rng.gen_range(1..4usize) {
        let len = rng.gen_range(1..=2usize);
        let mut lits: Vec<_> = (0..len)
            .map(|_| {
                let a = atoms[rng.gen_range(0..atoms.len())];
                if rng.gen_bool(0.5) {
                    a.positive()
                } else {
                    a.negative()
                }
            })
            .collect();
        if rng.gen_bool(0.4) {
            let p = pures[rng.gen_range(0..pures.len())];
            lits.push(if rng.gen_bool(0.5) {
                p.positive()
            } else {
                p.negative()
            });
        }
        b.add_clause(lits.clone());
        if rng.gen_bool(0.2) {
            b.add_clause(lits); // exact duplicate: must be dropped, harmlessly
        }
    }
    b.build()
}

#[test]
fn preprocess_on_and_off_are_verdict_identical() {
    let mut rng = TestRng::seed_from_u64(0x51_4D7);
    let mut work = 0u64;
    for round in 0..40 {
        let problem = random_problem(&mut rng);

        let mut plain = Orchestrator::with_defaults();
        let raw = plain.solve(&problem).unwrap();

        let mut pre = Orchestrator::with_defaults().with_preprocessor(Box::new(Simplifier::new()));
        let simplified = pre.solve(&problem).unwrap();

        assert_eq!(
            raw.is_sat(),
            simplified.is_sat(),
            "round {round}: raw {raw:?} vs preprocessed {simplified:?}"
        );
        assert_eq!(
            raw.is_unsat(),
            simplified.is_unsat(),
            "round {round}: raw {raw:?} vs preprocessed {simplified:?}"
        );
        if let Some(m) = simplified.model() {
            // The lifted model must satisfy the problem as *written*, not
            // the shrunk one the solver actually saw.
            assert!(
                m.satisfies(&problem, 1e-9),
                "round {round}: lifted model invalid"
            );
        }
        if let Some(m) = raw.model() {
            assert!(
                m.satisfies(&problem, 1e-9),
                "round {round}: raw model invalid"
            );
        }
        let stats = pre.stats();
        work += stats.pre_vars_eliminated
            + stats.pre_clauses_eliminated
            + stats.pre_atoms_eliminated
            + stats.pre_ranges_tightened;
    }
    assert!(work > 0, "corpus never exercised the simplifier");
}

#[test]
fn preprocessing_reports_its_work_in_stats() {
    // The paper's running example: two unit clauses force defined
    // variables, so ranges are tightened while defs survive.
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig2.dimacs"))
            .unwrap();
    let problem: AbProblem = text.parse().unwrap();
    let mut orc = Orchestrator::with_defaults().with_preprocessor(Box::new(Simplifier::new()));
    let outcome = orc.solve(&problem).unwrap();
    assert!(outcome.is_sat());
    let stats = orc.stats();
    assert!(
        stats.pre_ranges_tightened > 0,
        "fig2 must tighten i/j from `i ≥ 0`, `j ≥ 0`"
    );
    assert!(stats.preprocess_time > std::time::Duration::ZERO);
    if let Some(m) = outcome.model() {
        assert!(m.satisfies(&problem, 1e-5));
    }
}

#[test]
fn trivially_unsat_is_caught_before_the_solver_runs() {
    let problem: AbProblem = "p cnf 1 2\n1 0\n-1 0\n".parse().unwrap();
    let mut orc = Orchestrator::with_defaults().with_preprocessor(Box::new(Simplifier::new()));
    let outcome = orc.solve(&problem).unwrap();
    assert!(outcome.is_unsat());
    assert_eq!(
        orc.stats().boolean_iterations,
        0,
        "the Boolean engine must not start"
    );
}
