//! Property-based round-trip tests of the extended DIMACS format across
//! randomly generated AB-problems.

use absolver::core::{parser, AbProblem, VarKind};
use absolver::linear::CmpOp;
use absolver::nonlinear::Expr;
use absolver::num::Rational;
use proptest::prelude::*;

/// A small random expression over up to 3 variables.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-9i64..=9).prop_map(Expr::int),
        (0usize..3).prop_map(Expr::var),
        (1i64..=20, 1i64..=10).prop_map(|(n, d)| Expr::constant(Rational::new(n, d))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
            inner.clone().prop_map(|a| -a),
            (inner.clone(), 1i32..4).prop_map(|(a, n)| a.pow(n)),
            inner.clone().prop_map(Expr::sin),
            inner.clone().prop_map(Expr::abs),
            inner.clone().prop_map(Expr::sqrt),
        ]
    })
}

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
    ]
}

fn problem_strategy() -> impl Strategy<Value = AbProblem> {
    (
        proptest::collection::vec((expr_strategy(), op_strategy(), -20i64..=20), 1..6),
        proptest::collection::vec(
            proptest::collection::vec((0usize..6, any::<bool>()), 1..4),
            0..6,
        ),
        any::<bool>(),
    )
        .prop_map(|(atoms, clauses, int_kind)| {
            let mut b = AbProblem::builder();
            for v in 0..3 {
                b.arith_var(
                    &format!("v{v}"),
                    if int_kind { VarKind::Int } else { VarKind::Real },
                );
            }
            let vars: Vec<_> = atoms
                .into_iter()
                .map(|(e, op, rhs)| b.atom(e, op, Rational::from_int(rhs)))
                .collect();
            for clause in clauses {
                let lits: Vec<_> = clause
                    .into_iter()
                    .map(|(i, neg)| {
                        let v = vars[i % vars.len()];
                        if neg {
                            v.negative()
                        } else {
                            v.positive()
                        }
                    })
                    .collect();
                b.add_clause(lits);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → parse preserves structure and pointwise semantics.
    #[test]
    fn round_trip_preserves_semantics(p1 in problem_strategy()) {
        let text = parser::write(&p1);
        let p2: AbProblem = text.parse().expect("own output must parse");
        prop_assert_eq!(p1.cnf(), p2.cnf());
        prop_assert_eq!(p1.num_defs(), p2.num_defs());
        prop_assert_eq!(p1.num_constraints(), p2.num_constraints());
        prop_assert_eq!(p1.arith_vars().len(), p2.arith_vars().len());
        // Variable names and kinds survive.
        for (a, b) in p1.arith_vars().iter().zip(p2.arith_vars()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.kind, b.kind);
        }
        // Constraints evaluate identically on sample points.
        let samples = [
            vec![0.0, 0.0, 0.0],
            vec![1.0, -2.0, 3.0],
            vec![0.5, 0.25, -0.75],
            vec![10.0, 7.0, -9.0],
        ];
        for ((_, d1), (_, d2)) in p1.defs().zip(p2.defs()) {
            prop_assert_eq!(d1.constraints.len(), d2.constraints.len());
            for (c1, c2) in d1.constraints.iter().zip(&d2.constraints) {
                for s in &samples {
                    let r1 = c1.eval(s);
                    let r2 = c2.eval(s);
                    prop_assert_eq!(r1, r2, "{} vs {}", c1, c2);
                }
            }
        }
    }

    /// The writer's output is always plain-DIMACS-compatible: a SAT solver
    /// ignoring comments can load the Boolean part.
    #[test]
    fn output_is_plain_dimacs_compatible(p in problem_strategy()) {
        let text = parser::write(&p);
        let plain = absolver::logic::dimacs::parse(&text).expect("plain DIMACS layer");
        prop_assert_eq!(plain.cnf.num_vars(), p.cnf().num_vars());
        prop_assert_eq!(plain.cnf.len(), p.cnf().len());
    }
}
