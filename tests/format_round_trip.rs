//! Property-based round-trip tests of the extended DIMACS format across
//! randomly generated AB-problems.

use absolver::core::{parser, AbProblem, VarKind};
use absolver::nonlinear::Expr;
use absolver::num::Rational;
use absolver_testkit::domain::{self, ExprProfile};
use absolver_testkit::{gen, property, Gen};

fn problem_gen() -> Gen<AbProblem> {
    let atoms = gen::vec_of(
        {
            let e = domain::expr(3, 3, ExprProfile::rich());
            let op = domain::cmp_op();
            let rhs = gen::ints(-20i64..=20);
            Gen::new(move |src| (e.generate(src), op.generate(src), rhs.generate(src)))
        },
        1..6,
    );
    let clauses = gen::vec_of(
        gen::vec_of(
            {
                let i = gen::ints(0usize..6);
                let neg = gen::bool_any();
                Gen::new(move |src| (i.generate(src), neg.generate(src)))
            },
            1..4,
        ),
        0..6,
    );
    let int_kind = gen::bool_any();
    Gen::new(move |src| {
        let (atoms, clauses, int_kind) = (
            atoms.generate(src),
            clauses.generate(src),
            int_kind.generate(src),
        );
        let mut b = AbProblem::builder();
        for v in 0..3 {
            b.arith_var(
                &format!("v{v}"),
                if int_kind {
                    VarKind::Int
                } else {
                    VarKind::Real
                },
            );
        }
        let vars: Vec<_> = atoms
            .into_iter()
            .map(|(e, op, rhs)| b.atom(e, op, Rational::from_int(rhs)))
            .collect();
        for clause in clauses {
            let lits: Vec<_> = clause
                .into_iter()
                .map(|(i, neg)| {
                    let v = vars[i % vars.len()];
                    if neg {
                        v.negative()
                    } else {
                        v.positive()
                    }
                })
                .collect();
            b.add_clause(lits);
        }
        b.build()
    })
}

/// write → parse must preserve structure and pointwise semantics.
fn check_round_trip(p1: &AbProblem) {
    let text = parser::write(p1);
    let p2: AbProblem = text.parse().expect("own output must parse");
    assert_eq!(p1.cnf(), p2.cnf());
    assert_eq!(p1.num_defs(), p2.num_defs());
    assert_eq!(p1.num_constraints(), p2.num_constraints());
    assert_eq!(p1.arith_vars().len(), p2.arith_vars().len());
    // Variable names and kinds survive.
    for (a, b) in p1.arith_vars().iter().zip(p2.arith_vars()) {
        assert_eq!(&a.name, &b.name);
        assert_eq!(a.kind, b.kind);
    }
    // Constraints evaluate identically on sample points.
    let samples = [
        vec![0.0, 0.0, 0.0],
        vec![1.0, -2.0, 3.0],
        vec![0.5, 0.25, -0.75],
        vec![10.0, 7.0, -9.0],
    ];
    for ((_, d1), (_, d2)) in p1.defs().zip(p2.defs()) {
        assert_eq!(d1.constraints.len(), d2.constraints.len());
        for (c1, c2) in d1.constraints.iter().zip(&d2.constraints) {
            for s in &samples {
                let r1 = c1.eval(s);
                let r2 = c2.eval(s);
                assert_eq!(r1, r2, "{} vs {}", c1, c2);
            }
        }
    }
}

/// A single-atom problem over three real variables with no clauses,
/// the shape of both historical counterexamples below.
fn one_atom_problem(e: Expr, rhs: Rational) -> AbProblem {
    let mut b = AbProblem::builder();
    for v in 0..3 {
        b.arith_var(&format!("v{v}"), VarKind::Real);
    }
    b.atom(e, absolver::linear::CmpOp::Lt, rhs);
    b.build()
}

/// Historical counterexample (from the proptest era): the writer used
/// to drop the parenthesisation of a negative base under `pow`, so
/// `0 + (-4)^2` re-parsed with different semantics.
#[test]
fn regression_negative_base_pow() {
    let p = one_atom_problem(Expr::int(0) + Expr::int(-4).pow(2), Rational::from_int(0));
    check_round_trip(&p);
}

/// Historical counterexample (from the proptest era): a non-integer
/// rational constant (`1/6`) inside a nested division/power chain has
/// to survive the textual format exactly.
#[test]
fn regression_rational_constant_in_pow_chain() {
    let p = one_atom_problem(
        ((Expr::int(-1) * Expr::int(1)) / Expr::constant(Rational::new(1, 6))).pow(3),
        Rational::from_int(-1),
    );
    check_round_trip(&p);
}

property! {
    #![cases = 64]

    /// write → parse preserves structure and pointwise semantics.
    fn round_trip_preserves_semantics(p1 in problem_gen()) {
        check_round_trip(&p1);
    }

    /// The writer's output is always plain-DIMACS-compatible: a SAT solver
    /// ignoring comments can load the Boolean part.
    fn output_is_plain_dimacs_compatible(p in problem_gen()) {
        let text = parser::write(&p);
        let plain = absolver::logic::dimacs::parse(&text).expect("plain DIMACS layer");
        assert_eq!(plain.cnf.num_vars(), p.cnf().num_vars());
        assert_eq!(plain.cnf.len(), p.cnf().len());
    }
}
