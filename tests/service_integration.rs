//! Integration tests for the `absolverd` solve service: request
//! lifecycle (deadlines, cancellation, backpressure, priorities) and
//! cross-request cache semantics (verdict identity across tiers).

use absolver::core::parser;
use absolver::service::protocol::{CacheTier, ErrCode, Priority, Response, SolveFrame};
use absolver::service::{Server, ServerOptions, Submission};
use absolver_bench::workloads::threshold_problem;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A problem the solver takes long enough on (hundreds of Boolean
/// iterations, each a cancellation/deadline poll point) that a test can
/// reliably interrupt it mid-solve.
fn slow_problem_text() -> String {
    parser::write(&threshold_problem(120))
}

const EASY_SAT: &str =
    "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 3\nc range x -10 10\n";

fn one_worker() -> ServerOptions {
    ServerOptions {
        workers: 1,
        ..Default::default()
    }
}

fn frame(id: u64, text: &str) -> SolveFrame {
    SolveFrame {
        id,
        timeout_ms: None,
        priority: Priority::Normal,
        text: text.to_string(),
    }
}

fn submit_ok(server: &Server, frame: SolveFrame, tx: &mpsc::Sender<Response>) {
    match server.submit(frame, tx.clone()) {
        Submission::Enqueued { .. } => {}
        Submission::Rejected { .. } => panic!("unexpected rejection"),
        Submission::Answered => {}
    }
}

#[test]
fn cancellation_lands_mid_solve() {
    let server = Server::new(one_worker());
    let (tx, rx) = mpsc::channel();
    let slow = slow_problem_text();
    let cancel = match server.submit(frame(1, &slow), tx) {
        Submission::Enqueued { cancel } => cancel,
        Submission::Rejected { .. } => panic!("queue empty, must enqueue"),
        Submission::Answered => panic!("not statically unsat, must enqueue"),
    };
    // Let the solve get going, then pull the plug.
    std::thread::sleep(Duration::from_millis(50));
    cancel.store(true, std::sync::atomic::Ordering::Relaxed);
    let started = Instant::now();
    let response = rx.recv().expect("response");
    match response {
        Response::Err { code, .. } => assert_eq!(code, ErrCode::Cancelled),
        other => panic!("expected cancellation, got {other:?}"),
    }
    // The cancel must land at the next poll point, not after the full
    // solve; leave very generous slack for loaded CI machines.
    assert!(started.elapsed() < Duration::from_secs(30));
    server.shutdown();
}

#[test]
fn deadline_expires_mid_solve() {
    let server = Server::new(one_worker());
    let (tx, rx) = mpsc::channel();
    let slow = slow_problem_text();
    submit_ok(
        &server,
        SolveFrame {
            id: 2,
            timeout_ms: Some(100),
            priority: Priority::Normal,
            text: slow,
        },
        &tx,
    );
    match rx.recv().expect("response") {
        Response::Err { code, .. } => assert_eq!(code, ErrCode::Deadline),
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn deadline_expires_while_queued() {
    let server = Server::new(one_worker());
    let (tx, rx) = mpsc::channel();
    let slow = slow_problem_text();
    // Occupy the single worker...
    let cancel_a = match server.submit(frame(1, &slow), tx.clone()) {
        Submission::Enqueued { cancel } => cancel,
        Submission::Rejected { .. } => panic!("must enqueue"),
        Submission::Answered => panic!("not statically unsat, must enqueue"),
    };
    std::thread::sleep(Duration::from_millis(50));
    // ...queue a request whose deadline lapses while it waits...
    submit_ok(
        &server,
        SolveFrame {
            id: 2,
            timeout_ms: Some(1),
            priority: Priority::Normal,
            text: EASY_SAT.to_string(),
        },
        &tx,
    );
    std::thread::sleep(Duration::from_millis(20));
    // ...then free the worker so it picks the expired job up.
    cancel_a.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut saw_expired = false;
    for _ in 0..2 {
        match rx.recv().expect("response") {
            Response::Err {
                id: Some(2), code, ..
            } => {
                assert_eq!(code, ErrCode::Deadline);
                saw_expired = true;
            }
            Response::Err {
                id: Some(1), code, ..
            } => assert_eq!(code, ErrCode::Cancelled),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(saw_expired, "queued request must expire");
    assert!(
        server
            .stats()
            .expired
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

#[test]
fn backpressure_rejects_with_retry_hint() {
    let server = Server::new(ServerOptions {
        workers: 1,
        queue_capacity: 1,
        ..Default::default()
    });
    let (tx, rx) = mpsc::channel();
    let slow = slow_problem_text();
    // First job is popped by the worker almost immediately...
    let cancel_a = match server.submit(frame(1, &slow), tx.clone()) {
        Submission::Enqueued { cancel } => cancel,
        Submission::Rejected { .. } => panic!("must enqueue"),
        Submission::Answered => panic!("not statically unsat, must enqueue"),
    };
    std::thread::sleep(Duration::from_millis(100));
    // ...the second fills the queue...
    submit_ok(&server, frame(2, EASY_SAT), &tx);
    // ...and the third must be rejected with a retry hint.
    match server.submit(frame(3, EASY_SAT), tx.clone()) {
        Submission::Rejected { retry_after_ms } => assert!(retry_after_ms >= 10),
        Submission::Enqueued { .. } => panic!("queue must be full"),
        Submission::Answered => panic!("queue must be full"),
    }
    // The rejection response was delivered on the reply channel too.
    let mut saw_overload = false;
    cancel_a.store(true, std::sync::atomic::Ordering::Relaxed);
    for _ in 0..3 {
        if let Response::Err {
            id: Some(3),
            code,
            retry_after_ms,
            ..
        } = rx.recv().expect("response")
        {
            assert_eq!(code, ErrCode::Overload);
            assert!(retry_after_ms.is_some());
            saw_overload = true;
        }
    }
    assert!(saw_overload);
    assert_eq!(
        server
            .stats()
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    server.shutdown();
}

#[test]
fn high_priority_overtakes_queued_low() {
    let server = Server::new(one_worker());
    let (tx, rx) = mpsc::channel();
    let slow = slow_problem_text();
    let cancel_a = match server.submit(frame(1, &slow), tx.clone()) {
        Submission::Enqueued { cancel } => cancel,
        Submission::Rejected { .. } => panic!("must enqueue"),
        Submission::Answered => panic!("not statically unsat, must enqueue"),
    };
    std::thread::sleep(Duration::from_millis(50));
    submit_ok(
        &server,
        SolveFrame {
            id: 2,
            timeout_ms: None,
            priority: Priority::Low,
            text: EASY_SAT.to_string(),
        },
        &tx,
    );
    submit_ok(
        &server,
        SolveFrame {
            id: 3,
            timeout_ms: None,
            priority: Priority::High,
            text: EASY_SAT.to_string(),
        },
        &tx,
    );
    cancel_a.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut order = Vec::new();
    for _ in 0..3 {
        match rx.recv().expect("response") {
            Response::Ok { id, .. } => order.push(id),
            Response::Err { id: Some(1), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(order, vec![3, 2], "high band dequeues before low");
    server.shutdown();
}

/// The heart of the caching story: a cached answer must be *identical*
/// to a fresh solve — same verdict, same model — across all three tiers.
#[test]
fn cache_tiers_preserve_verdicts_and_models() {
    let server = Server::new(one_worker());
    let (tx, rx) = mpsc::channel();

    let solve = |id: u64, text: &str| -> Response {
        submit_ok(&server, frame(id, text), &tx);
        rx.recv().expect("response")
    };

    // Cold solve.
    let first = solve(1, EASY_SAT);
    let (verdict1, model1) = match &first {
        Response::Ok {
            verdict,
            cache,
            model,
            ..
        } => {
            assert_eq!(*cache, CacheTier::Cold);
            (*verdict, model.clone())
        }
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(verdict1, "sat");

    // Byte-identical resubmission: problem-cache hit, identical answer.
    match &solve(2, EASY_SAT) {
        Response::Ok {
            verdict,
            cache,
            model,
            ..
        } => {
            assert_eq!(*cache, CacheTier::Problem);
            assert_eq!(*verdict, verdict1);
            assert_eq!(*model, model1);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Same declarations, different clauses: warm-session solve. The
    // session path and a fresh server must agree on the verdict.
    let variant =
        "p cnf 2 2\n-1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 3\nc range x -10 10\n";
    match &solve(3, variant) {
        Response::Ok { verdict, cache, .. } => {
            assert_eq!(*cache, CacheTier::Session);
            assert_eq!(*verdict, "sat");
        }
        other => panic!("unexpected {other:?}"),
    }
    let fresh = Server::new(one_worker());
    let (ftx, frx) = mpsc::channel();
    submit_ok(&fresh, frame(9, variant), &ftx);
    match frx.recv().expect("response") {
        Response::Ok { verdict, .. } => assert_eq!(verdict, "sat"),
        other => panic!("unexpected {other:?}"),
    }
    fresh.shutdown();

    // An unsatisfiable variant over the same declarations: the warm
    // session must answer unsat — i.e. not leak any previous request's
    // clauses or a stale verdict. The contradiction is the classic
    // width-2 Boolean square, which unit propagation and the interval
    // dataflow cannot refute (no forced units), so it reaches the
    // session pool instead of the static-analysis fast path (that path
    // has its own test below).
    let unsat = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n\
                 c def real 1 x >= 1\nc def real 2 x <= 3\nc range x -10 10\n";
    match &solve(4, unsat) {
        Response::Ok { verdict, cache, .. } => {
            assert_eq!(*cache, CacheTier::Session);
            assert_eq!(*verdict, "unsat");
        }
        other => panic!("unexpected {other:?}"),
    }

    assert_eq!(
        server
            .stats()
            .aborts
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    server.shutdown();
}

/// Resubmitting the slow problem must answer from the problem cache
/// (solve_us == 0 path) — the latency win the service exists for.
#[test]
fn resubmission_skips_the_solve() {
    let server = Server::new(one_worker());
    let (tx, rx) = mpsc::channel();
    let slow = slow_problem_text();

    submit_ok(&server, frame(1, &slow), &tx);
    let cold = rx.recv().expect("response");
    let cold_us = match &cold {
        Response::Ok { solve_us, .. } => *solve_us,
        other => panic!("unexpected {other:?}"),
    };

    submit_ok(&server, frame(2, &slow), &tx);
    match rx.recv().expect("response") {
        Response::Ok {
            cache, solve_us, ..
        } => {
            assert_eq!(cache, CacheTier::Problem);
            assert!(
                solve_us < cold_us / 2 || cold_us < 2,
                "cache hit ({solve_us}us) must be far cheaper than the cold solve ({cold_us}us)"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}

/// Oversized problems are rejected by the limit gate, not solved.
#[test]
fn size_limits_reject_instead_of_solving() {
    let server = Server::new(ServerOptions {
        workers: 1,
        max_bool_vars: 4,
        ..Default::default()
    });
    let (tx, rx) = mpsc::channel();
    submit_ok(&server, frame(1, "p cnf 9 1\n1 2 0\n"), &tx);
    match rx.recv().expect("response") {
        Response::Err { code, .. } => assert_eq!(code, ErrCode::Limit),
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}

/// Statically-unsatisfiable bodies are answered with the distinct
/// `static-unsat` verdict: computed once on a worker (cold), then
/// answered at submission from the analysis cache — without ever
/// building or touching a session.
#[test]
fn statically_unsat_bodies_bypass_the_session_pool() {
    let server = Server::new(one_worker());
    let (tx, rx) = mpsc::channel();
    let unsat = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 0\n";

    submit_ok(&server, frame(1, unsat), &tx);
    match rx.recv().expect("response") {
        Response::Ok {
            verdict,
            cache,
            model,
            ..
        } => {
            assert_eq!(verdict, "static-unsat");
            assert_eq!(cache, CacheTier::Cold);
            assert!(model.is_empty(), "unsat answers carry no model");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Resubmission is answered at submission time from the analysis
    // cache — `Submission::Answered`, no worker involved.
    match server.submit(frame(2, unsat), tx.clone()) {
        Submission::Answered => {}
        other => panic!("expected an at-submission answer, got {other:?}"),
    }
    match rx.recv().expect("response") {
        Response::Ok {
            verdict,
            cache,
            solve_us,
            ..
        } => {
            assert_eq!(verdict, "static-unsat");
            assert_eq!(cache, CacheTier::Analysis);
            assert_eq!(solve_us, 0, "no solve happened");
        }
        other => panic!("unexpected {other:?}"),
    }

    let stats = server.stats_json();
    assert!(
        stats.contains("\"static_unsat\":2"),
        "both answers must be counted: {stats}"
    );
    // The session pool was never consulted for either request.
    assert!(stats.contains("\"session_hits\":0"), "{stats}");
    assert!(stats.contains("\"session_misses\":0"), "{stats}");
    server.shutdown();
}
