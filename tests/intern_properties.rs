//! Property suite for the hash-consed term arena (`absolver_nonlinear::term`).
//!
//! The intern layer's contract is threefold, and each clause gets its own
//! differential property against the legacy tree representation:
//!
//! * **Round-trip** — `rebuild(intern(e))` is structurally identical to
//!   `e`: interning neither simplifies nor reorders.
//! * **Id equality is structural equality** — two expressions intern to
//!   the same `TermId` exactly when they are structurally equal. This is
//!   the soundness basis for every identity-keyed cache downstream (the
//!   contraction cache, the service keys, the orchestrator fingerprint).
//! * **Tape evaluation agrees with tree evaluation** — the flat postorder
//!   tape must reproduce the recursive evaluator bit for bit, on `f64`
//!   points and on interval boxes, and the memoised derivative tape must
//!   be exactly the legacy `derivative(v).simplify()`.

use absolver::nonlinear::{term, Expr};
use absolver::num::Interval;
use absolver_testkit::{domain, gen, property, Gen};

fn expr_gen() -> Gen<Expr> {
    domain::expr(2, 3, domain::ExprProfile::rich())
}

/// Bitwise f64 equality with NaN ≡ NaN (evaluation must agree even on
/// undefined points).
fn same_f64(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

property! {
    #![cases = 128]

    /// Interning then rebuilding returns the exact input tree.
    fn intern_rebuild_round_trip(e in expr_gen()) {
        let id = term::intern(&e);
        assert_eq!(term::rebuild(id), e, "rebuild(intern(e)) must be e");
    }

    /// `TermId` equality coincides with structural equality.
    fn id_equality_is_structural_equality(e1 in expr_gen(), e2 in expr_gen()) {
        let (i1, i2) = (term::intern(&e1), term::intern(&e2));
        assert_eq!(
            i1 == i2,
            e1 == e2,
            "ids {i1:?}/{i2:?} disagree with structure for {e1} vs {e2}"
        );
    }

    /// The flat tape reproduces the recursive `f64` evaluator bit for bit.
    fn tape_f64_matches_tree_eval(
        e in expr_gen(),
        tx in gen::f64_in(-4.0, 4.0),
        ty in gen::f64_in(-4.0, 4.0),
    ) {
        let (_, tape) = term::intern_with_tape(&e);
        let point = [tx, ty];
        let flat = tape.eval_f64(&point);
        let tree = e.eval_f64(&point);
        assert!(same_f64(flat, tree), "{e} at {point:?}: tape {flat} vs tree {tree}");
    }

    /// The flat tape reproduces the recursive interval evaluator exactly.
    fn tape_interval_matches_tree_eval(
        e in expr_gen(),
        lo in gen::f64_in(-3.0, 0.0),
        w1 in gen::f64_in(0.0, 4.0),
        w2 in gen::f64_in(0.0, 4.0),
    ) {
        let (_, tape) = term::intern_with_tape(&e);
        let boxes = [Interval::new(lo, lo + w1), Interval::new(-1.0, -1.0 + w2)];
        let flat = tape.eval_interval(&boxes);
        let tree = e.eval_interval(&boxes);
        assert_eq!(flat, tree, "{e} over {boxes:?}: tape {flat} vs tree {tree}");
    }

    /// The memoised derivative tape is exactly the legacy symbolic
    /// derivative (simplified), for both mentioned variables — so the
    /// Newton contractor sees identical partials arena- or tree-side.
    fn derivative_tape_matches_legacy(e in expr_gen(), v in gen::ints(0usize..2)) {
        let id = term::intern(&e);
        let (did, dtape) = term::derivative_tape(id, v);
        let legacy = e.derivative(v).simplify();
        assert_eq!(
            term::rebuild(did),
            legacy,
            "∂{e}/∂v{v}: arena derivative diverges from legacy"
        );
        // And the memo returns the identical id on a second request.
        let (did2, _) = term::derivative_tape(id, v);
        assert_eq!(did, did2, "derivative memo must be stable");
        // Spot-check the tape evaluates like the legacy tree.
        let p = [0.5, -0.25];
        assert!(
            same_f64(dtape.eval_f64(&p), legacy.eval_f64(&p)),
            "∂{e}/∂v{v}: tape/tree eval diverge at {p:?}"
        );
    }
}

#[test]
fn interning_twice_hits_the_dedup_counter() {
    // A fresh, unlikely-to-collide expression: first intern allocates,
    // the second is answered by the table.
    let e = (Expr::var(0) + Expr::int(987_654_321)).sin() * Expr::var(1);
    let (i0, d0) = term::local_counters();
    let a = term::intern(&e);
    let (i1, d1) = term::local_counters();
    assert!(i1 > i0 || d1 > d0, "interning must touch the counters");
    let b = term::intern(&e);
    let (_, d2) = term::local_counters();
    assert_eq!(a, b);
    assert!(d2 > d1, "re-interning a known term must count dedup hits");
}

#[test]
fn arena_stats_report_dedup() {
    let e = Expr::var(0) * Expr::var(0) + Expr::int(77_777);
    term::intern(&e);
    term::intern(&e);
    let stats = term::stats();
    assert!(stats.terms > 0);
    assert!(stats.dedup_hits > 0, "global dedup counter must move");
}
