//! Property tests for the session frame contract (the guarantees stated
//! in `crates/core/src/session.rs`):
//!
//! * `pop` is a true undo — after a push/mutate/pop excursion the next
//!   `check` reproduces the exact pre-push verdict;
//! * an UNSAT verdict obtained *inside* a frame never leaks into later
//!   frames as an unconditional UNSAT (the classic incremental-SMT
//!   assumption-leak bug);
//! * cumulative session statistics are monotone: every check only adds
//!   to the session-lifetime counters.

use absolver::core::{Orchestrator, OrchestratorStats, Outcome, Session, VarKind};
use absolver::linear::CmpOp;
use absolver::nonlinear::Expr;
use absolver::num::{Interval, Rational};
use absolver_testkit::{gen, property, Gen};

/// A random linear assertion `k1·v0 + k2·v1 ⋈ rhs`, immediately required.
#[derive(Clone, Debug)]
struct Assertion {
    k1: i64,
    k2: i64,
    rhs: i64,
    cmp: usize,
    positive: bool,
}

fn assertion_gen() -> Gen<Assertion> {
    let coeff = gen::ints(-2i64..=2);
    let rhs = gen::ints(-4i64..=4);
    let cmp = gen::ints(0..=4usize);
    let sign = gen::bool_any();
    Gen::new(move |src| Assertion {
        k1: coeff.generate(src),
        k2: coeff.generate(src),
        rhs: rhs.generate(src),
        cmp: cmp.generate(src),
        positive: sign.generate(src),
    })
}

fn cmp_op(idx: usize) -> CmpOp {
    match idx % 5 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        _ => CmpOp::Eq,
    }
}

fn verdict(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Sat(_) => "sat",
        Outcome::Unsat => "unsat",
        Outcome::Unknown => "unknown",
    }
}

/// Fresh session over two boxed integers; returns the session.
fn boxed_session() -> Session {
    let mut session = Session::new();
    for i in 0..2 {
        let v = session
            .arith_var(&format!("v{i}"), VarKind::Int)
            .expect("fresh names cannot clash");
        session
            .assert_range(v, Interval::new(-3.0, 3.0))
            .expect("declared above");
        let lo = session
            .atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-3))
            .expect("declared");
        session.require(lo.positive());
        let hi = session
            .atom(Expr::var(v), CmpOp::Le, Rational::from_int(3))
            .expect("declared");
        session.require(hi.positive());
    }
    session
}

fn apply(session: &mut Session, a: &Assertion) {
    let expr = Expr::int(a.k1) * Expr::var(0) + Expr::int(a.k2) * Expr::var(1);
    let atom = session
        .atom(expr, cmp_op(a.cmp), Rational::from_int(a.rhs))
        .expect("declared");
    session.require(if a.positive {
        atom.positive()
    } else {
        atom.negative()
    });
}

/// The session-lifetime counters that must never decrease.
fn counters(stats: &OrchestratorStats) -> [u64; 8] {
    [
        stats.boolean_iterations,
        stats.theory_checks,
        stats.conflicts_fed_back,
        stats.conflict_literals,
        stats.unknown_checks,
        stats.simplex_pivots,
        stats.theory_cache_hits,
        stats.theory_cache_misses,
    ]
}

property! {
    #![cases = 64]

    /// `pop` restores the exact pre-push verdict, whatever happened in
    /// the frame (including nested pushes and an UNSAT check).
    fn pop_restores_the_pre_push_verdict(
        base in gen::vec_of(assertion_gen(), 0..=4),
        frame in gen::vec_of(assertion_gen(), 1..=4),
        nested in gen::bool_any(),
        check_inside in gen::bool_any(),
    ) {
        let mut session = boxed_session();
        for a in &base {
            apply(&mut session, a);
        }
        let before = session.check().expect("base check");

        session.push();
        for a in &frame {
            apply(&mut session, a);
        }
        if nested {
            session.push();
            apply(&mut session, &frame[0]);
        }
        if check_inside {
            let _ = session.check().expect("frame check");
        }
        if nested {
            session.pop().expect("nested frame");
        }
        session.pop().expect("outer frame");

        let after = session.check().expect("post-pop check");
        assert_eq!(
            verdict(&before),
            verdict(&after),
            "pop failed to restore the pre-push verdict",
        );
        if let Some(m) = after.model() {
            assert!(
                m.satisfies(session.problem(), 1e-9),
                "post-pop model fails re-check"
            );
        }
    }

    /// The assumption-leak property, stated directly: a session whose
    /// base assertions are satisfiable stays satisfiable after any
    /// push/assert-to-UNSAT/pop excursion — frame-local contradictions
    /// must never become unconditional.
    fn framed_unsat_never_leaks(
        frame in gen::vec_of(assertion_gen(), 0..=3),
    ) {
        let mut session = boxed_session();
        assert!(session.check().expect("base").is_sat(), "box alone is sat");

        session.push();
        for a in &frame {
            apply(&mut session, a);
        }
        // Guaranteed contradiction on top of whatever the frame added.
        let lt = session.atom(Expr::var(0), CmpOp::Lt, Rational::from_int(0)).expect("declared");
        session.require(lt.positive());
        let ge = session.atom(Expr::var(0), CmpOp::Ge, Rational::from_int(0)).expect("declared");
        session.require(ge.positive());
        assert!(
            session.check().expect("frame check").is_unsat(),
            "x < 0 and x >= 0 must contradict"
        );
        session.pop().expect("matching push");

        let after = session.check().expect("post-pop check");
        assert!(
            after.is_sat(),
            "frame-local UNSAT leaked into the base frame: {after:?}"
        );
    }

    /// Cumulative statistics only grow: after every check, each lifetime
    /// counter is at least its previous value, and checks/lemma counts
    /// behave likewise.
    fn cumulative_stats_are_monotone(
        rounds in gen::vec_of(assertion_gen(), 1..=6),
        with_frames in gen::bool_any(),
    ) {
        let mut session = Session::with_orchestrator(Orchestrator::with_defaults());
        let v = session.arith_var("x", VarKind::Int).expect("fresh");
        session.assert_range(v, Interval::new(-3.0, 3.0)).expect("declared");
        let lo = session.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-3)).expect("declared");
        session.require(lo.positive());
        let hi = session.atom(Expr::var(v), CmpOp::Le, Rational::from_int(3)).expect("declared");
        session.require(hi.positive());

        let mut prev = counters(&session.cumulative_stats());
        let mut prev_checks = session.checks();
        for (i, a) in rounds.iter().enumerate() {
            if with_frames && i % 2 == 0 {
                session.push();
            }
            let expr = Expr::int(a.k1) * Expr::var(0);
            let atom = session.atom(expr, cmp_op(a.cmp), Rational::from_int(a.rhs)).expect("declared");
            session.require(if a.positive { atom.positive() } else { atom.negative() });
            let _ = session.check().expect("round check");

            let now = counters(&session.cumulative_stats());
            for (slot, (new, old)) in now.iter().zip(prev.iter()).enumerate() {
                assert!(
                    new >= old,
                    "round {i}: cumulative counter #{slot} decreased ({old} -> {new})"
                );
            }
            assert!(
                session.checks() == prev_checks + 1,
                "round {i}: check counter must advance by exactly one"
            );
            prev = now;
            prev_checks = session.checks();

            if with_frames && i % 2 == 0 {
                session.pop().expect("matching push");
            }
        }
    }
}
