//! Differential suite for the contractor cascade: the *configuration* of
//! the nonlinear engine (which contractors run, whether the contraction
//! cache is on, how many worker threads explore boxes) is a scheduling
//! choice and must never change a verdict. Every satisfiable verdict's
//! model is re-checked against the problem.
//!
//! The corpus is decisively solvable — each instance is either clearly
//! satisfiable or refutable well inside the box budget — because only the
//! budget-limited `Unknown` frontier may legitimately differ between
//! configurations.

use absolver::linear::CmpOp;
use absolver::nonlinear::{ContractorConfig, Expr, NlConstraint, NlOptions, NlProblem, NlVerdict};
use absolver::num::{Interval, Rational};
use absolver_testkit::{domain, gen, property, Gen};

fn q(n: i64) -> Rational {
    Rational::from_int(n)
}

fn x() -> Expr {
    Expr::var(0)
}

fn y() -> Expr {
    Expr::var(1)
}

/// Engine configurations under test: full cascade vs. HC4-only, cache on
/// vs. off, sequential vs. 2 and 4 worker threads.
fn configs() -> Vec<(&'static str, NlOptions)> {
    let base = NlOptions::default;
    vec![
        ("cascade+cache", base()),
        (
            "hc4-only",
            NlOptions {
                contractors: ContractorConfig::hc4_only(),
                ..base()
            },
        ),
        (
            "no-cache",
            NlOptions {
                contraction_cache: false,
                ..base()
            },
        ),
        (
            "hc4-only,no-cache",
            NlOptions {
                contractors: ContractorConfig::hc4_only(),
                contraction_cache: false,
                ..base()
            },
        ),
        (
            "jobs-2",
            NlOptions {
                nl_jobs: 2,
                ..base()
            },
        ),
        (
            "jobs-4",
            NlOptions {
                nl_jobs: 4,
                ..base()
            },
        ),
    ]
}

/// Solves `p` under every configuration, asserts verdict identity, and
/// re-checks every satisfiable model against the problem itself.
fn assert_agreement(label: &str, p: &NlProblem) {
    let mut first: Option<(String, &'static str)> = None;
    for (name, opts) in configs() {
        let verdict = p.solve_with(&opts);
        let kind = match &verdict {
            NlVerdict::Sat(model) => {
                assert!(
                    p.is_satisfied(model, 1e-6),
                    "{label}/{name}: claimed model fails re-check: {model:?}"
                );
                "sat"
            }
            NlVerdict::Unsat => "unsat",
            NlVerdict::Unknown => "unknown",
        };
        match &first {
            None => first = Some((kind.to_string(), name)),
            Some((expect, base)) => assert_eq!(
                kind, expect,
                "{label}: verdict diverged — {base} says {expect}, {name} says {kind}"
            ),
        }
    }
}

fn bounded(p: &mut NlProblem, lo: f64, hi: f64) {
    for v in 0..p.num_vars() {
        p.bound_var(v, Interval::new(lo, hi));
    }
}

#[test]
fn circle_chord_is_sat_everywhere() {
    // x² + y² ≤ 1 ∧ x + y ≥ 1: feasible on the chord.
    let mut p = NlProblem::new(2);
    p.add_constraint(NlConstraint::new(x().pow(2) + y().pow(2), CmpOp::Le, q(1)));
    p.add_constraint(NlConstraint::new(x() + y(), CmpOp::Ge, q(1)));
    bounded(&mut p, -2.0, 2.0);
    assert_agreement("circle-chord", &p);
}

#[test]
fn circle_far_line_is_unsat_everywhere() {
    // x² + y² ≤ 1 ∧ x + y ≥ 3: the line misses the disc.
    let mut p = NlProblem::new(2);
    p.add_constraint(NlConstraint::new(x().pow(2) + y().pow(2), CmpOp::Le, q(1)));
    p.add_constraint(NlConstraint::new(x() + y(), CmpOp::Ge, q(3)));
    bounded(&mut p, -2.0, 2.0);
    assert_agreement("circle-far-line", &p);
}

#[test]
fn trig_band_is_sat_everywhere() {
    // sin(x) ≥ ½ over [0, π]: HC4 is blind, BC3 shaves, all agree.
    let mut p = NlProblem::new(1);
    p.add_constraint(NlConstraint::new(
        x().sin(),
        CmpOp::Ge,
        "0.5".parse().unwrap(),
    ));
    p.bound_var(0, Interval::new(0.0, std::f64::consts::PI));
    assert_agreement("trig-band", &p);
}

#[test]
fn sqrt_two_equality_is_sat_everywhere() {
    // x² = 2 over [0, 2]: the Newton stage's home turf.
    let mut p = NlProblem::new(1);
    p.add_constraint(NlConstraint::new(x().pow(2), CmpOp::Eq, q(2)));
    p.bound_var(0, Interval::new(0.0, 2.0));
    assert_agreement("sqrt-two", &p);
}

#[test]
fn negative_square_is_unsat_everywhere() {
    // x² = -1 over [-5, 5]: refuted at the root box.
    let mut p = NlProblem::new(1);
    p.add_constraint(NlConstraint::new(x().pow(2), CmpOp::Eq, q(-1)));
    p.bound_var(0, Interval::new(-5.0, 5.0));
    assert_agreement("negative-square", &p);
}

#[test]
fn positive_exponential_is_unsat_everywhere() {
    // eˣ ≤ 0 over [-5, 5].
    let mut p = NlProblem::new(1);
    p.add_constraint(NlConstraint::new(x().exp(), CmpOp::Le, q(0)));
    p.bound_var(0, Interval::new(-5.0, 5.0));
    assert_agreement("positive-exponential", &p);
}

#[test]
fn hyperbola_line_system_is_sat_everywhere() {
    // x·y = 1 ∧ x + y = 2 → x = y = 1.
    let mut p = NlProblem::new(2);
    p.add_constraint(NlConstraint::new(x() * y(), CmpOp::Eq, q(1)));
    p.add_constraint(NlConstraint::new(x() + y(), CmpOp::Eq, q(2)));
    bounded(&mut p, -4.0, 4.0);
    assert_agreement("hyperbola-line", &p);
}

#[test]
fn strict_boundary_is_unsat_everywhere() {
    // x < 0 ∧ x ≥ 0: empty by strictness alone — the closed-interval
    // contraction fixpoint sits exactly on the boundary.
    let mut p = NlProblem::new(1);
    p.add_constraint(NlConstraint::new(x(), CmpOp::Lt, q(0)));
    p.add_constraint(NlConstraint::new(x(), CmpOp::Ge, q(0)));
    p.bound_var(0, Interval::new(-1.0, 1.0));
    assert_agreement("strict-boundary", &p);
}

/// Real-definedness guard (see `tests/contractor_soundness.rs`).
fn real_defined(e: &Expr, point: &[f64]) -> bool {
    let own = e.eval_f64(point).is_finite();
    own && match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Neg(a)
        | Expr::Pow(a, _)
        | Expr::Sin(a)
        | Expr::Cos(a)
        | Expr::Exp(a)
        | Expr::Ln(a)
        | Expr::Sqrt(a)
        | Expr::Abs(a) => real_defined(a, point),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
            real_defined(a, point) && real_defined(b, point)
        }
    }
}

fn expr_gen() -> Gen<Expr> {
    domain::expr(2, 3, domain::ExprProfile::polyish())
}

property! {
    #![cases = 48]

    /// Random anchored-satisfiable conjunctions: two inequalities built
    /// to share a witness point. Whatever each configuration concludes,
    /// they must all conclude the same thing, and every claimed model
    /// must satisfy the problem.
    fn random_anchored_conjunctions_agree(
        e1 in expr_gen(),
        e2 in expr_gen(),
        px in gen::f64_in(-3.0, 3.0),
        py in gen::f64_in(-3.0, 3.0),
        s1 in gen::f64_in(0.5, 3.0),
        s2 in gen::f64_in(0.5, 3.0),
        ge1 in gen::bool_any(),
        ge2 in gen::bool_any(),
    ) {
        let p = [px, py];
        let mut problem = NlProblem::new(2);
        for (e, slack, ge) in [(e1, s1, ge1), (e2, s2, ge2)] {
            absolver_testkit::assume!(real_defined(&e, &p));
            let v = e.eval_f64(&p);
            absolver_testkit::assume!(v.is_finite() && v.abs() < 1e6);
            let rhs = if ge { v - slack } else { v + slack };
            let rhs = match Rational::from_f64(rhs) {
                Some(r) => r,
                None => absolver_testkit::runner::reject_case(),
            };
            let op = if ge { CmpOp::Ge } else { CmpOp::Le };
            problem.add_constraint(NlConstraint::new(e, op, rhs));
        }
        bounded(&mut problem, -4.0, 4.0);
        assert_agreement("random-anchored", &problem);
    }
}
