//! Differential testing of the parallel subsystem: `solve_parallel` under
//! both strategies and several job counts must agree with the sequential
//! control loop, cancellation must be observed within a bounded number of
//! iterations even from deep inside a theory check, and `--time-limit`
//! must hold as a wall-clock deadline rather than a per-iteration hint.

use absolver::core::{
    AbProblem, CdclBoolean, Orchestrator, OrchestratorOptions, Outcome, ParallelOptions,
    ParallelStrategy, PenaltyNonlinear, SimplexLinear, VarKind,
};
use absolver::linear::CmpOp;
use absolver::logic::Tri;
use absolver::nonlinear::Expr;
use absolver::num::Rational;
use absolver_testkit::{domain, gen, property, Gen};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A testkit generator for small Boolean-linear AB-problems (the linear
/// theory path is complete, so sequential verdicts are always Sat or
/// Unsat and differential comparison is exact).
fn linear_problem_gen() -> Gen<AbProblem> {
    let n_vars = gen::ints(1usize..=3);
    let int_kind = gen::bool_any();
    let atoms = gen::vec_of(
        {
            let var = gen::ints(0usize..3);
            let k = gen::ints(-3i64..=3);
            let rhs = gen::ints(-5i64..=5);
            let op = domain::cmp_op();
            Gen::new(move |src| {
                (
                    var.generate(src),
                    k.generate(src),
                    op.generate(src),
                    rhs.generate(src),
                )
            })
        },
        1..5,
    );
    let clauses = gen::vec_of(
        gen::vec_of(
            {
                let idx = gen::ints(0usize..8);
                let neg = gen::bool_any();
                Gen::new(move |src| (idx.generate(src), neg.generate(src)))
            },
            1..3,
        ),
        1..4,
    );
    Gen::new(move |src| {
        let n = n_vars.generate(src);
        let kind = if int_kind.generate(src) {
            VarKind::Int
        } else {
            VarKind::Real
        };
        let mut b = AbProblem::builder();
        let vars: Vec<usize> = (0..n)
            .map(|i| b.arith_var(&format!("v{i}"), kind))
            .collect();
        // Box every variable so verdicts don't hinge on unbounded rays.
        for &v in &vars {
            let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-6));
            b.require(lo.positive());
            let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(6));
            b.require(hi.positive());
        }
        let atom_vars: Vec<_> = atoms
            .generate(src)
            .into_iter()
            .map(|(v, k, op, rhs)| {
                b.atom(
                    Expr::int(k) * Expr::var(vars[v % vars.len()]),
                    op,
                    Rational::from_int(rhs),
                )
            })
            .collect();
        for clause in clauses.generate(src) {
            let lits: Vec<_> = clause
                .into_iter()
                .map(|(i, neg)| {
                    let a = atom_vars[i % atom_vars.len()];
                    if neg {
                        a.negative()
                    } else {
                        a.positive()
                    }
                })
                .collect();
            b.add_clause(lits);
        }
        b.build()
    })
}

property! {
    #![cases = 100]

    /// Both parallel strategies at 1, 2, and 4 jobs return the same
    /// SAT/UNSAT verdict as the sequential control loop, and every Sat
    /// model satisfies the three-valued Boolean circuit *and* the
    /// arithmetic constraints.
    fn parallel_agrees_with_sequential(problem in linear_problem_gen()) {
        let mut orc = Orchestrator::with_defaults();
        let sequential = orc.solve(&problem).unwrap();
        assert!(
            !matches!(sequential, Outcome::Unknown),
            "linear problems must be decided sequentially"
        );

        for strategy in [ParallelStrategy::Portfolio, ParallelStrategy::Cubes] {
            for jobs in [1usize, 2, 4] {
                let opts = ParallelOptions {
                    jobs,
                    strategy,
                    deterministic: true,
                    ..Default::default()
                };
                let (outcome, stats) = orc.solve_parallel(&problem, &opts).unwrap();
                assert_eq!(
                    sequential.is_sat(),
                    outcome.is_sat(),
                    "{strategy} jobs={jobs}: sequential {sequential:?} vs parallel {outcome:?} \
                     ({stats})"
                );
                assert_eq!(sequential.is_unsat(), outcome.is_unsat(), "{strategy} jobs={jobs}");
                if let Outcome::Sat(m) = &outcome {
                    assert_eq!(
                        problem.cnf().eval(&m.boolean),
                        Tri::True,
                        "{strategy} jobs={jobs}: parallel model fails the Boolean circuit"
                    );
                    assert!(
                        m.satisfies(&problem, 1e-9),
                        "{strategy} jobs={jobs}: parallel model invalid"
                    );
                }
            }
        }
    }
}

/// A problem whose only theory check is a huge numerical search: with a
/// penalty-only stack and an inflated multistart budget, one
/// `local_search` call would run for minutes — far past any test budget —
/// unless the engine polls its interrupt.
fn heavy_nonlinear_problem() -> AbProblem {
    "p cnf 1 1\n1 0\nc def real 1 x^2 <= -1\nc range x -50 50\n"
        .parse()
        .unwrap()
}

fn heavy_penalty_orchestrator() -> Orchestrator {
    let mut penalty = PenaltyNonlinear::default();
    penalty.options.restarts = 50_000_000;
    penalty.options.iterations = 100_000;
    Orchestrator::custom(Box::new(CdclBoolean::new()))
        .with_linear(Box::new(SimplexLinear::new()))
        .with_nonlinear(Box::new(penalty))
}

/// A shard stuck deep inside a large nonlinear budget observes the
/// cancellation token within a bounded number of iterations: the solve
/// returns `Unknown` with `cancelled` set well before the budget is
/// exhausted, after at most the one Boolean iteration it was inside.
#[test]
fn cancellation_is_observed_inside_a_theory_check() {
    let problem = heavy_nonlinear_problem();
    let token = Arc::new(AtomicBool::new(false));
    let (outcome, stats, observed_after) = std::thread::scope(|scope| {
        let solver_token = token.clone();
        let handle = scope.spawn(move || {
            let mut orc = heavy_penalty_orchestrator().with_cancel_token(solver_token);
            let outcome = orc.solve(&problem).unwrap();
            (outcome, orc.stats())
        });
        std::thread::sleep(Duration::from_millis(100));
        let raised = Instant::now();
        token.store(true, Ordering::Relaxed);
        let (outcome, stats) = handle.join().unwrap();
        (outcome, stats, raised.elapsed())
    });
    assert_eq!(outcome, Outcome::Unknown);
    assert!(
        stats.cancelled,
        "stats must record the cancellation: {stats}"
    );
    assert!(
        stats.boolean_iterations <= 2,
        "cancel must interrupt the theory check itself, not wait out the budget: {stats}"
    );
    assert!(
        observed_after < Duration::from_secs(5),
        "token observed only after {observed_after:?}"
    );
}

/// Regression for `--time-limit`: the limit is a deadline *inside* the
/// theory budget, so a single theory check longer than the whole limit
/// is interrupted — previously the limit was only consulted between
/// Boolean iterations and a deep check could overshoot it arbitrarily.
#[test]
fn time_limit_interrupts_a_deep_theory_check() {
    let problem = heavy_nonlinear_problem();
    let limit = Duration::from_millis(200);
    let mut orc = heavy_penalty_orchestrator().with_options(OrchestratorOptions {
        time_limit: Some(limit),
        ..Default::default()
    });
    let started = Instant::now();
    let outcome = orc.solve(&problem).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(outcome, Outcome::Unknown);
    assert!(
        orc.stats().timed_out,
        "stats must record the timeout: {}",
        orc.stats()
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "a 200ms limit must not let one theory check run for {elapsed:?}"
    );
}

/// `--time-limit` composed with `--jobs`: every shard shares one
/// wall-clock deadline (cubes must not restart the clock per cube), and
/// the aggregated stats report the timeout.
#[test]
fn time_limit_bounds_parallel_runs() {
    let problem = heavy_nonlinear_problem();
    for strategy in [ParallelStrategy::Portfolio, ParallelStrategy::Cubes] {
        let opts = ParallelOptions {
            jobs: 2,
            strategy,
            base: OrchestratorOptions {
                time_limit: Some(Duration::from_millis(200)),
                ..Default::default()
            },
            ..Default::default()
        };
        let started = Instant::now();
        let (outcome, stats) = Orchestrator::with_defaults()
            .solve_parallel(&problem, &opts)
            .unwrap();
        let elapsed = started.elapsed();
        // The interval engine proves this UNSAT instantly, so the default
        // portfolio/cube stacks may legitimately finish inside the limit;
        // what is forbidden is running long or claiming Sat.
        assert!(!outcome.is_sat(), "{strategy}: x^2 <= -1 cannot be Sat");
        assert!(
            elapsed < Duration::from_secs(10),
            "{strategy}: 200ms limit overshot to {elapsed:?} ({stats})"
        );
    }
}

/// A cancelled parallel run reports its cancellation latency, and the
/// token round-trip stays within the cooperative-polling bound.
#[test]
fn portfolio_reports_cancel_latency() {
    // Satisfiable linear problem: some shard wins quickly and cancels
    // the rest.
    let problem: AbProblem = "p cnf 2 1\n1 2 0\nc def real 1 x >= 0\nc def real 2 x <= 100\n"
        .parse()
        .unwrap();
    let opts = ParallelOptions {
        jobs: 4,
        ..Default::default()
    };
    let (outcome, stats) = Orchestrator::with_defaults()
        .solve_parallel(&problem, &opts)
        .unwrap();
    assert!(outcome.is_sat());
    assert!(
        stats.winner.is_some(),
        "someone must claim the win: {stats}"
    );
    if let Some(latency) = stats.cancel_latency {
        assert!(
            latency < Duration::from_secs(5),
            "cancellation latency {latency:?} exceeds the cooperative bound"
        );
    }
}
