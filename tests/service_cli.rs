//! End-to-end tests of the `absolverd` binary: the stdin/stdout line
//! protocol and the unix-socket front end.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

const ABSOLVERD: &str = env!("CARGO_BIN_EXE_absolverd");

const PROBLEM: &str = "p cnf 2 2\n\
    1 0\n\
    2 0\n\
    c def real 1 x >= 1\n\
    c def real 2 x <= 3\n\
    c range x -10 10\n\
    .\n";

#[test]
fn stdin_protocol_round_trip() {
    let mut child = Command::new(ABSOLVERD)
        .args(["--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn absolverd");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped")).lines();
    let mut next_line = move || stdout.next().expect("line").expect("utf8 line");

    // Responses are asynchronous in general, but driving one command at
    // a time makes the exchange deterministic.
    stdin.write_all(b"ping\n").expect("write");
    assert_eq!(next_line(), "pong");

    stdin
        .write_all(format!("solve id=1\n{PROBLEM}").as_bytes())
        .expect("write");
    let ok1 = next_line();
    assert!(ok1.starts_with("ok id=1"), "{ok1}");
    assert!(ok1.contains("verdict=sat"), "{ok1}");
    assert!(ok1.contains("cache=cold"), "{ok1}");
    assert!(ok1.contains("model x="), "{ok1}");

    stdin
        .write_all(format!("solve id=2\n{PROBLEM}").as_bytes())
        .expect("write");
    let ok2 = next_line();
    assert!(ok2.starts_with("ok id=2"), "{ok2}");
    assert!(ok2.contains("verdict=sat"), "{ok2}");
    assert!(ok2.contains("cache=problem"), "{ok2}");

    stdin.write_all(b"bogus command\n").expect("write");
    let err = next_line();
    assert!(
        err.starts_with("err") && err.contains("code=proto"),
        "{err}"
    );

    stdin.write_all(b"stats\n").expect("write");
    let stats = next_line();
    assert!(stats.starts_with("stats "), "{stats}");
    assert!(stats.contains("\"problem_hits\":1"), "{stats}");
    assert!(stats.contains("\"completed\":2"), "{stats}");
    assert!(stats.contains("\"aborts\":0"), "{stats}");

    stdin.write_all(b"shutdown\n").expect("write");
    assert_eq!(next_line(), "bye");

    let status = child.wait().expect("absolverd exits");
    assert!(status.success(), "exit: {status:?}");
}

#[test]
fn stdin_eof_shuts_down_cleanly() {
    let output = Command::new(ABSOLVERD)
        .args(["--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map(|mut child| {
            // Close stdin with no input at all: EOF must end the daemon.
            drop(child.stdin.take());
            child.wait_with_output().expect("absolverd exits")
        })
        .expect("spawn absolverd");
    assert!(output.status.success(), "exit: {:?}", output.status);
}

#[test]
fn unix_socket_serves_and_shuts_down() {
    let dir = std::env::temp_dir().join(format!("absolverd-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let sock = dir.join("d.sock");

    let mut child = Command::new(ABSOLVERD)
        .args(["--workers", "1", "--socket"])
        .arg(&sock)
        .stdin(Stdio::piped()) // held open; the socket client drives shutdown
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn absolverd");

    // The socket appears asynchronously after startup.
    let mut stream = None;
    for _ in 0..100 {
        match std::os::unix::net::UnixStream::connect(&sock) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let stream = stream.expect("connect to absolverd socket");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(b"ping\nsolve id=7\np cnf 1 1\n1 0\n.\nshutdown\n")
        .expect("write");
    let reader = BufReader::new(stream);
    let lines: Vec<String> = reader.lines().map_while(Result::ok).collect();
    assert!(lines.iter().any(|l| l == "pong"), "{lines:?}");
    assert!(
        lines.iter().any(|l| l.starts_with("ok id=7 verdict=sat")),
        "{lines:?}"
    );
    assert_eq!(lines.last().map(String::as_str), Some("bye"), "{lines:?}");

    let status = child.wait().expect("absolverd exits after shutdown");
    assert!(status.success(), "exit: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
