//! Integration tests for the observability layer: per-phase timing
//! invariants, counter monotonicity across model enumeration, and a
//! differential test pinning the single-shard portfolio to the
//! sequential control loop, trace-event by trace-event.

use absolver::core::{
    AbProblem, Orchestrator, OrchestratorOptions, ParallelOptions, ParallelStrategy,
};
use absolver::trace::{CollectingSink, TraceSink};
use std::sync::Arc;

const FIG2: &str = "\
p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c range a -10 10
c range x -10 10
c range y -10 10
";

fn fig2() -> AbProblem {
    FIG2.parse().expect("paper example parses")
}

#[test]
fn phase_times_are_bounded_by_elapsed() {
    let mut orc = Orchestrator::with_defaults();
    let outcome = orc.solve(&fig2()).expect("solve");
    assert!(outcome.is_sat());
    let stats = orc.stats();
    // The instrumented phases partition a subset of the wall clock: their
    // sum can never exceed the total, and conflict minimisation is
    // measured inside the linear phase.
    let phase_sum = stats.boolean_time + stats.linear_time + stats.nonlinear_time;
    assert!(
        phase_sum <= stats.elapsed,
        "boolean {:?} + linear {:?} + nonlinear {:?} = {phase_sum:?} > elapsed {:?}",
        stats.boolean_time,
        stats.linear_time,
        stats.nonlinear_time,
        stats.elapsed
    );
    assert!(
        stats.conflict_min_time <= stats.linear_time,
        "conflict_min {:?} must be a subset of linear {:?}",
        stats.conflict_min_time,
        stats.linear_time
    );
    // This workload exercises both theory layers, so the counters and
    // clocks must have moved.
    assert!(stats.theory_checks > 0);
    assert!(stats.simplex_pivots > 0, "simplex must have pivoted");
    assert!(stats.hc4_contractions > 0, "HC4 must have contracted");
    assert!(stats.linear_time.as_nanos() > 0);
    assert!(stats.nonlinear_time.as_nanos() > 0);
}

#[test]
fn stats_json_reflects_the_struct() {
    let mut orc = Orchestrator::with_defaults();
    orc.solve(&fig2()).expect("solve");
    let stats = orc.stats();
    let json = stats.to_json();
    assert!(json.contains(&format!(
        "\"boolean_iterations\":{}",
        stats.boolean_iterations
    )));
    assert!(json.contains(&format!("\"simplex_pivots\":{}", stats.simplex_pivots)));
    assert!(json.contains(&format!("\"hc4_contractions\":{}", stats.hc4_contractions)));
    assert!(json.contains(&format!("\"elapsed_us\":{}", stats.elapsed.as_micros())));
}

#[test]
fn contractions_per_check_reports_nonlinear_effort() {
    // Nonlinear-heavy workloads used to report only the simplex columns
    // (`simplex_pivots: 0`, `pivots_per_check: 0`), which read as "the
    // solver did nothing". The derived nonlinear effort metrics must show
    // the real work instead.
    let mut orc = Orchestrator::with_defaults();
    let outcome = orc.solve(&fig2()).expect("solve");
    assert!(outcome.is_sat());
    let stats = orc.stats();
    assert_eq!(
        stats.total_contractions(),
        stats.hc4_contractions + stats.bc3_contractions + stats.newton_contractions
    );
    assert!(stats.theory_checks > 0);
    let per_check = stats.contractions_per_check();
    assert!(
        (per_check - stats.total_contractions() as f64 / stats.theory_checks as f64).abs()
            < f64::EPSILON,
        "derived field must match its inputs"
    );
    assert!(per_check > 0.0, "fig2 forces nonlinear contraction work");
    let hit_rate = stats.contraction_cache_hit_rate();
    assert!(
        (0.0..=1.0).contains(&hit_rate),
        "hit rate is a ratio: {hit_rate}"
    );
}

#[test]
fn contractions_per_check_is_zero_without_checks() {
    // A default stats block (no solve) must not divide by zero.
    let stats = absolver::core::OrchestratorStats::default();
    assert_eq!(stats.contractions_per_check(), 0.0);
    assert_eq!(stats.contraction_cache_hit_rate(), 0.0);
}

#[test]
fn iteration_counter_is_strictly_monotone_across_solve_all() {
    let sink = Arc::new(CollectingSink::new());
    let mut orc = Orchestrator::with_defaults().with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let models = orc.solve_all(&fig2(), 5).expect("solve_all");
    assert!(!models.is_empty());
    let iterations: Vec<u64> = sink
        .events()
        .iter()
        .filter(|e| e.kind == "boolean.model")
        .map(|e| {
            e.get("iteration")
                .expect("iteration field")
                .parse()
                .expect("u64")
        })
        .collect();
    assert!(
        !iterations.is_empty(),
        "boolean.model events must carry iterations"
    );
    for pair in iterations.windows(2) {
        assert!(
            pair[0] < pair[1],
            "iteration counter must be strictly increasing across enumeration: {iterations:?}"
        );
    }
    // The counter in the final stats matches the last traced iteration.
    assert_eq!(orc.stats().boolean_iterations, *iterations.last().unwrap());
}

/// The solver-visible event stream of a single-shard deterministic
/// portfolio must match the sequential control loop exactly: shard 0 of
/// the portfolio *is* the default stack, so any divergence in the
/// (kind, iteration) sequence is an instrumentation or diversification
/// bug.
#[test]
fn single_shard_portfolio_traces_like_the_sequential_loop() {
    let problem = fig2();
    let solver_kinds = [
        "boolean.model",
        "theory.check",
        "phase.linear",
        "phase.nonlinear",
        "conflict",
    ];
    let filter = |sink: &CollectingSink| -> Vec<String> {
        sink.events()
            .iter()
            .filter(|e| solver_kinds.contains(&e.kind.as_str()))
            .map(|e| match e.get("iteration") {
                Some(it) => format!("{}@{it}", e.kind),
                None => e.kind.clone(),
            })
            .collect()
    };

    let seq_sink = Arc::new(CollectingSink::new());
    let mut seq =
        Orchestrator::with_defaults().with_trace_sink(seq_sink.clone() as Arc<dyn TraceSink>);
    let seq_outcome = seq.solve(&problem).expect("sequential solve");

    let par_sink = Arc::new(CollectingSink::new());
    let mut par =
        Orchestrator::with_defaults().with_trace_sink(par_sink.clone() as Arc<dyn TraceSink>);
    let opts = ParallelOptions {
        jobs: 1,
        strategy: ParallelStrategy::Portfolio,
        deterministic: true,
        base: OrchestratorOptions::default(),
        ..Default::default()
    };
    let (par_outcome, _) = par
        .solve_parallel(&problem, &opts)
        .expect("portfolio solve");

    assert_eq!(seq_outcome.is_sat(), par_outcome.is_sat());
    let seq_trace = filter(&seq_sink);
    let par_trace = filter(&par_sink);
    assert!(!seq_trace.is_empty());
    assert_eq!(
        seq_trace, par_trace,
        "shard 0 must replay the sequential stack"
    );
    // The parallel run additionally stamps shard ids on every event.
    assert!(par_sink
        .events()
        .iter()
        .filter(|e| solver_kinds.contains(&e.kind.as_str()))
        .all(|e| e.shard == Some(0)));
    // ... and brackets the run in shard lifecycle events.
    let kinds = par_sink.kinds();
    assert!(kinds.iter().any(|k| k == "shard.start"));
    assert!(kinds.iter().any(|k| k == "shard.end"));
}

#[test]
fn trace_overhead_is_skipped_when_disabled() {
    // The default NullSink reports `enabled() == false`; a collecting
    // sink reports true. This is what gates lazy event construction.
    use absolver::trace::NullSink;
    assert!(!NullSink.enabled());
    assert!(CollectingSink::new().enabled());
}
