#!/usr/bin/env sh
# Offline CI gate for the ABsolver workspace.
#
# The workspace has no external dependencies (randomness, property
# testing, and bench timing come from the in-repo absolver-testkit
# crate), so everything here runs with --offline from a clean checkout.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, all targets incl. benches) =="
cargo build --release --offline --workspace --all-targets

echo "== test =="
cargo test -q --offline --workspace

echo "== parallel differential suite (portfolio + cubes at jobs 1/2/4) =="
cargo test -q --offline --test parallel_agreement

echo "== seeded re-run of the randomized suites (pinned TESTKIT_SEED) =="
# A second pass under a fixed non-default seed: catches properties that
# only pass on the name-derived default seed path.
TESTKIT_SEED=0xAB501BE5 cargo test -q --offline \
    --test parallel_agreement --test solver_agreement --test fuzz_inputs

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "clippy not installed in this toolchain; skipping lint step"
fi

echo "== CI gate passed =="
