#!/usr/bin/env sh
# Offline CI gate for the ABsolver workspace.
#
# The workspace has no external dependencies (randomness, property
# testing, and bench timing come from the in-repo absolver-testkit
# crate), so everything here runs with --offline from a clean checkout.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== static analysis (clippy -D warnings, rustfmt, overflow-checked tests) =="
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check
# One overflow-checked test pass (profile `ci`, see the root Cargo.toml):
# the arbitrary-precision kernel is where silent wrapping would hurt most.
cargo test -q --offline --profile ci -p absolver-num

echo "== repo self-lint (unsafe-code and missing-docs gates) =="
# Every library root must forbid unsafe code — the workspace's
# panic-freedom and soundness arguments assume safe Rust throughout.
for lib in src/lib.rs crates/*/src/lib.rs; do
    grep -q '#!\[forbid(unsafe_code)\]' "$lib" \
        || { echo "$lib must declare #![forbid(unsafe_code)]"; exit 1; }
done
# The crates whose rustdoc is a load-bearing interface contract (the
# analyzer's diagnostic codes, the trace schema, the daemon's wire
# protocol) must keep missing_docs at deny.
for lib in crates/analyze/src/lib.rs crates/trace/src/lib.rs crates/service/src/lib.rs; do
    grep -q '#!\[deny(missing_docs)\]' "$lib" \
        || { echo "$lib must declare #![deny(missing_docs)]"; exit 1; }
done

echo "== build (release, all targets incl. benches) =="
cargo build --release --offline --workspace --all-targets

echo "== test =="
cargo test -q --offline --workspace

echo "== parallel differential suite (portfolio + cubes at jobs 1/2/4) =="
cargo test -q --offline --test parallel_agreement

echo "== partition differential suite (component solving vs whole-problem) =="
# Verdict identity of whole-problem vs sequential-component vs parallel
# component-shard solving on a salted disconnected corpus, stitched-model
# validity, and the static-unsat fast path (no solve loop entered).
cargo test -q --offline --test partition_agreement

echo "== incremental theory-engine differential suite (stack vs scratch, cache on/off) =="
cargo test -q --offline --test incremental_agreement

echo "== session suites (differential fuzz + frame-contract properties) =="
# Persistent push/pop/assert/check sessions vs a fresh-solver-per-check
# oracle (cache on/off), plus pop-undo/no-leak/monotone-stats properties.
cargo test -q --offline --test session_agreement --test session_monotonic

echo "== service suites (panic-freedom fuzz + absolverd lifecycle/cache e2e) =="
# Totality properties over every input path (problem parser, session
# script parser, service request decoder), then the daemon end-to-end:
# deadlines, cancellation, backpressure, priorities, cache-tier verdict
# identity, and both front ends (stdin protocol + unix socket).
cargo test -q --offline --test fuzz_inputs --test service_integration --test service_cli

echo "== contractor cascade suites (soundness properties + config differential) =="
# Per-contractor soundness (contraction + solution preservation) and
# verdict identity across cascade/HC4-only, cache on/off, jobs 1/2/4.
cargo test -q --offline --test contractor_soundness --test cascade_agreement

echo "== seeded re-run of the randomized suites (pinned TESTKIT_SEED) =="
# A second pass under a fixed non-default seed: catches properties that
# only pass on the name-derived default seed path.
TESTKIT_SEED=0xAB501BE5 cargo test -q --offline \
    --test parallel_agreement --test solver_agreement --test fuzz_inputs \
    --test contractor_soundness --test cascade_agreement \
    --test session_agreement --test session_monotonic

echo "== observability gate (--stats json, --trace, differential test) =="
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
# The paper's Fig. 2 example through the release binary: must exit 10
# (sat) and print exactly one machine-readable stats object on stdout.
set +e
./target/release/absolver --stats json --trace "$OBS_TMP/fig2.trace.jsonl" \
    examples/fig2.dimacs > "$OBS_TMP/fig2.out"
code=$?
set -e
[ "$code" -eq 10 ] || { echo "expected exit 10 (sat), got $code"; exit 1; }
grep '^{' "$OBS_TMP/fig2.out" > "$OBS_TMP/fig2.stats.json"
[ "$(wc -l < "$OBS_TMP/fig2.stats.json")" -eq 1 ] \
    || { echo "expected exactly one JSON stats line"; exit 1; }
# Bench workloads end-to-end into scratch BENCH_*.json files, compared
# against the checked-in baselines: >15% slower (plus a 50ms absolute
# grace for the micro-runs), a verdict flip, or a dead contraction
# cache on steering fails the gate.
ABS_BENCH_DIR="$OBS_TMP" ABS_BENCH_BASELINE_DIR=. ABS_TIMEOUT_SECS=60 \
    ./target/release/bench_json --check-regress fischer sudoku steering threshold-reach
# The reports must carry the structural-analysis columns.
for key in '"components":' '"subsumed_constraints":'; do
    grep -q "$key" "$OBS_TMP/BENCH_fischer.json" \
        || { echo "BENCH reports missing $key"; exit 1; }
done
# Decomposition experiment: a 2x20 decomposable workload solved whole,
# partitioned, and in parallel — the binary itself fails on any verdict
# disagreement between the three modes.
ABS_BENCH_DIR="$OBS_TMP" ABS_COMPONENTS_INSTANCES=2 ABS_COMPONENTS_SIZE=20 \
    ABS_TIMEOUT_SECS=60 ./target/release/components
# Streaming-session BMC gate: the persistent-session Fischer run must
# stay within the baseline limit, beat the from-scratch loop outright,
# and score at least one theory-verdict cache hit.
ABS_BENCH_DIR="$OBS_TMP" ABS_BENCH_BASELINE_DIR=. \
    ./target/release/fischer_incremental --check-regress
# Solve-service load gate: cold / resubmission / mixed-priority burst
# phases through an in-process absolverd server. Fails on a p99 latency
# regression vs the checked-in baseline, a throughput collapse, a
# resubmission p50 win of <= 1.5x over cold solves, a dead cache, or
# any worker abort.
ABS_BENCH_DIR="$OBS_TMP" ABS_BENCH_BASELINE_DIR=. \
    ./target/release/service_load --check-regress
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$OBS_TMP/fig2.stats.json" > /dev/null
    python3 -m json.tool "$OBS_TMP/BENCH_fischer.json" > /dev/null
    python3 -m json.tool "$OBS_TMP/BENCH_fischer_incremental.json" > /dev/null
    python3 -m json.tool "$OBS_TMP/BENCH_service.json" > /dev/null
    # Every trace line must be a standalone JSON object (JSONL).
    python3 -c 'import json,sys
for line in open(sys.argv[1]):
    json.loads(line)' "$OBS_TMP/fig2.trace.jsonl"
else
    for key in '"simplex_pivots":' '"hc4_contractions":' '"phase":{' '"elapsed_us":'; do
        grep -q "$key" "$OBS_TMP/fig2.stats.json" \
            || { echo "stats JSON missing $key"; exit 1; }
    done
    grep -q '"workload":"fischer"' "$OBS_TMP/BENCH_fischer.json"
    grep -q '"kind":"solve.start"' "$OBS_TMP/fig2.trace.jsonl"
fi
# The trace-equivalence differential suite (sequential vs 1-shard
# portfolio) plus the CLI exit-code contract.
cargo test -q --offline --test observability --test cli

echo "== analyzer gate (absolver check + preprocessing differential) =="
# The paper's example must lint clean (exit 0); the checked-in malformed
# fixture must produce a spanned error report (exit 4).
./target/release/absolver check examples/fig2.dimacs
set +e
./target/release/absolver check --json tests/analyze/malformed.dimacs \
    > "$OBS_TMP/malformed.json"
code=$?
set -e
[ "$code" -eq 4 ] || { echo "expected check exit 4 (errors), got $code"; exit 1; }
grep -q '"code":"AB001"' "$OBS_TMP/malformed.json" \
    || { echo "malformed fixture must report AB001"; exit 1; }
# The structural-analysis fixtures: subsumption lints are warnings
# (exit 3), a statically-unsat input is an error (exit 4), and each
# must report its dedicated codes.
set +e
./target/release/absolver check --json tests/analyze/subsume.dimacs \
    > "$OBS_TMP/subsume.json"
code=$?
set -e
[ "$code" -eq 3 ] || { echo "expected check exit 3 (warnings), got $code"; exit 1; }
for ab in AB013 AB014 AB015 AB016; do
    grep -q "\"code\":\"$ab\"" "$OBS_TMP/subsume.json" \
        || { echo "subsume fixture must report $ab"; exit 1; }
done
set +e
./target/release/absolver check --json tests/analyze/staticunsat.dimacs \
    > "$OBS_TMP/staticunsat.json"
code=$?
set -e
[ "$code" -eq 4 ] || { echo "expected check exit 4 (static unsat), got $code"; exit 1; }
grep -q '"code":"AB017"' "$OBS_TMP/staticunsat.json" \
    || { echo "staticunsat fixture must report AB017"; exit 1; }
set +e
./target/release/absolver check --json tests/analyze/declared_miss.dimacs \
    > "$OBS_TMP/declared_miss.json"
code=$?
set -e
[ "$code" -eq 3 ] || { echo "expected check exit 3 (warnings), got $code"; exit 1; }
grep -q '"code":"AB018"' "$OBS_TMP/declared_miss.json" \
    || { echo "declared_miss fixture must report AB018"; exit 1; }
# Structure block: check reports the component decomposition.
grep -q '"structure":{"components":' "$OBS_TMP/subsume.json" \
    || { echo "check --json must carry the structure block"; exit 1; }
# Golden diagnostics + verdict identity of --preprocess vs --no-preprocess.
cargo test -q --offline --test analyze_check --test preprocess_agreement

echo "== CI gate passed =="
