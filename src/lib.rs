//! # ABsolver — a multi-domain constraint-solving library
//!
//! This is the facade crate of a from-scratch Rust reproduction of
//! *"Tool-support for the analysis of hybrid systems and models"*
//! (Bauer, Pister, Tautschnig — DATE 2007). ABsolver is an extensible
//! SMT-style solver for **AB-problems**: Boolean combinations of (possibly
//! nonlinear) arithmetic constraints, as they arise in the analysis of
//! hybrid and embedded control systems modelled with block diagrams.
//!
//! The facade simply re-exports the individual crates:
//!
//! * [`num`] — arbitrary-precision integers, exact rationals, intervals.
//! * [`logic`] — tri-valued logic, literals, clauses, CNF, DIMACS I/O.
//! * [`sat`] — a CDCL SAT solver with all-models (LSAT-style) enumeration.
//! * [`linear`] — exact-rational simplex solvers and conflict extraction.
//! * [`nonlinear`] — nonlinear expressions, interval branch-and-prune,
//!   multistart local search.
//! * [`core`] — AB-problems, the extended DIMACS format, the 3-valued
//!   circuit, solver interface traits, and the orchestrating control loop.
//! * [`model`] — Simulink-like block diagrams, a LUSTRE-like IR, and the
//!   conversion pipeline into AB-problems.
//! * [`baselines`] — tightly-integrated DPLL(T) and eager baselines used in
//!   the paper's comparative benchmarks.
//! * [`trace`] — the observability layer: trace events, sinks (null,
//!   collecting, JSONL file), and the hand-rolled JSON helpers.
//! * [`service`] — the `absolverd` daemon: request protocol, bounded
//!   worker pool, and cross-request caching over persistent sessions.
//! * [`analyze`] — the static analyzer: compiler-style diagnostics with
//!   stable `AB0xx` codes (`absolver check`) and the equisatisfiable
//!   preprocessor run by the orchestrator before solving.
//!
//! # Quickstart
//!
//! Solve the running example of the paper (Fig. 1/2):
//!
//! ```
//! use absolver::core::{AbProblem, Orchestrator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "\
//! p cnf 4 3
//! 1 0
//! -2 3 0
//! 4 0
//! c def int 1 i >= 0
//! c def int 1 j >= 0
//! c def int 2 2*i + j < 10
//! c def int 3 i + j < 5
//! c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
//! c range a -10 10
//! c range x -10 10
//! c range y -10 10
//! ";
//! let problem: AbProblem = text.parse()?;
//! let outcome = Orchestrator::with_defaults().solve(&problem)?;
//! assert!(outcome.is_sat());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use absolver_analyze as analyze;
pub use absolver_baselines as baselines;
pub use absolver_core as core;
pub use absolver_linear as linear;
pub use absolver_logic as logic;
pub use absolver_model as model;
pub use absolver_nonlinear as nonlinear;
pub use absolver_num as num;
pub use absolver_sat as sat;
pub use absolver_service as service;
pub use absolver_trace as trace;
