//! The stand-alone ABsolver executable (paper Sec. 4/6).
//!
//! "ABsolver can be used as a stand-alone tool with its intuitive-to-use
//! input language for specifying multi-domain constraint problems" — this
//! binary reads the extended DIMACS format from a file (or stdin), runs
//! the control loop, and prints the verdict plus a model. "The various
//! constituents of our solver are customisable via command line
//! parameters":
//!
//! ```text
//! absolver [OPTIONS] [FILE]
//! absolver check [--json] [FILE]
//!
//!   FILE                     input in extended DIMACS (default: stdin)
//!   --boolean cdcl|restart   Boolean backend        (default: cdcl)
//!   --nonlinear cascade|interval|penalty
//!                            nonlinear backend      (default: cascade)
//!   --contractors hc4[,bc3][,newton]
//!                            contractor cascade stages (default: hc4,bc3,newton)
//!   --no-contraction-cache   disable the quantized-box contraction cache
//!   --nl-jobs N              worker threads for the nonlinear box search
//!   --no-minimize            disable conflict-core minimisation
//!   --no-theory-cache        disable the theory-verdict cache
//!   --preprocess             simplify before solving (default)
//!   --no-preprocess          solve the problem exactly as written
//!   --all-models N           enumerate up to N models
//!   --time-limit SECS        wall-clock budget
//!   --max-iterations N       cap on Boolean models examined
//!   --jobs N                 solve with N parallel shards
//!   --strategy portfolio|cubes
//!                            parallel strategy      (default: portfolio)
//!   --deterministic          reproducible cube-to-shard assignment
//!   --stats [human|json]     print solver statistics (default: human)
//!   --trace FILE             write a JSONL event trace to FILE
//!   --quiet                  verdict only
//! ```
//!
//! Solve exit codes: `10` sat, `20` unsat, `30` unknown, `40` iteration
//! limit, `2` usage/IO/parse error.
//!
//! `absolver check` runs the static analyzer instead of the solver and
//! prints compiler-style diagnostics (`file:line:col: severity[AB0xx]:
//! message`), or a stable JSON report with `--json`. Check exit codes:
//! `0` clean, `3` warnings only, `4` errors, `2` usage/IO error.

use absolver::core::{
    AbProblem, CascadeNonlinear, CdclBoolean, IntervalNonlinear, Orchestrator, OrchestratorOptions,
    Outcome, ParallelOptions, ParallelStats, ParallelStrategy, PenaltyNonlinear, RestartingBoolean,
    SimplexLinear,
};
use absolver::nonlinear::{ContractorConfig, NlOptions};
use absolver::trace::{FileSink, JsonObject};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const EXIT_SAT: u8 = 10;
const EXIT_UNSAT: u8 = 20;
const EXIT_UNKNOWN: u8 = 30;
const EXIT_ITERATION_LIMIT: u8 = 40;
const EXIT_ERROR: u8 = 2;

const EXIT_CHECK_CLEAN: u8 = 0;
const EXIT_CHECK_WARNINGS: u8 = 3;
const EXIT_CHECK_ERRORS: u8 = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    Human,
    Json,
}

struct Config {
    file: Option<String>,
    boolean: String,
    nonlinear: String,
    contractors: ContractorConfig,
    contraction_cache: bool,
    nl_jobs: usize,
    minimize: bool,
    theory_cache: bool,
    preprocess: bool,
    all_models: Option<usize>,
    time_limit: Option<Duration>,
    max_iterations: Option<u64>,
    jobs: Option<usize>,
    strategy: ParallelStrategy,
    deterministic: bool,
    stats: Option<StatsFormat>,
    trace: Option<String>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: absolver [--boolean cdcl|restart] [--nonlinear cascade|interval|penalty]\n\
         \x20               [--contractors hc4[,bc3][,newton]] [--no-contraction-cache]\n\
         \x20               [--nl-jobs N] [--no-minimize] [--no-theory-cache] [--no-preprocess]\n\
         \x20               [--all-models N] [--time-limit SECS]\n\
         \x20               [--max-iterations N] [--jobs N] [--strategy portfolio|cubes]\n\
         \x20               [--deterministic] [--stats [human|json]] [--trace FILE]\n\
         \x20               [--quiet] [FILE]\n\
         \x20      absolver check [--json] [FILE]\n\
         solve exit codes: 10 sat, 20 unsat, 30 unknown, 40 iteration limit, 2 error\n\
         check exit codes: 0 clean, 3 warnings, 4 errors, 2 error"
    );
    std::process::exit(EXIT_ERROR as i32);
}

fn parse_args() -> Config {
    let mut config = Config {
        file: None,
        boolean: "cdcl".to_string(),
        nonlinear: "cascade".to_string(),
        contractors: ContractorConfig::default(),
        contraction_cache: true,
        nl_jobs: 1,
        minimize: true,
        theory_cache: true,
        preprocess: true,
        all_models: None,
        time_limit: None,
        max_iterations: None,
        jobs: None,
        strategy: ParallelStrategy::Portfolio,
        deterministic: false,
        stats: None,
        trace: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--boolean" => config.boolean = args.next().unwrap_or_else(|| usage()),
            "--nonlinear" => config.nonlinear = args.next().unwrap_or_else(|| usage()),
            "--contractors" => {
                let list = args.next().unwrap_or_else(|| usage());
                config.contractors = list.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--no-contraction-cache" => config.contraction_cache = false,
            "--nl-jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.nl_jobs = n.max(1);
            }
            "--no-minimize" => config.minimize = false,
            "--no-theory-cache" => config.theory_cache = false,
            "--preprocess" => config.preprocess = true,
            "--no-preprocess" => config.preprocess = false,
            "--all-models" => {
                let n = args.next().and_then(|v| v.parse().ok());
                config.all_models = Some(n.unwrap_or_else(|| usage()));
            }
            "--time-limit" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.time_limit = Some(Duration::from_secs(secs));
            }
            "--max-iterations" => {
                let n: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.max_iterations = Some(n);
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.jobs = Some(n.max(1));
            }
            "--strategy" => {
                let s = args.next().unwrap_or_else(|| usage());
                config.strategy = s.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--deterministic" => config.deterministic = true,
            "--stats" => {
                // The format operand is optional: `--stats`, `--stats human`
                // and `--stats json` are all accepted.
                config.stats = Some(match args.peek().map(String::as_str) {
                    Some("json") => {
                        args.next();
                        StatsFormat::Json
                    }
                    Some("human") => {
                        args.next();
                        StatsFormat::Human
                    }
                    _ => StatsFormat::Human,
                });
            }
            "--trace" => config.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--quiet" => config.quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            file => {
                if config.file.replace(file.to_string()).is_some() {
                    eprintln!("multiple input files");
                    usage();
                }
            }
        }
    }
    config
}

fn build_orchestrator(config: &Config) -> Orchestrator {
    let boolean: Box<dyn absolver::core::BooleanSolver> = match config.boolean.as_str() {
        "cdcl" => Box::new(CdclBoolean::new()),
        "restart" => Box::new(RestartingBoolean::new()),
        other => {
            eprintln!("unknown Boolean backend `{other}`");
            usage();
        }
    };
    let linear = if config.minimize {
        SimplexLinear::new()
    } else {
        SimplexLinear::without_minimization()
    };
    let mut orc = Orchestrator::custom(boolean).with_linear(Box::new(linear));
    let nl_options = NlOptions {
        contractors: config.contractors,
        contraction_cache: config.contraction_cache,
        nl_jobs: config.nl_jobs,
        ..Default::default()
    };
    orc = match config.nonlinear.as_str() {
        "cascade" => orc.with_nonlinear(Box::new(CascadeNonlinear::with_options(nl_options))),
        "interval" => orc.with_nonlinear(Box::new(IntervalNonlinear::with_options(nl_options))),
        "penalty" => orc.with_nonlinear(Box::new(PenaltyNonlinear::with_options(nl_options))),
        other => {
            eprintln!("unknown nonlinear backend `{other}`");
            usage();
        }
    };
    let mut options = OrchestratorOptions {
        time_limit: config.time_limit,
        theory_cache: config.theory_cache,
        ..Default::default()
    };
    if let Some(n) = config.max_iterations {
        options.max_iterations = n;
    }
    orc = orc.with_options(options);
    if config.preprocess {
        orc = orc.with_preprocessor(Box::new(absolver::analyze::Simplifier::new()));
    }
    orc
}

/// The `absolver check` mode: run the static analyzer on one input and
/// report findings without solving.
fn check_main(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    eprintln!("multiple input files");
                    usage();
                }
            }
        }
    }
    let mut text = String::new();
    let label = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => {
                text = t;
                path.clone()
            }
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => {
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("cannot read stdin");
                return ExitCode::from(EXIT_ERROR);
            }
            "<stdin>".to_string()
        }
    };
    let report = absolver::analyze::check_source(&text);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human(&label));
    }
    if report.errors() > 0 {
        ExitCode::from(EXIT_CHECK_ERRORS)
    } else if report.warnings() > 0 {
        ExitCode::from(EXIT_CHECK_WARNINGS)
    } else {
        ExitCode::from(EXIT_CHECK_CLEAN)
    }
}

fn print_model(problem: &AbProblem, model: &absolver::core::AbModel) {
    for (id, var) in problem.arith_vars().iter().enumerate() {
        match model.arith.value_exact(id) {
            Some(exact) => println!("v {} = {}", var.name, exact),
            None => println!(
                "v {} = {}",
                var.name,
                model.arith.value_f64(id).unwrap_or(f64::NAN)
            ),
        }
    }
}

/// Prints the sequential statistics in the requested format. JSON goes to
/// stdout (it is the machine-readable payload); the human form stays on
/// stderr as a `c`-prefixed comment.
fn print_stats(orc: &Orchestrator, format: StatsFormat) {
    match format {
        StatsFormat::Human => eprintln!("c stats: {}", orc.stats()),
        StatsFormat::Json => println!("{}", orc.stats().to_json()),
    }
}

/// JSON for a parallel run: the per-shard aggregate (phase times are not
/// meaningful across racing shards, so the object carries the shard
/// totals instead).
fn parallel_stats_json(stats: &ParallelStats) -> String {
    let iterations: u64 = stats.shards.iter().map(|s| s.boolean_iterations).sum();
    let theory_checks: u64 = stats.shards.iter().map(|s| s.theory_checks).sum();
    let mut obj = JsonObject::new();
    obj.field_u64("jobs", stats.jobs as u64)
        .field_u64("cubes", stats.cubes as u64)
        .field_u64("boolean_iterations", iterations)
        .field_u64("theory_checks", theory_checks)
        .field_u64("clauses_shared", stats.clauses_shared)
        .field_u64("clauses_imported", stats.clauses_imported)
        .field_u64("share_latency_us", stats.share_latency.as_micros() as u64)
        .field_bool("timed_out", stats.timed_out)
        .field_u64("elapsed_us", stats.elapsed.as_micros() as u64);
    match stats.winner {
        Some(w) => obj.field_u64("winner", w as u64),
        None => obj.field_raw("winner", "null"),
    };
    obj.finish()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("check") {
        return check_main(&argv[1..]);
    }
    let config = parse_args();
    let mut text = String::new();
    match &config.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => text = t,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => {
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("cannot read stdin");
                return ExitCode::from(EXIT_ERROR);
            }
        }
    }
    let problem: AbProblem = match text.parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };

    let mut orc = build_orchestrator(&config);
    let trace_sink = match &config.trace {
        Some(path) => match FileSink::create(path) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                orc.set_trace_sink(sink.clone());
                Some(sink)
            }
            Err(e) => {
                eprintln!("cannot open trace file `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => None,
    };
    let flush_trace = || {
        if let Some(sink) = &trace_sink {
            let _ = sink.flush();
        }
    };

    if let Some(max) = config.all_models {
        match orc.solve_all(&problem, max) {
            Ok(models) => {
                if !config.quiet {
                    println!("c {} model(s)", models.len());
                    for (i, m) in models.iter().enumerate() {
                        println!("c model {}", i + 1);
                        print_model(&problem, m);
                    }
                }
                if let Some(format) = config.stats {
                    print_stats(&orc, format);
                }
                flush_trace();
                return if models.is_empty() {
                    println!("s UNSATISFIABLE");
                    ExitCode::from(EXIT_UNSAT)
                } else {
                    println!("s SATISFIABLE");
                    ExitCode::from(EXIT_SAT)
                };
            }
            Err(e) => {
                eprintln!("{e}");
                flush_trace();
                return ExitCode::from(EXIT_ITERATION_LIMIT);
            }
        }
    }

    let outcome = if let Some(jobs) = config.jobs {
        let mut base = OrchestratorOptions {
            time_limit: config.time_limit,
            theory_cache: config.theory_cache,
            ..Default::default()
        };
        if let Some(n) = config.max_iterations {
            base.max_iterations = n;
        }
        let popts = ParallelOptions {
            jobs,
            strategy: config.strategy,
            deterministic: config.deterministic,
            base,
            ..Default::default()
        };
        match orc.solve_parallel(&problem, &popts) {
            Ok((o, pstats)) => {
                match config.stats {
                    Some(StatsFormat::Human) => {
                        eprintln!("c parallel[{}]: {}", config.strategy, pstats);
                        for (i, s) in pstats.shards.iter().enumerate() {
                            eprintln!(
                                "c shard {i}: cubes={} iterations={} shared={} imported={}{}{}",
                                s.cubes_solved,
                                s.boolean_iterations,
                                s.clauses_shared,
                                s.clauses_imported,
                                if s.cancelled { " cancelled" } else { "" },
                                if s.timed_out { " timed-out" } else { "" },
                            );
                        }
                    }
                    Some(StatsFormat::Json) => println!("{}", parallel_stats_json(&pstats)),
                    None => {}
                }
                o
            }
            Err(e) => {
                eprintln!("{e}");
                flush_trace();
                return ExitCode::from(EXIT_ITERATION_LIMIT);
            }
        }
    } else {
        match orc.solve(&problem) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                if let Some(format) = config.stats {
                    print_stats(&orc, format);
                }
                flush_trace();
                return ExitCode::from(EXIT_ITERATION_LIMIT);
            }
        }
    };
    if config.jobs.is_none() {
        if let Some(format) = config.stats {
            print_stats(&orc, format);
        }
    }
    flush_trace();
    match outcome {
        Outcome::Sat(model) => {
            println!("s SATISFIABLE");
            if !config.quiet {
                print_model(&problem, &model);
            }
            ExitCode::from(EXIT_SAT)
        }
        Outcome::Unsat => {
            println!("s UNSATISFIABLE");
            ExitCode::from(EXIT_UNSAT)
        }
        Outcome::Unknown => {
            println!("s UNKNOWN");
            ExitCode::from(EXIT_UNKNOWN)
        }
    }
}
