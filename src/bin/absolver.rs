//! The stand-alone ABsolver executable (paper Sec. 4/6).
//!
//! "ABsolver can be used as a stand-alone tool with its intuitive-to-use
//! input language for specifying multi-domain constraint problems" — this
//! binary reads the extended DIMACS format from a file (or stdin), runs
//! the control loop, and prints the verdict plus a model. "The various
//! constituents of our solver are customisable via command line
//! parameters":
//!
//! ```text
//! absolver [OPTIONS] [FILE]
//! absolver check [--json] [FILE]
//! absolver session [OPTIONS] [FILE]
//!
//!   FILE                     input in extended DIMACS (default: stdin)
//!   --boolean cdcl|restart   Boolean backend        (default: cdcl)
//!   --nonlinear cascade|interval|penalty
//!                            nonlinear backend      (default: cascade)
//!   --contractors hc4[,bc3][,newton]
//!                            contractor cascade stages (default: hc4,bc3,newton)
//!   --no-contraction-cache   disable the quantized-box contraction cache
//!   --nl-jobs N              worker threads for the nonlinear box search
//!   --no-minimize            disable conflict-core minimisation
//!   --no-theory-cache        disable the theory-verdict cache
//!   --preprocess             simplify before solving (default)
//!   --no-preprocess          solve the problem exactly as written
//!   --all-models N           enumerate up to N models
//!   --time-limit SECS        wall-clock budget
//!   --max-iterations N       cap on Boolean models examined
//!   --jobs N                 solve with N parallel shards
//!   --strategy portfolio|cubes
//!                            parallel strategy      (default: portfolio)
//!   --deterministic          reproducible cube-to-shard assignment
//!   --stats [human|json]     print solver statistics (default: human)
//!   --trace FILE             write a JSONL event trace to FILE
//!   --quiet                  verdict only
//! ```
//!
//! Solve exit codes: `10` sat, `20` unsat, `30` unknown, `40` iteration
//! limit, `2` usage/IO/parse error.
//!
//! `absolver check` runs the static analyzer instead of the solver and
//! prints compiler-style diagnostics (`file:line:col: severity[AB0xx]:
//! message`), or a stable JSON report with `--json`. Check exit codes:
//! `0` clean, `3` warnings only, `4` errors, `2` usage/IO error.
//!
//! `absolver session` reads a line-oriented incremental script (from FILE
//! or stdin) driving one persistent solve session. One command per line;
//! blank lines and `#` comments are skipped:
//!
//! ```text
//! var <int|real> <name>      declare an arithmetic variable
//! range <name> <lo> <hi>     tighten its search range
//! def <int|real> <v> <cmp>   bind Boolean var v (1-based) to a constraint
//! assert <lit> ... [0]       add a clause (DIMACS-style literals)
//! push / pop                 open / undo an assertion frame
//! check                      decide the current assertions (prints `s ...`)
//! model                      print the model of the last check
//! reset                      drop every assertion and frame
//! ```
//!
//! Each `check` prints its own `s SATISFIABLE|UNSATISFIABLE|UNKNOWN`
//! line; with `--stats json` it also emits a per-check JSON block, plus a
//! cumulative block at end of script. In session mode `--time-limit` is a
//! *cumulative* budget for the whole script: one absolute deadline is set
//! when the script starts, and every `check` after it expires reports
//! `s UNKNOWN` (it does not restart per check). Malformed scripts abort with
//! compiler-style diagnostics (`file:line:col: error[AB02x]: message`,
//! codes: `AB020` unknown command, `AB021` malformed command, `AB022`
//! pop without a frame). The process exit code is the last check's solve
//! code (`10`/`20`/`30`, or `40` on iteration limit), `0` if the script
//! ran no check, and `2` on script/usage/IO errors.

use absolver::core::script::{parse_script_line, ScriptCommand};
use absolver::core::{
    parse_session_constraint, AbProblem, CascadeNonlinear, CdclBoolean, IntervalNonlinear,
    Orchestrator, OrchestratorOptions, Outcome, ParallelOptions, ParallelStats, ParallelStrategy,
    PenaltyNonlinear, RestartingBoolean, Session, SimplexLinear, Span,
};
use absolver::nonlinear::{ContractorConfig, NlOptions};
use absolver::num::Interval;
use absolver::trace::{saturating_micros, FileSink, JsonObject};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const EXIT_SAT: u8 = 10;
const EXIT_UNSAT: u8 = 20;
const EXIT_UNKNOWN: u8 = 30;
const EXIT_ITERATION_LIMIT: u8 = 40;
const EXIT_ERROR: u8 = 2;

const EXIT_CHECK_CLEAN: u8 = 0;
const EXIT_CHECK_WARNINGS: u8 = 3;
const EXIT_CHECK_ERRORS: u8 = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    Human,
    Json,
}

struct Config {
    file: Option<String>,
    boolean: String,
    nonlinear: String,
    contractors: ContractorConfig,
    contraction_cache: bool,
    nl_jobs: usize,
    minimize: bool,
    theory_cache: bool,
    preprocess: bool,
    all_models: Option<usize>,
    time_limit: Option<Duration>,
    max_iterations: Option<u64>,
    jobs: Option<usize>,
    strategy: ParallelStrategy,
    deterministic: bool,
    stats: Option<StatsFormat>,
    trace: Option<String>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: absolver [--boolean cdcl|restart] [--nonlinear cascade|interval|penalty]\n\
         \x20               [--contractors hc4[,bc3][,newton]] [--no-contraction-cache]\n\
         \x20               [--nl-jobs N] [--no-minimize] [--no-theory-cache] [--no-preprocess]\n\
         \x20               [--all-models N] [--time-limit SECS]\n\
         \x20               [--max-iterations N] [--jobs N] [--strategy portfolio|cubes]\n\
         \x20               [--deterministic] [--stats [human|json]] [--trace FILE]\n\
         \x20               [--quiet] [FILE]\n\
         \x20      absolver check [--json] [FILE]\n\
         \x20      absolver session [--boolean ...] [--nonlinear ...] [--no-minimize]\n\
         \x20               [--no-theory-cache] [--time-limit SECS] [--max-iterations N]\n\
         \x20               [--stats [human|json]] [--trace FILE] [--quiet] [FILE]\n\
         solve exit codes: 10 sat, 20 unsat, 30 unknown, 40 iteration limit, 2 error\n\
         check exit codes: 0 clean, 3 warnings, 4 errors, 2 error\n\
         session exit code: last check's solve code (0 if no check), 2 on script error"
    );
    std::process::exit(EXIT_ERROR as i32);
}

fn parse_args() -> Config {
    let mut config = Config {
        file: None,
        boolean: "cdcl".to_string(),
        nonlinear: "cascade".to_string(),
        contractors: ContractorConfig::default(),
        contraction_cache: true,
        nl_jobs: 1,
        minimize: true,
        theory_cache: true,
        preprocess: true,
        all_models: None,
        time_limit: None,
        max_iterations: None,
        jobs: None,
        strategy: ParallelStrategy::Portfolio,
        deterministic: false,
        stats: None,
        trace: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--boolean" => config.boolean = args.next().unwrap_or_else(|| usage()),
            "--nonlinear" => config.nonlinear = args.next().unwrap_or_else(|| usage()),
            "--contractors" => {
                let list = args.next().unwrap_or_else(|| usage());
                config.contractors = list.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--no-contraction-cache" => config.contraction_cache = false,
            "--nl-jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.nl_jobs = n.max(1);
            }
            "--no-minimize" => config.minimize = false,
            "--no-theory-cache" => config.theory_cache = false,
            "--preprocess" => config.preprocess = true,
            "--no-preprocess" => config.preprocess = false,
            "--all-models" => {
                let n = args.next().and_then(|v| v.parse().ok());
                config.all_models = Some(n.unwrap_or_else(|| usage()));
            }
            "--time-limit" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.time_limit = Some(Duration::from_secs(secs));
            }
            "--max-iterations" => {
                let n: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.max_iterations = Some(n);
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.jobs = Some(n.max(1));
            }
            "--strategy" => {
                let s = args.next().unwrap_or_else(|| usage());
                config.strategy = s.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--deterministic" => config.deterministic = true,
            "--stats" => {
                // The format operand is optional: `--stats`, `--stats human`
                // and `--stats json` are all accepted.
                config.stats = Some(match args.peek().map(String::as_str) {
                    Some("json") => {
                        args.next();
                        StatsFormat::Json
                    }
                    Some("human") => {
                        args.next();
                        StatsFormat::Human
                    }
                    _ => StatsFormat::Human,
                });
            }
            "--trace" => config.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--quiet" => config.quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            file => {
                if config.file.replace(file.to_string()).is_some() {
                    eprintln!("multiple input files");
                    usage();
                }
            }
        }
    }
    config
}

fn build_orchestrator(config: &Config) -> Orchestrator {
    let boolean: Box<dyn absolver::core::BooleanSolver> = match config.boolean.as_str() {
        "cdcl" => Box::new(CdclBoolean::new()),
        "restart" => Box::new(RestartingBoolean::new()),
        other => {
            eprintln!("unknown Boolean backend `{other}`");
            usage();
        }
    };
    let linear = if config.minimize {
        SimplexLinear::new()
    } else {
        SimplexLinear::without_minimization()
    };
    let mut orc = Orchestrator::custom(boolean).with_linear(Box::new(linear));
    let nl_options = NlOptions {
        contractors: config.contractors,
        contraction_cache: config.contraction_cache,
        nl_jobs: config.nl_jobs,
        ..Default::default()
    };
    orc = match config.nonlinear.as_str() {
        "cascade" => orc.with_nonlinear(Box::new(CascadeNonlinear::with_options(nl_options))),
        "interval" => orc.with_nonlinear(Box::new(IntervalNonlinear::with_options(nl_options))),
        "penalty" => orc.with_nonlinear(Box::new(PenaltyNonlinear::with_options(nl_options))),
        other => {
            eprintln!("unknown nonlinear backend `{other}`");
            usage();
        }
    };
    let mut options = OrchestratorOptions {
        time_limit: config.time_limit,
        theory_cache: config.theory_cache,
        ..Default::default()
    };
    if let Some(n) = config.max_iterations {
        options.max_iterations = n;
    }
    orc = orc.with_options(options);
    if config.preprocess {
        orc = orc.with_preprocessor(Box::new(absolver::analyze::Simplifier::new()));
    }
    orc
}

/// The `absolver check` mode: run the static analyzer on one input and
/// report findings without solving.
fn check_main(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    eprintln!("multiple input files");
                    usage();
                }
            }
        }
    }
    let mut text = String::new();
    let label = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => {
                text = t;
                path.clone()
            }
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => {
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("cannot read stdin");
                return ExitCode::from(EXIT_ERROR);
            }
            "<stdin>".to_string()
        }
    };
    let report = absolver::analyze::check_source(&text);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human(&label));
    }
    if report.errors() > 0 {
        ExitCode::from(EXIT_CHECK_ERRORS)
    } else if report.warnings() > 0 {
        ExitCode::from(EXIT_CHECK_WARNINGS)
    } else {
        ExitCode::from(EXIT_CHECK_CLEAN)
    }
}

/// Emits one compiler-style session diagnostic (the AB-code format of
/// `absolver check`, with the session's own `AB02x` code block).
fn session_diag(label: &str, line: usize, col: usize, code: &str, message: &str) {
    eprintln!("{label}:{line}:{col}: error[{code}]: {message}");
}

fn verdict_line(outcome: &Outcome) -> (&'static str, u8) {
    match outcome {
        Outcome::Sat(_) => ("s SATISFIABLE", EXIT_SAT),
        Outcome::Unsat => ("s UNSATISFIABLE", EXIT_UNSAT),
        Outcome::Unknown => ("s UNKNOWN", EXIT_UNKNOWN),
    }
}

/// The `absolver session` mode: drive one persistent [`Session`] from a
/// line-oriented script (see the module docs for the command language).
fn session_main(args: &[String]) -> ExitCode {
    let mut config = Config {
        file: None,
        boolean: "cdcl".to_string(),
        nonlinear: "cascade".to_string(),
        contractors: ContractorConfig::default(),
        contraction_cache: true,
        nl_jobs: 1,
        minimize: true,
        theory_cache: true,
        // Sessions solve the asserted problem as-is; the preprocessor
        // only runs in whole-problem mode.
        preprocess: false,
        all_models: None,
        time_limit: None,
        max_iterations: None,
        jobs: None,
        strategy: ParallelStrategy::Portfolio,
        deterministic: false,
        stats: None,
        trace: None,
        quiet: false,
    };
    let mut it = args.iter().cloned().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--boolean" => config.boolean = it.next().unwrap_or_else(|| usage()),
            "--nonlinear" => config.nonlinear = it.next().unwrap_or_else(|| usage()),
            "--no-minimize" => config.minimize = false,
            "--no-theory-cache" => config.theory_cache = false,
            "--time-limit" => {
                let secs: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.time_limit = Some(Duration::from_secs(secs));
            }
            "--max-iterations" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.max_iterations = Some(n);
            }
            "--stats" => {
                config.stats = Some(match it.peek().map(String::as_str) {
                    Some("json") => {
                        it.next();
                        StatsFormat::Json
                    }
                    Some("human") => {
                        it.next();
                        StatsFormat::Human
                    }
                    _ => StatsFormat::Human,
                });
            }
            "--trace" => config.trace = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" => config.quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            path => {
                if config.file.replace(path.to_string()).is_some() {
                    eprintln!("multiple input files");
                    usage();
                }
            }
        }
    }

    let mut text = String::new();
    let label = match &config.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => {
                text = t;
                path.clone()
            }
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => {
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("cannot read stdin");
                return ExitCode::from(EXIT_ERROR);
            }
            "<stdin>".to_string()
        }
    };

    // The script budget is *cumulative*: one absolute deadline covers
    // every check in the script, instead of restarting per `check` (which
    // let long sessions overshoot `--time-limit` arbitrarily). The
    // orchestrator's per-call limit therefore stays unset here.
    let budget = config.time_limit.take();
    let mut orc = build_orchestrator(&config);
    let trace_sink = match &config.trace {
        Some(path) => match FileSink::create(path) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                orc.set_trace_sink(sink.clone());
                Some(sink)
            }
            Err(e) => {
                eprintln!("cannot open trace file `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => None,
    };
    let mut session = Session::with_orchestrator(orc);
    session.set_deadline(budget.map(|d| Instant::now() + d));
    let mut last_exit: Option<u8> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let cmd = match parse_script_line(raw, line) {
            Ok(Some(cmd)) => cmd,
            Ok(None) => continue,
            Err(d) => {
                session_diag(&label, d.line, d.col, d.code, &d.message);
                return ExitCode::from(EXIT_ERROR);
            }
        };
        match cmd {
            ScriptCommand::Push => session.push(),
            ScriptCommand::Pop { col } => {
                if session.pop().is_err() {
                    session_diag(&label, line, col, "AB022", "pop without a matching push");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
            ScriptCommand::Reset => session.reset(),
            ScriptCommand::Var { kind, name } => {
                if let Err(e) = session.arith_var(name, kind) {
                    session_diag(&label, line, 1, "AB021", &e.to_string());
                    return ExitCode::from(EXIT_ERROR);
                }
            }
            ScriptCommand::Range {
                name,
                name_col,
                lo,
                hi,
            } => {
                let Some(id) = session.problem().arith_var(name) else {
                    session_diag(
                        &label,
                        line,
                        name_col,
                        "AB021",
                        &format!("unknown arithmetic variable `{name}`"),
                    );
                    return ExitCode::from(EXIT_ERROR);
                };
                // The parser guarantees `lo <= hi` and no NaN, so the
                // interval constructor cannot panic.
                if session.assert_range(id, Interval::new(lo, hi)).is_err() {
                    session_diag(&label, line, name_col, "AB021", "invalid range");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
            ScriptCommand::Def {
                kind,
                var,
                body,
                body_col,
            } => {
                let base = Span::new(line, body_col);
                match parse_session_constraint(body, kind, session.problem().arith_vars(), base) {
                    Ok((constraint, new_vars)) => {
                        for (name, k) in new_vars {
                            if let Err(e) = session.arith_var(&name, k) {
                                session_diag(&label, line, body_col, "AB021", &e.to_string());
                                return ExitCode::from(EXIT_ERROR);
                            }
                        }
                        if let Err(e) = session.define(var, constraint) {
                            session_diag(&label, line, body_col, "AB021", &e.to_string());
                            return ExitCode::from(EXIT_ERROR);
                        }
                    }
                    Err(e) => {
                        let (l, c) = match e.span() {
                            Some(s) => (s.line, s.col),
                            None => (line, body_col),
                        };
                        session_diag(&label, l, c, "AB021", e.message());
                        return ExitCode::from(EXIT_ERROR);
                    }
                }
            }
            ScriptCommand::Assert { lits } => session.assert_clause(lits),
            ScriptCommand::Check => match session.check() {
                Ok(outcome) => {
                    let (msg, code) = verdict_line(&outcome);
                    println!("{msg}");
                    last_exit = Some(code);
                    match config.stats {
                        Some(StatsFormat::Human) => {
                            eprintln!(
                                "c check {} (depth {}): {}",
                                session.checks(),
                                session.depth(),
                                session.check_stats()
                            );
                        }
                        Some(StatsFormat::Json) => {
                            let mut obj = JsonObject::new();
                            obj.field_u64("check", session.checks())
                                .field_u64("depth", session.depth() as u64)
                                .field_str(
                                    "verdict",
                                    match outcome {
                                        Outcome::Sat(_) => "sat",
                                        Outcome::Unsat => "unsat",
                                        Outcome::Unknown => "unknown",
                                    },
                                )
                                .field_raw("stats", &session.check_stats().to_json());
                            println!("{}", obj.finish());
                        }
                        None => {}
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    if let Some(sink) = &trace_sink {
                        let _ = sink.flush();
                    }
                    return ExitCode::from(EXIT_ITERATION_LIMIT);
                }
            },
            ScriptCommand::Model => match session.model() {
                Some(m) => {
                    if !config.quiet {
                        print_model(session.problem(), m);
                    }
                }
                None => println!("c no model"),
            },
        }
    }

    match config.stats {
        Some(StatsFormat::Human) => {
            eprintln!(
                "c cumulative ({} checks, {} lemmas retained): {}",
                session.checks(),
                session.lemmas_retained(),
                session.cumulative_stats()
            );
        }
        Some(StatsFormat::Json) => {
            let mut obj = JsonObject::new();
            obj.field_u64("checks", session.checks())
                .field_u64("lemmas_retained", session.lemmas_retained() as u64)
                .field_raw("cumulative", &session.cumulative_stats().to_json());
            println!("{}", obj.finish());
        }
        None => {}
    }
    if let Some(sink) = &trace_sink {
        let _ = sink.flush();
    }
    ExitCode::from(last_exit.unwrap_or(0))
}

fn print_model(problem: &AbProblem, model: &absolver::core::AbModel) {
    for (id, var) in problem.arith_vars().iter().enumerate() {
        match model.arith.value_exact(id) {
            Some(exact) => println!("v {} = {}", var.name, exact),
            None => println!(
                "v {} = {}",
                var.name,
                model.arith.value_f64(id).unwrap_or(f64::NAN)
            ),
        }
    }
}

/// Prints the sequential statistics in the requested format. JSON goes to
/// stdout (it is the machine-readable payload); the human form stays on
/// stderr as a `c`-prefixed comment.
fn print_stats(orc: &Orchestrator, format: StatsFormat) {
    match format {
        StatsFormat::Human => eprintln!("c stats: {}", orc.stats()),
        StatsFormat::Json => println!("{}", orc.stats().to_json()),
    }
}

/// JSON for a parallel run: the per-shard aggregate (phase times are not
/// meaningful across racing shards, so the object carries the shard
/// totals instead).
fn parallel_stats_json(stats: &ParallelStats) -> String {
    let iterations: u64 = stats.shards.iter().map(|s| s.boolean_iterations).sum();
    let theory_checks: u64 = stats.shards.iter().map(|s| s.theory_checks).sum();
    let mut obj = JsonObject::new();
    obj.field_u64("jobs", stats.jobs as u64)
        .field_u64("cubes", stats.cubes as u64)
        .field_u64("components", stats.components as u64)
        .field_u64("boolean_iterations", iterations)
        .field_u64("theory_checks", theory_checks)
        .field_u64("clauses_shared", stats.clauses_shared)
        .field_u64("clauses_imported", stats.clauses_imported)
        .field_u64("share_latency_us", saturating_micros(stats.share_latency))
        .field_bool("timed_out", stats.timed_out)
        .field_u64("elapsed_us", saturating_micros(stats.elapsed));
    match stats.winner {
        Some(w) => obj.field_u64("winner", w as u64),
        None => obj.field_raw("winner", "null"),
    };
    obj.finish()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("check") {
        return check_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("session") {
        return session_main(&argv[1..]);
    }
    let config = parse_args();
    let mut text = String::new();
    match &config.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => text = t,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => {
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("cannot read stdin");
                return ExitCode::from(EXIT_ERROR);
            }
        }
    }
    let problem: AbProblem = match text.parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };

    let mut orc = build_orchestrator(&config);
    let trace_sink = match &config.trace {
        Some(path) => match FileSink::create(path) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                orc.set_trace_sink(sink.clone());
                Some(sink)
            }
            Err(e) => {
                eprintln!("cannot open trace file `{path}`: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => None,
    };
    let flush_trace = || {
        if let Some(sink) = &trace_sink {
            let _ = sink.flush();
        }
    };

    if let Some(max) = config.all_models {
        match orc.solve_all(&problem, max) {
            Ok(models) => {
                if !config.quiet {
                    println!("c {} model(s)", models.len());
                    for (i, m) in models.iter().enumerate() {
                        println!("c model {}", i + 1);
                        print_model(&problem, m);
                    }
                }
                if let Some(format) = config.stats {
                    print_stats(&orc, format);
                }
                flush_trace();
                return if models.is_empty() {
                    println!("s UNSATISFIABLE");
                    ExitCode::from(EXIT_UNSAT)
                } else {
                    println!("s SATISFIABLE");
                    ExitCode::from(EXIT_SAT)
                };
            }
            Err(e) => {
                eprintln!("{e}");
                flush_trace();
                return ExitCode::from(EXIT_ITERATION_LIMIT);
            }
        }
    }

    let outcome = if let Some(jobs) = config.jobs {
        let mut base = OrchestratorOptions {
            time_limit: config.time_limit,
            theory_cache: config.theory_cache,
            ..Default::default()
        };
        if let Some(n) = config.max_iterations {
            base.max_iterations = n;
        }
        let popts = ParallelOptions {
            jobs,
            strategy: config.strategy,
            deterministic: config.deterministic,
            base,
            ..Default::default()
        };
        match orc.solve_parallel(&problem, &popts) {
            Ok((o, pstats)) => {
                match config.stats {
                    Some(StatsFormat::Human) => {
                        eprintln!("c parallel[{}]: {}", config.strategy, pstats);
                        for (i, s) in pstats.shards.iter().enumerate() {
                            eprintln!(
                                "c shard {i}: cubes={} iterations={} shared={} imported={}{}{}",
                                s.cubes_solved,
                                s.boolean_iterations,
                                s.clauses_shared,
                                s.clauses_imported,
                                if s.cancelled { " cancelled" } else { "" },
                                if s.timed_out { " timed-out" } else { "" },
                            );
                        }
                    }
                    Some(StatsFormat::Json) => println!("{}", parallel_stats_json(&pstats)),
                    None => {}
                }
                o
            }
            Err(e) => {
                eprintln!("{e}");
                flush_trace();
                return ExitCode::from(EXIT_ITERATION_LIMIT);
            }
        }
    } else {
        match orc.solve(&problem) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                if let Some(format) = config.stats {
                    print_stats(&orc, format);
                }
                flush_trace();
                return ExitCode::from(EXIT_ITERATION_LIMIT);
            }
        }
    };
    if config.jobs.is_none() {
        if let Some(format) = config.stats {
            print_stats(&orc, format);
        }
    }
    flush_trace();
    match outcome {
        Outcome::Sat(model) => {
            println!("s SATISFIABLE");
            if !config.quiet {
                print_model(&problem, &model);
            }
            ExitCode::from(EXIT_SAT)
        }
        Outcome::Unsat => {
            println!("s UNSATISFIABLE");
            ExitCode::from(EXIT_UNSAT)
        }
        Outcome::Unknown => {
            println!("s UNKNOWN");
            ExitCode::from(EXIT_UNKNOWN)
        }
    }
}
