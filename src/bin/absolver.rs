//! The stand-alone ABsolver executable (paper Sec. 4/6).
//!
//! "ABsolver can be used as a stand-alone tool with its intuitive-to-use
//! input language for specifying multi-domain constraint problems" — this
//! binary reads the extended DIMACS format from a file (or stdin), runs
//! the control loop, and prints the verdict plus a model. "The various
//! constituents of our solver are customisable via command line
//! parameters":
//!
//! ```text
//! absolver [OPTIONS] [FILE]
//!
//!   FILE                     input in extended DIMACS (default: stdin)
//!   --boolean cdcl|restart   Boolean backend        (default: cdcl)
//!   --nonlinear cascade|interval|penalty
//!                            nonlinear backend      (default: cascade)
//!   --no-minimize            disable conflict-core minimisation
//!   --all-models N           enumerate up to N models
//!   --time-limit SECS        wall-clock budget
//!   --jobs N                 solve with N parallel shards
//!   --strategy portfolio|cubes
//!                            parallel strategy      (default: portfolio)
//!   --deterministic          reproducible cube-to-shard assignment
//!   --stats                  print solver statistics
//!   --quiet                  verdict only (exit code 10 = sat, 20 = unsat)
//! ```

use absolver::core::{
    AbProblem, CascadeNonlinear, CdclBoolean, IntervalNonlinear, Orchestrator,
    OrchestratorOptions, Outcome, ParallelOptions, ParallelStrategy, PenaltyNonlinear,
    RestartingBoolean, SimplexLinear,
};
use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

struct Config {
    file: Option<String>,
    boolean: String,
    nonlinear: String,
    minimize: bool,
    all_models: Option<usize>,
    time_limit: Option<Duration>,
    jobs: Option<usize>,
    strategy: ParallelStrategy,
    deterministic: bool,
    stats: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: absolver [--boolean cdcl|restart] [--nonlinear cascade|interval|penalty]\n\
         \x20               [--no-minimize] [--all-models N] [--time-limit SECS]\n\
         \x20               [--jobs N] [--strategy portfolio|cubes] [--deterministic]\n\
         \x20               [--stats] [--quiet] [FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut config = Config {
        file: None,
        boolean: "cdcl".to_string(),
        nonlinear: "cascade".to_string(),
        minimize: true,
        all_models: None,
        time_limit: None,
        jobs: None,
        strategy: ParallelStrategy::Portfolio,
        deterministic: false,
        stats: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--boolean" => config.boolean = args.next().unwrap_or_else(|| usage()),
            "--nonlinear" => config.nonlinear = args.next().unwrap_or_else(|| usage()),
            "--no-minimize" => config.minimize = false,
            "--all-models" => {
                let n = args.next().and_then(|v| v.parse().ok());
                config.all_models = Some(n.unwrap_or_else(|| usage()));
            }
            "--time-limit" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                config.time_limit = Some(Duration::from_secs(secs));
            }
            "--jobs" => {
                let n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                config.jobs = Some(n.max(1));
            }
            "--strategy" => {
                let s = args.next().unwrap_or_else(|| usage());
                config.strategy = s.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--deterministic" => config.deterministic = true,
            "--stats" => config.stats = true,
            "--quiet" => config.quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            file => {
                if config.file.replace(file.to_string()).is_some() {
                    eprintln!("multiple input files");
                    usage();
                }
            }
        }
    }
    config
}

fn build_orchestrator(config: &Config) -> Orchestrator {
    let boolean: Box<dyn absolver::core::BooleanSolver> = match config.boolean.as_str() {
        "cdcl" => Box::new(CdclBoolean::new()),
        "restart" => Box::new(RestartingBoolean::new()),
        other => {
            eprintln!("unknown Boolean backend `{other}`");
            usage();
        }
    };
    let linear = if config.minimize {
        SimplexLinear::new()
    } else {
        SimplexLinear::without_minimization()
    };
    let mut orc = Orchestrator::custom(boolean).with_linear(Box::new(linear));
    orc = match config.nonlinear.as_str() {
        "cascade" => orc.with_nonlinear(Box::new(CascadeNonlinear::default())),
        "interval" => orc.with_nonlinear(Box::new(IntervalNonlinear::default())),
        "penalty" => orc.with_nonlinear(Box::new(PenaltyNonlinear::default())),
        other => {
            eprintln!("unknown nonlinear backend `{other}`");
            usage();
        }
    };
    let options = OrchestratorOptions { time_limit: config.time_limit, ..Default::default() };
    orc.with_options(options)
}

fn print_model(problem: &AbProblem, model: &absolver::core::AbModel) {
    for (id, var) in problem.arith_vars().iter().enumerate() {
        match model.arith.value_exact(id) {
            Some(exact) => println!("v {} = {}", var.name, exact),
            None => println!(
                "v {} = {}",
                var.name,
                model.arith.value_f64(id).unwrap_or(f64::NAN)
            ),
        }
    }
}

fn main() -> ExitCode {
    let config = parse_args();
    let mut text = String::new();
    match &config.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => text = t,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("cannot read stdin");
                return ExitCode::from(2);
            }
        }
    }
    let problem: AbProblem = match text.parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let mut orc = build_orchestrator(&config);

    if let Some(max) = config.all_models {
        match orc.solve_all(&problem, max) {
            Ok(models) => {
                if !config.quiet {
                    println!("c {} model(s)", models.len());
                    for (i, m) in models.iter().enumerate() {
                        println!("c model {}", i + 1);
                        print_model(&problem, m);
                    }
                }
                if config.stats {
                    eprintln!("c stats: {}", orc.stats());
                }
                return if models.is_empty() {
                    println!("s UNSATISFIABLE");
                    ExitCode::from(20)
                } else {
                    println!("s SATISFIABLE");
                    ExitCode::from(10)
                };
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }

    let outcome = if let Some(jobs) = config.jobs {
        let popts = ParallelOptions {
            jobs,
            strategy: config.strategy,
            deterministic: config.deterministic,
            base: OrchestratorOptions { time_limit: config.time_limit, ..Default::default() },
            ..Default::default()
        };
        match orc.solve_parallel(&problem, &popts) {
            Ok((o, pstats)) => {
                if config.stats {
                    eprintln!("c parallel[{}]: {}", config.strategy, pstats);
                    for (i, s) in pstats.shards.iter().enumerate() {
                        eprintln!(
                            "c shard {i}: cubes={} iterations={} shared={} imported={}{}{}",
                            s.cubes_solved,
                            s.boolean_iterations,
                            s.clauses_shared,
                            s.clauses_imported,
                            if s.cancelled { " cancelled" } else { "" },
                            if s.timed_out { " timed-out" } else { "" },
                        );
                    }
                }
                o
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match orc.solve(&problem) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    };
    if config.stats && config.jobs.is_none() {
        eprintln!("c stats: {}", orc.stats());
    }
    match outcome {
        Outcome::Sat(model) => {
            println!("s SATISFIABLE");
            if !config.quiet {
                print_model(&problem, &model);
            }
            ExitCode::from(10)
        }
        Outcome::Unsat => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        Outcome::Unknown => {
            println!("s UNKNOWN");
            ExitCode::SUCCESS
        }
    }
}
