//! `absolverd` — the resident ABsolver solve service.
//!
//! Serves the line protocol of [`absolver::service::protocol`] over
//! stdin/stdout, and additionally over a unix socket when `--socket` is
//! given. Requests flow through a bounded priority queue into a worker
//! pool with per-request deadlines, cooperative cancellation, and
//! cross-request caching (problem verdicts, warm sessions, lemmas).
//!
//! ```text
//! usage: absolverd [--workers N] [--queue N] [--sessions N]
//!                  [--timeout-ms N] [--socket PATH] [--trace FILE]
//!
//!   --workers N      worker threads (default 2)
//!   --queue N        queue capacity before overload rejections (default 64)
//!   --sessions N     warm sessions kept across requests (default 8)
//!   --timeout-ms N   default per-request deadline (default: none)
//!   --socket PATH    additionally listen on a unix socket
//!   --trace FILE     write a JSONL event trace to FILE
//! ```
//!
//! The daemon exits when it reads a `shutdown` command (from any
//! connection), or on stdin EOF when no socket is configured; queued
//! requests are drained first. Exit status is 0 on a clean shutdown,
//! 2 on a usage or setup error.

use absolver::service::protocol::{ClientFrame, ErrCode, Response};
use absolver::service::{RequestDecoder, Server, ServerOptions, Submission};
use absolver::trace::{FileSink, NullSink, TraceSink};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

struct Config {
    options: ServerOptions,
    socket: Option<String>,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: absolverd [--workers N] [--queue N] [--sessions N]\n\
         \x20                [--timeout-ms N] [--socket PATH] [--trace FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut config = Config {
        options: ServerOptions::default(),
        socket: None,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--workers" => config.options.workers = num(&mut args).max(1),
            "--queue" => config.options.queue_capacity = num(&mut args).max(1),
            "--sessions" => config.options.session_pool = num(&mut args).max(1),
            "--timeout-ms" => {
                config.options.default_timeout = Some(Duration::from_millis(num(&mut args) as u64));
            }
            "--socket" => config.socket = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => config.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    config
}

/// Set once by any connection that reads a `shutdown` command (or by
/// stdin EOF when the daemon serves stdin only); the main thread waits
/// on it before draining the server.
struct ShutdownSignal {
    fired: Mutex<bool>,
    cond: Condvar,
}

impl ShutdownSignal {
    fn new() -> ShutdownSignal {
        ShutdownSignal {
            fired: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn fire(&self) {
        let mut fired = match self.fired.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *fired = true;
        self.cond.notify_all();
    }

    fn wait(&self) {
        let mut fired = match self.fired.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        while !*fired {
            fired = match self.cond.wait(fired) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// The requests submitted on one connection that have not been answered
/// yet: their cancel tokens (for `cancel id=N`), plus a condvar so a
/// `shutdown` can drain them before `bye` goes out.
struct Pending {
    tokens: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    drained: Condvar,
}

impl Pending {
    fn new() -> Pending {
        Pending {
            tokens: Mutex::new(HashMap::new()),
            drained: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<AtomicBool>>> {
        match self.tokens.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Marks `id` answered (its final response is about to be written).
    fn finish(&self, id: u64) {
        self.lock().remove(&id);
        self.drained.notify_all();
    }

    /// Gives up on every outstanding request (the connection died).
    fn abandon(&self) {
        self.lock().clear();
        self.drained.notify_all();
    }

    /// Blocks until every submitted request has been answered. In-flight
    /// solves keep running under their own deadlines/cancellation, so
    /// this terminates whenever the workers do.
    fn wait_drained(&self) {
        let mut map = self.lock();
        while !map.is_empty() {
            map = match self.drained.wait(map) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Serves one connection: decodes frames from `reader`, submits solves,
/// and writes every response line to `writer` (from a dedicated thread,
/// so slow clients never block the workers). Returns after EOF or a
/// `shutdown` command.
fn serve_connection(
    server: &Server,
    reader: impl Read,
    writer: impl Write + Send + 'static,
    shutdown: &ShutdownSignal,
) {
    let (tx, rx) = mpsc::channel::<Response>();
    let pending = Arc::new(Pending::new());

    let writer_pending = pending.clone();
    let writer_thread = std::thread::spawn(move || {
        let mut writer = writer;
        while let Ok(response) = rx.recv() {
            let done_id = match &response {
                Response::Ok { id, .. } => Some(*id),
                Response::Err { id, .. } => *id,
                _ => None,
            };
            if let Some(id) = done_id {
                writer_pending.finish(id);
            }
            if writeln!(writer, "{}", response.render()).is_err() {
                // Dead client: nothing submitted here can be delivered
                // any more, so stop a shutdown from waiting on it.
                writer_pending.abandon();
                break;
            }
            let _ = writer.flush();
        }
        writer_pending.abandon();
    });

    let mut decoder = RequestDecoder::new();
    let mut saw_shutdown = false;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        let Some(result) = decoder.push_line(&line) else {
            continue;
        };
        match result {
            Ok(ClientFrame::Solve(frame)) => {
                let id = frame.id;
                // Hold the pending lock across the submit: a fast worker
                // can answer before this thread resumes, and the writer's
                // `finish(id)` must not run before the token is inserted
                // (the ghost entry would hang a later `wait_drained`).
                let mut map = pending.lock();
                match server.submit(frame, tx.clone()) {
                    Submission::Enqueued { cancel } => {
                        // Bound the map against clients that never
                        // read responses for completed requests.
                        if map.len() > 4096 {
                            map.clear();
                        }
                        map.insert(id, cancel);
                    }
                    // Rejected and statically-unsat requests were already
                    // answered on the reply channel; nothing to track.
                    Submission::Rejected { .. } | Submission::Answered => {}
                }
            }
            Ok(ClientFrame::Cancel { id }) => {
                let token = pending.lock().get(&id).cloned();
                if let Some(token) = token {
                    token.store(true, Ordering::Relaxed);
                } else {
                    let _ = tx.send(Response::Err {
                        id: Some(id),
                        code: ErrCode::Proto,
                        retry_after_ms: None,
                        message: format!("no pending request with id {id} on this connection"),
                    });
                }
            }
            Ok(ClientFrame::Stats) => {
                let _ = tx.send(Response::Stats(server.stats_json()));
            }
            Ok(ClientFrame::Ping) => {
                let _ = tx.send(Response::Pong);
            }
            Ok(ClientFrame::Shutdown) => {
                // Drain this connection's in-flight requests so `bye` is
                // the last line the client reads.
                pending.wait_drained();
                let _ = tx.send(Response::Bye);
                saw_shutdown = true;
                break;
            }
            Err(e) => {
                let _ = tx.send(Response::Err {
                    id: e.id,
                    code: ErrCode::Proto,
                    retry_after_ms: None,
                    message: e.message,
                });
            }
        }
    }
    // Drop our sender so the writer drains in-flight job responses and
    // then exits; jobs still hold their own clones until answered.
    drop(tx);
    let _ = writer_thread.join();
    if saw_shutdown {
        shutdown.fire();
    }
}

fn main() -> ExitCode {
    let config = parse_args();

    // Keep the concrete handle: the daemon exits with worker/listener
    // threads still holding sink clones, so the buffered trace must be
    // flushed explicitly — no drop will do it.
    let mut file_sink: Option<Arc<FileSink>> = None;
    let sink: Arc<dyn TraceSink> = match &config.trace {
        Some(path) => match FileSink::create(path) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                file_sink = Some(sink.clone());
                sink
            }
            Err(e) => {
                eprintln!("cannot open trace file `{path}`: {e}");
                return ExitCode::from(2);
            }
        },
        None => Arc::new(NullSink),
    };
    let server = Arc::new(Server::with_trace(config.options, sink));
    let shutdown = Arc::new(ShutdownSignal::new());
    let serving_socket = config.socket.is_some();

    if let Some(path) = config.socket {
        // A stale socket file from a previous run would make bind fail.
        let _ = std::fs::remove_file(&path);
        let listener = match std::os::unix::net::UnixListener::bind(&path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cannot bind unix socket `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let server = server.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let server = server.clone();
                let shutdown = shutdown.clone();
                std::thread::spawn(move || {
                    serve_connection(&server, stream, write_half, &shutdown);
                });
            }
        });
    }

    // stdin/stdout is always served; its EOF ends the daemon unless a
    // socket keeps it alive for other clients.
    {
        let server = server.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            serve_connection(&server, std::io::stdin(), std::io::stdout(), &shutdown);
            if !serving_socket {
                shutdown.fire();
            }
        });
    }

    shutdown.wait();
    server.shutdown();
    if let Some(sink) = file_sink {
        if let Err(e) = sink.flush() {
            eprintln!("cannot flush trace file: {e}");
        }
    }
    ExitCode::SUCCESS
}
