//! Micro-benchmarks for the individual solver layers and for
//! end-to-end instances of each evaluation workload, timed with the
//! in-repo `absolver_testkit::bench` harness.
//!
//! Run with `cargo bench -p absolver-bench`. Set
//! `TESTKIT_BENCH_QUICK=1` for a fast smoke run.

use absolver_bench::{fischer, sudoku, table1};
use absolver_core::Orchestrator;
use absolver_linear::{check_conjunction, CmpOp, LinExpr, LinearConstraint};
use absolver_nonlinear::{hc4, Expr, NlConstraint, NlProblem};
use absolver_num::{BigInt, Interval, Rational};
use absolver_sat::Solver;
use absolver_testkit::bench::{black_box, Bench};

fn bench_num(b: &mut Bench) {
    b.group("num");
    let x: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
    let y: BigInt = "987654321098765432109876543210".parse().unwrap();
    b.bench("bigint_mul", || black_box(&x) * black_box(&y));
    b.bench("bigint_divrem", || black_box(&x).div_rem(black_box(&y)));
    let p = Rational::new(355, 113);
    let q = Rational::new(-22, 7);
    b.bench("rational_add_reduce", || black_box(&p) + black_box(&q));
}

fn bench_sat(b: &mut Bench) {
    b.group("sat");
    // Pigeonhole 7→6: a genuinely hard UNSAT instance for CDCL. The
    // solver is mutated by solving, so each sample gets a fresh one.
    b.bench_with_setup(
        "pigeonhole_7_6",
        || {
            let mut s = Solver::new();
            let v = |i: i32, j: i32| i * 6 + j + 1;
            for i in 0..7 {
                let holes: Vec<i32> = (0..6).map(|j| v(i, j)).collect();
                s.add_dimacs_clause(&holes);
            }
            for j in 0..6 {
                for i1 in 0..7 {
                    for i2 in (i1 + 1)..7 {
                        s.add_dimacs_clause(&[-v(i1, j), -v(i2, j)]);
                    }
                }
            }
            s
        },
        |mut s| black_box(s.solve()),
    );
}

fn bench_linear(b: &mut Bench) {
    b.group("linear");
    // A chained equality system forcing pivots.
    let mut constraints = vec![LinearConstraint::new(
        LinExpr::var(0),
        CmpOp::Eq,
        Rational::one(),
    )];
    for i in 0..15 {
        constraints.push(LinearConstraint::new(
            LinExpr::from_terms([(i + 1, Rational::one()), (i, Rational::from_int(-2))]),
            CmpOp::Eq,
            Rational::from_int(1),
        ));
    }
    b.bench("simplex_chain_16", || {
        black_box(check_conjunction(black_box(&constraints)))
    });
}

fn bench_nonlinear(b: &mut Bench) {
    b.group("nonlinear");
    let circle = NlConstraint::new(
        Expr::var(0).pow(2) + Expr::var(1).pow(2),
        CmpOp::Le,
        Rational::from_int(25),
    );
    let line = NlConstraint::new(
        Expr::var(0) + Expr::var(1),
        CmpOp::Ge,
        Rational::from_int(6),
    );
    b.bench("hc4_propagate", || {
        let mut bx = vec![Interval::new(-100.0, 100.0), Interval::new(-100.0, 100.0)];
        black_box(hc4::propagate(&[circle.clone(), line.clone()], &mut bx, 20))
    });
    b.bench("branch_and_prune_circle", || {
        let mut p = NlProblem::new(2);
        p.add_constraint(circle.clone());
        p.add_constraint(line.clone());
        p.bound_var(0, Interval::new(-100.0, 100.0));
        p.bound_var(1, Interval::new(-100.0, 100.0));
        black_box(p.solve())
    });
}

fn bench_end_to_end(b: &mut Bench) {
    b.group("end_to_end");
    b.set_samples(10);
    let fischer6 = fischer::fischer(6);
    b.bench("fischer_6", || {
        let mut orc = Orchestrator::with_defaults();
        black_box(orc.solve(black_box(&fischer6)).unwrap())
    });
    let (puzzle, _) = sudoku::generate(1, sudoku::Difficulty::Hard);
    let mixed = sudoku::encode_mixed(&puzzle);
    b.bench("sudoku_mixed", || {
        let mut orc = Orchestrator::with_defaults();
        black_box(orc.solve(black_box(&mixed)).unwrap())
    });
    let esat = table1::esat_n11_m8_nonlinear();
    b.bench("esat_n11_m8_nonlinear", || {
        let mut orc = Orchestrator::with_defaults();
        black_box(orc.solve(black_box(&esat)).unwrap())
    });
}

fn main() {
    // `cargo test` runs bench targets with `--test`; there is nothing
    // to test here, so just exit.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut b = Bench::new();
    bench_num(&mut b);
    bench_sat(&mut b);
    bench_linear(&mut b);
    bench_nonlinear(&mut b);
    bench_end_to_end(&mut b);
    b.report();
}
