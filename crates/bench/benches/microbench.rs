//! Criterion micro-benchmarks for the individual solver layers and for
//! end-to-end instances of each evaluation workload.
//!
//! Run with `cargo bench -p absolver-bench`.

use absolver_bench::{fischer, sudoku, table1};
use absolver_core::Orchestrator;
use absolver_linear::{check_conjunction, CmpOp, LinExpr, LinearConstraint};
use absolver_nonlinear::{hc4, Expr, NlConstraint, NlProblem};
use absolver_num::{BigInt, Interval, Rational};
use absolver_sat::Solver;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_num(c: &mut Criterion) {
    let mut g = c.benchmark_group("num");
    let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
    let b: BigInt = "987654321098765432109876543210".parse().unwrap();
    g.bench_function("bigint_mul", |bench| {
        bench.iter(|| black_box(&a) * black_box(&b));
    });
    g.bench_function("bigint_divrem", |bench| {
        bench.iter(|| black_box(&a).div_rem(black_box(&b)));
    });
    let p = Rational::new(355, 113);
    let q = Rational::new(-22, 7);
    g.bench_function("rational_add_reduce", |bench| {
        bench.iter(|| black_box(&p) + black_box(&q));
    });
    g.finish();
}

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    // Pigeonhole 7→6: a genuinely hard UNSAT instance for CDCL.
    g.bench_function("pigeonhole_7_6", |bench| {
        bench.iter_batched(
            || {
                let mut s = Solver::new();
                let v = |i: i32, j: i32| i * 6 + j + 1;
                for i in 0..7 {
                    let holes: Vec<i32> = (0..6).map(|j| v(i, j)).collect();
                    s.add_dimacs_clause(&holes);
                }
                for j in 0..6 {
                    for i1 in 0..7 {
                        for i2 in (i1 + 1)..7 {
                            s.add_dimacs_clause(&[-v(i1, j), -v(i2, j)]);
                        }
                    }
                }
                s
            },
            |mut s| black_box(s.solve()),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("linear");
    // A chained equality system forcing pivots.
    let mut constraints = vec![LinearConstraint::new(
        LinExpr::var(0),
        CmpOp::Eq,
        Rational::one(),
    )];
    for i in 0..15 {
        constraints.push(LinearConstraint::new(
            LinExpr::from_terms([(i + 1, Rational::one()), (i, Rational::from_int(-2))]),
            CmpOp::Eq,
            Rational::from_int(1),
        ));
    }
    g.bench_function("simplex_chain_16", |bench| {
        bench.iter(|| black_box(check_conjunction(black_box(&constraints))));
    });
    g.finish();
}

fn bench_nonlinear(c: &mut Criterion) {
    let mut g = c.benchmark_group("nonlinear");
    let circle = NlConstraint::new(
        Expr::var(0).pow(2) + Expr::var(1).pow(2),
        CmpOp::Le,
        Rational::from_int(25),
    );
    let line = NlConstraint::new(
        Expr::var(0) + Expr::var(1),
        CmpOp::Ge,
        Rational::from_int(6),
    );
    g.bench_function("hc4_propagate", |bench| {
        bench.iter(|| {
            let mut bx = vec![Interval::new(-100.0, 100.0), Interval::new(-100.0, 100.0)];
            black_box(hc4::propagate(&[circle.clone(), line.clone()], &mut bx, 20))
        });
    });
    g.bench_function("branch_and_prune_circle", |bench| {
        bench.iter(|| {
            let mut p = NlProblem::new(2);
            p.add_constraint(circle.clone());
            p.add_constraint(line.clone());
            p.bound_var(0, Interval::new(-100.0, 100.0));
            p.bound_var(1, Interval::new(-100.0, 100.0));
            black_box(p.solve())
        });
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let fischer6 = fischer::fischer(6);
    g.bench_function("fischer_6", |bench| {
        bench.iter(|| {
            let mut orc = Orchestrator::with_defaults();
            black_box(orc.solve(black_box(&fischer6)).unwrap())
        });
    });
    let (puzzle, _) = sudoku::generate(1, sudoku::Difficulty::Hard);
    let mixed = sudoku::encode_mixed(&puzzle);
    g.bench_function("sudoku_mixed", |bench| {
        bench.iter(|| {
            let mut orc = Orchestrator::with_defaults();
            black_box(orc.solve(black_box(&mixed)).unwrap())
        });
    });
    let esat = table1::esat_n11_m8_nonlinear();
    g.bench_function("esat_n11_m8_nonlinear", |bench| {
        bench.iter(|| {
            let mut orc = Orchestrator::with_defaults();
            black_box(orc.solve(black_box(&esat)).unwrap())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_num,
    bench_sat,
    bench_linear,
    bench_nonlinear,
    bench_end_to_end
);
criterion_main!(benches);
