//! The named observability workloads behind the checked-in
//! `BENCH_<workload>.json` reports (and the `bench_json` binary).
//!
//! Four representative problems spanning the solver's phases:
//!
//! * **steering** — the paper's Sec. 5.1 hybrid-systems case study
//!   (nonlinear-heavy, exercises the HC4/penalty cascade);
//! * **threshold-reach** — a conflict-driven linear workload where the
//!   Boolean search pays for every step toward the feasible region with
//!   one minimised theory conflict;
//! * **sudoku** — the Table 3 mixed encoding (Boolean-dominated with
//!   integer side constraints);
//! * **fischer** — the Table 2 mutual-exclusion family (linear real-time
//!   constraints).

use crate::fischer::fischer;
use crate::sudoku::{encode_mixed, generate, Difficulty};
use absolver_core::{AbProblem, VarKind};
use absolver_linear::CmpOp;
use absolver_model::steering_problem;
use absolver_nonlinear::Expr;
use absolver_num::Rational;

/// The threshold workload: `m` integer variables in `{-1, 0, 1}`, each
/// with a free atom `aᵢ ⇔ xᵢ ≥ 1`, and a required atom forcing
/// `Σ xᵢ ≥ ⌈0.55 m⌉`. Every Boolean model with too few true atoms is a
/// theory conflict whose minimised core only rules out one more
/// assignment, so the distance between the solver's starting phase and
/// the threshold is paid in full, one conflict at a time.
pub fn threshold_problem(m: usize) -> AbProblem {
    let mut b = AbProblem::builder();
    let vars: Vec<usize> = (0..m)
        .map(|i| b.arith_var(&format!("x{i}"), VarKind::Int))
        .collect();
    for &v in &vars {
        let a = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(1));
        let _ = a; // free atom: the Boolean search decides its polarity
        let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-1));
        b.require(lo.positive());
        let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(1));
        b.require(hi.positive());
    }
    let sum = vars.iter().fold(Expr::int(0), |acc, &v| acc + Expr::var(v));
    let target = (m * 55).div_ceil(100) as i64;
    let u = b.atom(sum, CmpOp::Ge, Rational::from_int(target));
    b.require(u.positive());
    b.build()
}

/// A deliberately decomposable workload: `instances` independent copies
/// of the threshold problem over pairwise-disjoint variables. No clause
/// or definition ever links two copies, so the variable–constraint
/// incidence graph has exactly `instances` connected components and the
/// structural partitioner can solve each copy in isolation (the
/// `components` bench binary measures exactly that).
pub fn decomposable_problem(instances: usize, m: usize) -> AbProblem {
    let mut b = AbProblem::builder();
    for inst in 0..instances {
        let vars: Vec<usize> = (0..m)
            .map(|i| b.arith_var(&format!("c{inst}x{i}"), VarKind::Int))
            .collect();
        for &v in &vars {
            let a = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(1));
            let _ = a; // free atom: the Boolean search decides its polarity
            let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-1));
            b.require(lo.positive());
            let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(1));
            b.require(hi.positive());
        }
        let sum = vars.iter().fold(Expr::int(0), |acc, &v| acc + Expr::var(v));
        let target = (m * 55).div_ceil(100) as i64;
        let u = b.atom(sum, CmpOp::Ge, Rational::from_int(target));
        b.require(u.positive());
    }
    b.build()
}

/// The four `BENCH_*.json` workloads, in report order. Each entry is
/// `(workload key, problem)`; the key is what `bench_json` embeds in the
/// file name.
pub fn bench_suite() -> Vec<(&'static str, AbProblem)> {
    vec![
        ("steering", steering_problem()),
        ("threshold-reach", threshold_problem(60)),
        ("sudoku", encode_mixed(&generate(3, Difficulty::Easy).0)),
        ("fischer", fischer(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_problem_shape() {
        let p = threshold_problem(10);
        // 10 free atoms + 20 required bounds + 1 threshold atom.
        assert_eq!(p.num_defs(), 31);
        assert_eq!(p.arith_vars().len(), 10);
    }

    #[test]
    fn bench_suite_names_are_unique_and_file_safe() {
        let suite = bench_suite();
        assert_eq!(suite.len(), 4);
        let mut names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
    }
}
