//! The nonlinear benchmark instances of the paper's Table 1.
//!
//! Four instances: the car steering case study (from `absolver-model`),
//! `esat_n11_m8_nonlinear`, `nonlinear_unsat`, and `div_operator`. The
//! original downloads from `absolver.sf.net` are long gone; these
//! reconstructions match the structural statistics the table reports
//! (clauses, constraint-bearing variables, linear/nonlinear split) and the
//! satisfiability status implied by the paper.

use absolver_core::{AbProblem, VarKind};
use absolver_linear::CmpOp;
use absolver_nonlinear::{Expr, NlConstraint};
use absolver_num::{Interval, Rational};

fn q(s: &str) -> Rational {
    s.parse().expect("rational literal")
}

/// `esat_n11_m8_nonlinear`: 11 clauses, 8 constraint-bearing Boolean
/// variables, 9 linear + 2 nonlinear constraints. Satisfiable.
pub fn esat_n11_m8_nonlinear() -> AbProblem {
    let mut b = AbProblem::builder();
    let a = b.arith_var("a", VarKind::Real);
    let bb = b.arith_var("b", VarKind::Real);
    let c = b.arith_var("c", VarKind::Real);
    for v in [a, bb, c] {
        b.set_range(v, Interval::new(-50.0, 50.0));
    }

    // v1 ⇔ (a ≥ 0 ∧ b ≥ 0): 2 linear.
    let v1 = b.atom(Expr::var(a), CmpOp::Ge, q("0"));
    b.define(v1, NlConstraint::new(Expr::var(bb), CmpOp::Ge, q("0")));
    // v2..v6: 5 linear.
    let v2 = b.atom(Expr::var(a) + Expr::var(bb), CmpOp::Le, q("10"));
    let v3 = b.atom(Expr::var(a) - Expr::var(bb), CmpOp::Lt, q("4"));
    let v4 = b.atom(
        Expr::int(2) * Expr::var(a) + Expr::int(3) * Expr::var(bb),
        CmpOp::Ge,
        q("1"),
    );
    let v5 = b.atom(Expr::var(bb), CmpOp::Le, q("8"));
    let v6 = b.atom(Expr::var(a), CmpOp::Le, q("7"));
    // v7 ⇔ (c ≥ −5 ∧ c ≤ 5): 2 linear.
    let v7 = b.atom(Expr::var(c), CmpOp::Ge, q("-5"));
    b.define(v7, NlConstraint::new(Expr::var(c), CmpOp::Le, q("5")));
    // v8 ⇔ (a·b ≤ 6 ∧ c² ≤ 25): 2 nonlinear.
    let v8 = b.atom(Expr::var(a) * Expr::var(bb), CmpOp::Le, q("6"));
    b.define(
        v8,
        NlConstraint::new(Expr::var(c).pow(2), CmpOp::Le, q("25")),
    );

    // 11 clauses.
    b.add_clause([v1.positive()]);
    b.add_clause([v2.positive(), v3.positive()]);
    b.add_clause([v3.negative(), v4.positive()]);
    b.add_clause([v5.positive(), v6.positive()]);
    b.add_clause([v7.positive()]);
    b.add_clause([v8.positive()]);
    b.add_clause([v2.positive(), v5.negative()]);
    b.add_clause([v4.positive(), v6.positive()]);
    b.add_clause([v6.negative(), v1.positive()]);
    b.add_clause([v3.positive(), v5.positive(), v8.positive()]);
    b.add_clause([v2.negative(), v7.positive()]);
    b.build()
}

/// `nonlinear_unsat`: 1 clause, 1 variable, 2 nonlinear constraints whose
/// conjunction is unsatisfiable (`x² ≥ 1 ∧ x² ≤ 1/4`).
pub fn nonlinear_unsat() -> AbProblem {
    let mut b = AbProblem::builder();
    let x = b.arith_var("x", VarKind::Real);
    b.set_range(x, Interval::new(-100.0, 100.0));
    let v = b.atom(Expr::var(x).pow(2), CmpOp::Ge, q("1"));
    b.define(
        v,
        NlConstraint::new(Expr::var(x).pow(2), CmpOp::Le, q("0.25")),
    );
    b.require(v.positive());
    b.build()
}

/// `div_operator`: 1 clause, 1 variable, 4 linear + 1 nonlinear constraint
/// exercising the division operator the paper highlights ("adding the
/// division operator involved less than an hour of programming effort").
/// Satisfiable.
pub fn div_operator() -> AbProblem {
    let mut b = AbProblem::builder();
    let x = b.arith_var("x", VarKind::Real);
    let y = b.arith_var("y", VarKind::Real);
    b.set_range(x, Interval::new(-100.0, 100.0));
    b.set_range(y, Interval::new(-100.0, 100.0));
    let v = b.atom(Expr::var(y), CmpOp::Ge, q("0"));
    b.define(v, NlConstraint::new(Expr::var(y), CmpOp::Le, q("3")));
    b.define(v, NlConstraint::new(Expr::var(x), CmpOp::Ge, q("0")));
    b.define(v, NlConstraint::new(Expr::var(x), CmpOp::Le, q("10")));
    b.define(
        v,
        NlConstraint::new(
            Expr::constant(q("3.5")) / (Expr::int(4) - Expr::var(y)),
            CmpOp::Ge,
            q("1"),
        ),
    );
    b.require(v.positive());
    b.build()
}

/// All four Table 1 rows, in the paper's order.
pub fn table1_suite() -> Vec<(String, AbProblem)> {
    vec![
        (
            "Car steering".to_string(),
            absolver_model::steering_problem(),
        ),
        ("esat_n11_m8_nonlinear".to_string(), esat_n11_m8_nonlinear()),
        ("nonlinear_unsat".to_string(), nonlinear_unsat()),
        ("div_operator".to_string(), div_operator()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_core::Orchestrator;

    #[test]
    fn esat_statistics_and_verdict() {
        let p = esat_n11_m8_nonlinear();
        assert_eq!(p.cnf().len(), 11, "paper: 11 clauses");
        assert_eq!(p.num_defs(), 8, "paper: 8 variables");
        assert_eq!(p.num_linear(), 9, "paper: 9 linear");
        assert_eq!(p.num_nonlinear(), 2, "paper: 2 nonlinear");
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&p).unwrap();
        let model = outcome.model().expect("satisfiable");
        assert!(model.satisfies(&p, 1e-6));
    }

    #[test]
    fn nonlinear_unsat_statistics_and_verdict() {
        let p = nonlinear_unsat();
        assert_eq!(p.cnf().len(), 1);
        assert_eq!(p.num_defs(), 1);
        assert_eq!(p.num_linear(), 0);
        assert_eq!(p.num_nonlinear(), 2);
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&p).unwrap().is_unsat());
    }

    #[test]
    fn div_operator_statistics_and_verdict() {
        let p = div_operator();
        assert_eq!(p.cnf().len(), 1);
        assert_eq!(p.num_defs(), 1);
        assert_eq!(p.num_linear(), 4);
        assert_eq!(p.num_nonlinear(), 1);
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&p).unwrap();
        let model = outcome.model().expect("satisfiable");
        assert!(model.satisfies(&p, 1e-6));
        // The witness must respect the division constraint strictly.
        let x = p.arith_var("x").unwrap();
        let y = p.arith_var("y").unwrap();
        let (xv, yv) = (
            model.arith.value_f64(x).unwrap(),
            model.arith.value_f64(y).unwrap(),
        );
        assert!(3.5 / (4.0 - yv) >= 1.0 - 1e-9, "x={xv} y={yv}");
    }

    #[test]
    fn suite_matches_paper_rows() {
        let suite = table1_suite();
        assert_eq!(suite.len(), 4);
        let stats: Vec<(usize, usize, usize, usize)> = suite
            .iter()
            .map(|(_, p)| {
                (
                    p.cnf().len(),
                    p.num_defs(),
                    p.num_linear(),
                    p.num_nonlinear(),
                )
            })
            .collect();
        assert_eq!(stats[0], (976, 24, 4, 20));
        assert_eq!(stats[1], (11, 8, 9, 2));
        assert_eq!(stats[2], (1, 1, 0, 2));
        assert_eq!(stats[3], (1, 1, 4, 1));
    }
}
