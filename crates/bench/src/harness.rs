//! Shared measurement and table-formatting helpers for the `table*`
//! binaries.

use absolver_baselines::{
    BaselineVerdict, CvcLike, CvcLikeOptions, MathSatLike, MathSatLikeOptions,
};
use absolver_core::{AbProblem, Orchestrator, OrchestratorOptions, Outcome};
use absolver_trace::{saturating_micros, JsonObject};
use std::time::Duration;

/// Result of one solver on one instance.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Short verdict string (`sat`, `unsat`, `rejected`, `oom`, `timeout`…).
    pub verdict: String,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl Measurement {
    /// Formats as the paper's `XmY.ZZZs` column entry, with the verdict
    /// appended when it is not a plain sat/unsat.
    pub fn cell(&self) -> String {
        match self.verdict.as_str() {
            "sat" | "unsat" => format_duration(self.elapsed),
            other => other.to_string(),
        }
    }
}

/// Formats a duration in the paper's `XmY.YYYs` style.
pub fn format_duration(d: Duration) -> String {
    let total = d.as_secs_f64();
    let minutes = (total / 60.0).floor() as u64;
    let seconds = total - minutes as f64 * 60.0;
    format!("{minutes}m{seconds:.3}s")
}

/// Runs ABsolver (the default orchestrator stack) on a problem.
pub fn run_absolver(problem: &AbProblem, time_limit: Option<Duration>) -> Measurement {
    run_absolver_report("", problem, time_limit).0
}

/// Runs ABsolver and additionally renders the machine-readable report:
/// a JSON object with the workload name, verdict, structural statistics,
/// and the full per-phase [`absolver_core::OrchestratorStats`] payload
/// (the `BENCH_<workload>.json` format).
///
/// Each workload is solved twice: once with the `analyze` preprocessor
/// (the CLI default, reported as the primary `verdict`/`stats` columns)
/// and once on the problem exactly as written (the `raw_verdict` /
/// `raw_elapsed_us` columns), so the reports double as a
/// preprocessing-impact experiment.
pub fn run_absolver_report(
    workload: &str,
    problem: &AbProblem,
    time_limit: Option<Duration>,
) -> (Measurement, String) {
    let options = OrchestratorOptions {
        time_limit,
        ..Default::default()
    };
    let verdict_of =
        |outcome: &Result<Outcome, absolver_core::SolveError>, timed_out: bool| match outcome {
            Ok(Outcome::Sat(model)) => {
                debug_assert!(model.satisfies(problem, 1e-5), "model must validate");
                "sat".to_string()
            }
            Ok(Outcome::Unsat) => "unsat".to_string(),
            Ok(Outcome::Unknown) if timed_out => "timeout".to_string(),
            Ok(Outcome::Unknown) => "unknown".to_string(),
            Err(e) => format!("error: {e}"),
        };

    let mut raw_orc = Orchestrator::with_defaults().with_options(options.clone());
    let raw_outcome = raw_orc.solve(problem);
    let raw_verdict = verdict_of(&raw_outcome, raw_orc.stats().timed_out);
    let raw_elapsed = raw_orc.stats().elapsed;

    let mut orc = Orchestrator::with_defaults()
        .with_options(options)
        .with_preprocessor(Box::new(absolver_analyze::Simplifier::new()));
    let outcome = orc.solve(problem);
    let stats = orc.stats();
    let verdict = verdict_of(&outcome, stats.timed_out);
    debug_assert!(
        !matches!(
            (verdict.as_str(), raw_verdict.as_str()),
            ("sat", "unsat") | ("unsat", "sat")
        ),
        "preprocessing changed the verdict: raw={raw_verdict} preprocessed={verdict}"
    );
    // Derived efficiency metrics of the incremental theory engine:
    // pivot effort per theory check and the verdict-cache hit rate.
    let pivots_per_check = if stats.theory_checks == 0 {
        0.0
    } else {
        stats.simplex_pivots as f64 / stats.theory_checks as f64
    };
    let cache_lookups = stats.theory_cache_hits + stats.theory_cache_misses;
    let cache_hit_rate = if cache_lookups == 0 {
        0.0
    } else {
        stats.theory_cache_hits as f64 / cache_lookups as f64
    };
    // Hash-consing census of the workload's atom definitions: how many
    // expression-tree nodes the problem writes down versus how many
    // distinct arena nodes actually back them. The gap is duplication
    // the intern layer collapsed into id copies.
    let roots: Vec<absolver_nonlinear::TermId> = problem
        .defs()
        .flat_map(|(_, def)| def.constraints.iter().map(|c| c.term()))
        .collect();
    let (term_tree_nodes, term_distinct_nodes) = absolver_nonlinear::term::sharing(&roots);
    let term_dedup_rate = if term_tree_nodes == 0 {
        0.0
    } else {
        1.0 - term_distinct_nodes as f64 / term_tree_nodes as f64
    };
    let mut obj = JsonObject::new();
    obj.field_str("workload", workload)
        .field_str("verdict", &verdict)
        .field_u64("clauses", problem.cnf().len() as u64)
        .field_u64("defs", problem.num_defs() as u64)
        .field_u64("linear_constraints", problem.num_linear() as u64)
        .field_u64("nonlinear_constraints", problem.num_nonlinear() as u64)
        .field_f64("pivots_per_check", pivots_per_check)
        .field_f64("cache_hit_rate", cache_hit_rate)
        .field_f64("contractions_per_check", stats.contractions_per_check())
        .field_f64(
            "contraction_cache_hit_rate",
            stats.contraction_cache_hit_rate(),
        )
        .field_u64("term_tree_nodes", term_tree_nodes)
        .field_u64("term_distinct_nodes", term_distinct_nodes)
        .field_f64("term_dedup_rate", term_dedup_rate)
        .field_u64("components", stats.components)
        .field_u64("subsumed_constraints", stats.subsumed_constraints)
        .field_str("raw_verdict", &raw_verdict)
        .field_u64("raw_elapsed_us", saturating_micros(raw_elapsed))
        .field_raw("stats", &stats.to_json());
    (
        Measurement {
            verdict,
            elapsed: stats.elapsed,
        },
        obj.finish(),
    )
}

/// Runs the tight DPLL(T) baseline.
pub fn run_mathsat_like(problem: &AbProblem, time_limit: Option<Duration>) -> Measurement {
    let mut solver = MathSatLike {
        options: MathSatLikeOptions {
            time_limit,
            ..MathSatLikeOptions::default()
        },
    };
    let run = solver.solve(problem);
    Measurement {
        verdict: verdict_string(&run.verdict),
        elapsed: run.elapsed,
    }
}

/// Runs the eager baseline.
pub fn run_cvc_like(problem: &AbProblem, time_limit: Option<Duration>) -> Measurement {
    let mut solver = CvcLike {
        options: CvcLikeOptions {
            time_limit,
            ..CvcLikeOptions::default()
        },
    };
    let run = solver.solve(problem);
    Measurement {
        verdict: verdict_string(&run.verdict),
        elapsed: run.elapsed,
    }
}

fn verdict_string(v: &BaselineVerdict) -> String {
    match v {
        BaselineVerdict::Sat(_) => "sat".to_string(),
        BaselineVerdict::Unsat => "unsat".to_string(),
        BaselineVerdict::Unknown => "unknown".to_string(),
        BaselineVerdict::Rejected(_) => "rejected".to_string(),
        BaselineVerdict::OutOfMemory => "–* (oom)".to_string(),
        BaselineVerdict::Timeout => "timeout".to_string(),
    }
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Reads a duration (seconds) from an environment variable.
pub fn env_seconds(name: &str, default_secs: u64) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(default_secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(283)), "0m0.283s");
        assert_eq!(format_duration(Duration::from_secs(58)), "0m58.000s");
        assert_eq!(format_duration(Duration::from_secs(5047)), "84m7.000s");
    }

    #[test]
    fn runners_produce_verdicts() {
        let p: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x >= 0\n".parse().unwrap();
        assert_eq!(run_absolver(&p, None).verdict, "sat");
        assert_eq!(run_mathsat_like(&p, None).verdict, "sat");
        assert_eq!(run_cvc_like(&p, None).verdict, "sat");
        let nl: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x * x >= 0\n".parse().unwrap();
        assert_eq!(run_mathsat_like(&nl, None).verdict, "rejected");
        assert_eq!(run_cvc_like(&nl, None).verdict, "rejected");
    }

    #[test]
    fn env_seconds_parses() {
        assert_eq!(
            env_seconds("ABS_NO_SUCH_ENV_VAR", 7),
            Duration::from_secs(7)
        );
    }
}
