//! Workload generators and measurement harnesses regenerating every table
//! of the ABsolver paper's evaluation (Sec. 5).
//!
//! * [`table1`] — the four nonlinear instances of Table 1 (car steering,
//!   `esat_n11_m8_nonlinear`, `nonlinear_unsat`, `div_operator`).
//! * [`fischer`] — the Boolean-linear FISCHER family of Table 2.
//! * [`sudoku`] — the Sudoku suite of Table 3, in both the mixed encoding
//!   (ABsolver) and the integer-free translation (baselines).
//! * [`harness`] — timing, verdict and table-formatting helpers shared by
//!   the `table1`/`table2`/`table3`/`ablations` binaries.
//! * [`workloads`] — the named workloads behind the `BENCH_<workload>.json`
//!   observability reports (`bench_json` binary).
//!
//! Regenerate the paper's tables with:
//!
//! ```text
//! cargo run --release -p absolver-bench --bin table1
//! cargo run --release -p absolver-bench --bin table2
//! cargo run --release -p absolver-bench --bin table3
//! cargo run --release -p absolver-bench --bin ablations
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fischer;
pub mod harness;
pub mod sudoku;
pub mod table1;
pub mod workloads;
