//! Sudoku benchmark generator (paper Table 3).
//!
//! The paper's Table 3 uses daily puzzles from `sudoku.zeit.de` (dates
//! identify the issues) — not redistributable, so this module generates a
//! deterministic puzzle set: a base solution grid shuffled by seeded,
//! validity-preserving transformations, with clues removed down to an
//! "easy" or "hard" count.
//!
//! Two encodings are produced, mirroring the paper's point that "the
//! Sudoku puzzle can be tackled more efficiently as a mixed problem and
//! the encoding is more natural as it can make use of integers":
//!
//! * [`encode_mixed`] — ABsolver's natural mixed encoding: a Boolean
//!   one-hot skeleton carries the combinatorics (the LSAT part), channelled
//!   to integer cell variables through `x_{rc} = d` atoms (the COIN part).
//! * [`encode_arith`] — the translation handed to the Boolean-linear
//!   baselines (which lack a native integer encoding): pairwise
//!   disequality *disjunctions* `x_i < x_j ∨ x_i > x_j` for all peers,
//!   plus the standard redundant sum strengthening `Σ group = 45`. This is
//!   the encoding that makes the eager baseline exhaust memory and the
//!   lazy one crawl.

// Row/column index loops over the 9x9 grid are clearer than iterator
// chains here.
#![allow(clippy::needless_range_loop)]

use absolver_core::{AbModel, AbProblem, VarKind};
use absolver_linear::CmpOp;
use absolver_nonlinear::Expr;
use absolver_num::Rational;
use absolver_testkit::{Rng, TestRng};

/// A 9×9 Sudoku grid; `0` means blank.
pub type Grid = [[u8; 9]; 9];

/// Difficulty of a generated puzzle (number of clues).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Difficulty {
    /// ~36 clues.
    Easy,
    /// ~26 clues.
    Hard,
}

/// The canonical base solution grid.
fn base_solution() -> Grid {
    let mut g = [[0u8; 9]; 9];
    for (r, row) in g.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            // Classic valid pattern: shifts by 3 within bands, 1 across.
            *cell = ((r * 3 + r / 3 + c) % 9 + 1) as u8;
        }
    }
    g
}

/// Checks that a full grid is a valid Sudoku solution.
pub fn is_valid_solution(g: &Grid) -> bool {
    let ok = |cells: &[u8]| {
        let mut seen = [false; 10];
        cells.iter().all(|&v| {
            if !(1..=9).contains(&v) || seen[v as usize] {
                false
            } else {
                seen[v as usize] = true;
                true
            }
        })
    };
    for r in 0..9 {
        if !ok(&g[r]) {
            return false;
        }
    }
    for c in 0..9 {
        let col: Vec<u8> = (0..9).map(|r| g[r][c]).collect();
        if !ok(&col) {
            return false;
        }
    }
    for br in 0..3 {
        for bc in 0..3 {
            let mut cells = Vec::new();
            for r in 0..3 {
                for c in 0..3 {
                    cells.push(g[br * 3 + r][bc * 3 + c]);
                }
            }
            if !ok(&cells) {
                return false;
            }
        }
    }
    true
}

/// Checks that `solution` extends `puzzle` (same non-blank cells).
pub fn extends(puzzle: &Grid, solution: &Grid) -> bool {
    (0..9).all(|r| (0..9).all(|c| puzzle[r][c] == 0 || puzzle[r][c] == solution[r][c]))
}

/// Generates a deterministic `(puzzle, solution)` pair for a seed.
pub fn generate(seed: u64, difficulty: Difficulty) -> (Grid, Grid) {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut g = base_solution();

    // Digit relabelling.
    let mut digits: Vec<u8> = (1..=9).collect();
    rng.shuffle(&mut digits);
    for row in g.iter_mut() {
        for cell in row.iter_mut() {
            *cell = digits[(*cell - 1) as usize];
        }
    }
    // Row swaps within bands, column swaps within stacks, band/stack swaps.
    for _ in 0..20 {
        let band = rng.gen_range(0..3) * 3;
        let (i, j) = (band + rng.gen_range(0..3), band + rng.gen_range(0..3));
        g.swap(i, j);
        let stack = rng.gen_range(0..3) * 3;
        let (i, j) = (stack + rng.gen_range(0..3), stack + rng.gen_range(0..3));
        for row in g.iter_mut() {
            row.swap(i, j);
        }
    }
    debug_assert!(is_valid_solution(&g));

    // Remove cells down to the clue target.
    let clues = match difficulty {
        Difficulty::Easy => 36,
        Difficulty::Hard => 26,
    };
    let mut order: Vec<usize> = (0..81).collect();
    rng.shuffle(&mut order);
    let mut puzzle = g;
    for &cell in order.iter().take(81 - clues) {
        puzzle[cell / 9][cell % 9] = 0;
    }
    (puzzle, g)
}

/// The benchmark set mirroring Table 3: 10 puzzles, 8 hard and 2 easy,
/// named after the zeit.de issues of the paper.
pub fn table3_suite() -> Vec<(String, Grid)> {
    let rows: [(&str, Difficulty, u64); 10] = [
        ("2006_05_23_hard", Difficulty::Hard, 23),
        ("2006_05_24_hard", Difficulty::Hard, 24),
        ("2006_05_25_hard", Difficulty::Hard, 25),
        ("2006_05_26_hard", Difficulty::Hard, 26),
        ("2006_05_27_hard", Difficulty::Hard, 27),
        ("2006_05_28_hard", Difficulty::Hard, 28),
        ("2006_05_29_easy", Difficulty::Easy, 29),
        ("2006_05_29_hard", Difficulty::Hard, 129),
        ("2006_05_30_easy", Difficulty::Easy, 30),
        ("2006_05_30_hard", Difficulty::Hard, 130),
    ];
    rows.iter()
        .map(|&(name, d, seed)| (name.to_string(), generate(seed, d).0))
        .collect()
}

fn var_name(r: usize, c: usize) -> String {
    format!("x_{r}{c}")
}

/// ABsolver's mixed Boolean/integer encoding.
pub fn encode_mixed(puzzle: &Grid) -> AbProblem {
    let mut b = AbProblem::builder();
    // Integer cell variables with range atoms.
    let cells: Vec<Vec<usize>> = (0..9)
        .map(|r| {
            (0..9)
                .map(|c| {
                    let v = b.arith_var(&var_name(r, c), VarKind::Int);
                    b.set_range(v, absolver_num::Interval::new(1.0, 9.0));
                    v
                })
                .collect()
        })
        .collect();

    // eq[r][c][d]: x_{rc} = d+1, channelling atoms.
    let eq: Vec<Vec<Vec<absolver_logic::Var>>> = (0..9)
        .map(|r| {
            (0..9)
                .map(|c| {
                    (0..9)
                        .map(|d| {
                            b.atom(
                                Expr::var(cells[r][c]),
                                CmpOp::Eq,
                                Rational::from_int(d as i64 + 1),
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // Exactly one digit per cell.
    for r in 0..9 {
        for c in 0..9 {
            b.add_clause((0..9).map(|d| eq[r][c][d].positive()));
            for d1 in 0..9 {
                for d2 in (d1 + 1)..9 {
                    b.add_clause([eq[r][c][d1].negative(), eq[r][c][d2].negative()]);
                }
            }
        }
    }
    // Each digit at most once per row / column / box.
    let groups = peer_groups();
    for group in &groups {
        for d in 0..9 {
            for i in 0..9 {
                for j in (i + 1)..9 {
                    let (r1, c1) = group[i];
                    let (r2, c2) = group[j];
                    b.add_clause([eq[r1][c1][d].negative(), eq[r2][c2][d].negative()]);
                }
            }
        }
    }
    // Clues.
    for r in 0..9 {
        for c in 0..9 {
            let v = puzzle[r][c];
            if v != 0 {
                b.require(eq[r][c][(v - 1) as usize].positive());
            }
        }
    }
    b.build()
}

/// The 27 peer groups (rows, columns, boxes) as cell coordinate lists.
fn peer_groups() -> Vec<Vec<(usize, usize)>> {
    let mut groups = Vec::with_capacity(27);
    for r in 0..9 {
        groups.push((0..9).map(|c| (r, c)).collect());
    }
    for c in 0..9 {
        groups.push((0..9).map(|r| (r, c)).collect());
    }
    for br in 0..3 {
        for bc in 0..3 {
            let mut g = Vec::with_capacity(9);
            for r in 0..3 {
                for c in 0..3 {
                    g.push((br * 3 + r, bc * 3 + c));
                }
            }
            groups.push(g);
        }
    }
    groups
}

/// The integer-free translation for the Boolean-linear baselines: pairwise
/// `< ∨ >` disjunctions plus redundant group sums.
pub fn encode_arith(puzzle: &Grid) -> AbProblem {
    let mut b = AbProblem::builder();
    let cells: Vec<Vec<usize>> = (0..9)
        .map(|r| {
            (0..9)
                .map(|c| b.arith_var(&var_name(r, c), VarKind::Int))
                .collect()
        })
        .collect();

    // Bounds 1 ≤ x ≤ 9.
    for r in 0..9 {
        for c in 0..9 {
            let lo = b.atom(Expr::var(cells[r][c]), CmpOp::Ge, Rational::one());
            b.require(lo.positive());
            let hi = b.atom(Expr::var(cells[r][c]), CmpOp::Le, Rational::from_int(9));
            b.require(hi.positive());
        }
    }
    // Pairwise disequalities within each group, as `< ∨ >` clauses.
    for group in &peer_groups() {
        for i in 0..9 {
            for j in (i + 1)..9 {
                let (r1, c1) = group[i];
                let (r2, c2) = group[j];
                let diff = Expr::var(cells[r1][c1]) - Expr::var(cells[r2][c2]);
                let lt = b.atom(diff.clone(), CmpOp::Lt, Rational::zero());
                let gt = b.atom(diff, CmpOp::Gt, Rational::zero());
                b.add_clause([lt.positive(), gt.positive()]);
            }
        }
        // Redundant strengthening the translator emits: Σ group = 45.
        let sum = group
            .iter()
            .fold(Expr::zero(), |acc, &(r, c)| acc + Expr::var(cells[r][c]));
        let eq45 = b.atom(sum.simplify(), CmpOp::Eq, Rational::from_int(45));
        b.require(eq45.positive());
    }
    // Clues.
    for r in 0..9 {
        for c in 0..9 {
            let v = puzzle[r][c];
            if v != 0 {
                let clue = b.atom(
                    Expr::var(cells[r][c]),
                    CmpOp::Eq,
                    Rational::from_int(v as i64),
                );
                b.require(clue.positive());
            }
        }
    }
    b.build()
}

/// Decodes a model of either encoding back into a grid.
pub fn decode(problem: &AbProblem, model: &AbModel) -> Option<Grid> {
    let mut g = [[0u8; 9]; 9];
    for r in 0..9 {
        for c in 0..9 {
            let v = problem.arith_var(&var_name(r, c))?;
            let value = model.arith.value_f64(v)?;
            let rounded = value.round();
            if (value - rounded).abs() > 1e-6 || !(1.0..=9.0).contains(&rounded) {
                return None;
            }
            g[r][c] = rounded as u8;
        }
    }
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_core::Orchestrator;

    #[test]
    fn base_and_generated_grids_are_valid() {
        assert!(is_valid_solution(&base_solution()));
        for seed in [1u64, 42, 2006] {
            for d in [Difficulty::Easy, Difficulty::Hard] {
                let (puzzle, solution) = generate(seed, d);
                assert!(is_valid_solution(&solution));
                assert!(extends(&puzzle, &solution));
                let clues = puzzle.iter().flatten().filter(|&&v| v != 0).count();
                match d {
                    Difficulty::Easy => assert_eq!(clues, 36),
                    Difficulty::Hard => assert_eq!(clues, 26),
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7, Difficulty::Hard), generate(7, Difficulty::Hard));
        assert_ne!(
            generate(7, Difficulty::Hard).0,
            generate(8, Difficulty::Hard).0
        );
    }

    #[test]
    fn suite_has_ten_named_puzzles() {
        let suite = table3_suite();
        assert_eq!(suite.len(), 10);
        assert_eq!(suite.iter().filter(|(n, _)| n.ends_with("easy")).count(), 2);
        // All puzzles distinct.
        for i in 0..suite.len() {
            for j in (i + 1)..suite.len() {
                assert_ne!(suite[i].1, suite[j].1, "{} vs {}", suite[i].0, suite[j].0);
            }
        }
    }

    #[test]
    fn mixed_encoding_solves_a_puzzle() {
        let (puzzle, _) = generate(99, Difficulty::Easy);
        let problem = encode_mixed(&puzzle);
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().expect("puzzle is solvable");
        let grid = decode(&problem, model).expect("integral model");
        assert!(is_valid_solution(&grid));
        assert!(extends(&puzzle, &grid));
    }

    #[test]
    fn arith_encoding_statistics() {
        let (puzzle, _) = generate(99, Difficulty::Hard);
        let p = encode_arith(&puzzle);
        // 810 peer pairs → 1620 order atoms, plus bounds, sums and clues.
        assert_eq!(p.num_nonlinear(), 0);
        assert!(p.num_defs() > 1700, "defs: {}", p.num_defs());
        assert!(p.cnf().len() > 900, "clauses: {}", p.cnf().len());
    }

    #[test]
    fn encodings_agree_on_a_tiny_completion() {
        // A nearly complete puzzle: only a handful of blanks, so even the
        // arithmetic encoding is tractable for the orchestrator.
        let (_, solution) = generate(5, Difficulty::Easy);
        let mut puzzle = solution;
        puzzle[0][0] = 0;
        puzzle[4][7] = 0;
        puzzle[8][3] = 0;
        let mixed = encode_mixed(&puzzle);
        let mut orc = Orchestrator::with_defaults();
        let m1 = orc.solve(&mixed).unwrap();
        let g1 = decode(&mixed, m1.model().unwrap()).unwrap();
        assert_eq!(g1, solution, "unique completion");
    }
}
