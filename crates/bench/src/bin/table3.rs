//! Regenerates the paper's **Table 3** (results: Sudoku puzzles).
//!
//! ABsolver receives the natural *mixed* Boolean/integer encoding ("the
//! encoding is more natural as it can make use of integers"); the
//! Boolean-linear baselines receive the integer-free translation the
//! conversion pipeline produces for them. The paper's shape: ABsolver
//! ~0.28 s per puzzle, CVC Lite aborts out-of-memory (`–*`), MathSAT needs
//! 75–137 **minutes**.
//!
//! `ABS_TIMEOUT_SECS` (default 60) bounds each baseline run — the lazy
//! baseline's blow-up is reported as a timeout rather than waiting hours.

use absolver_bench::harness::{
    env_seconds, print_table, run_absolver, run_cvc_like, run_mathsat_like,
};
use absolver_bench::sudoku::{
    decode, encode_arith, encode_mixed, extends, is_valid_solution, table3_suite,
};
use absolver_core::{Orchestrator, Outcome};

fn main() {
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 60);
    println!("Table 3: results on Sudoku puzzles (paper Sec. 5.3)\n");
    let mut rows = Vec::new();
    for (name, puzzle) in table3_suite() {
        eprintln!("running {name} ...");
        // ABsolver: mixed encoding, validated end-to-end.
        let mixed = encode_mixed(&puzzle);
        let abs = run_absolver(&mixed, Some(timeout));
        if abs.verdict == "sat" {
            // Re-solve once to extract and validate the grid (timing above
            // is untouched by the validation).
            let mut orc = Orchestrator::with_defaults();
            if let Ok(Outcome::Sat(model)) = orc.solve(&mixed) {
                let grid = decode(&mixed, &model).expect("integral grid");
                assert!(is_valid_solution(&grid), "{name}: invalid grid");
                assert!(extends(&puzzle, &grid), "{name}: clues violated");
            }
        }
        // Baselines: the integer-free translation.
        let arith = encode_arith(&puzzle);
        let cvc = run_cvc_like(&arith, Some(timeout));
        let msat = run_mathsat_like(&arith, Some(timeout));
        rows.push(vec![
            name,
            format!("{} [{}]", abs.cell(), abs.verdict),
            cvc.cell(),
            msat.cell(),
        ]);
    }
    print_table(
        &["Benchmark", "ABSOLVER", "CVC-like", "MathSAT-like"],
        &rows,
    );
    println!("\npaper reference: ABSOLVER ≈ 0m0.28s per puzzle; CVC Lite –* (out of");
    println!("memory) on all ten; MathSAT 75–137 minutes. A timeout here stands in");
    println!("for the paper's hour-plus MathSAT columns.");
}
