//! Regenerates the paper's **Table 2** (results: SMT-LIB FISCHER
//! benchmarks).
//!
//! The FISCHER family is Boolean + linear, i.e. the home turf of the
//! tightly-integrated baselines; the paper's point is that ABsolver stays
//! *competitive* but is slower because "ABsolver basically uses two
//! separate entities for solving" while "the internals of MathSAT as well
//! as CVC Lite allow a more efficient communication between the
//! respective solvers".
//!
//! `ABS_FISCHER_MAX` (default 11) selects the largest process count;
//! `ABS_TIMEOUT_SECS` (default 120) bounds each run.

use absolver_bench::fischer::fischer;
use absolver_bench::harness::{
    env_seconds, print_table, run_absolver, run_cvc_like, run_mathsat_like,
};

fn main() {
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 120);
    let max_n: usize = std::env::var("ABS_FISCHER_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    println!("Table 2: results on FISCHER benchmarks (paper Sec. 5.2)\n");
    let mut rows = Vec::new();
    for n in 1..=max_n {
        eprintln!("running FISCHER{n} ...");
        let problem = fischer(n);
        let abs = run_absolver(&problem, Some(timeout));
        let msat = run_mathsat_like(&problem, Some(timeout));
        let cvc = run_cvc_like(&problem, Some(timeout));
        rows.push(vec![
            format!("FISCHER{n}-1-fair"),
            format!("{} [{}]", abs.cell(), abs.verdict),
            msat.cell(),
            cvc.cell(),
        ]);
    }
    print_table(
        &["Benchmark", "ABSOLVER", "MathSAT-like", "CVC-like"],
        &rows,
    );
    println!("\npaper reference (n = 1 → 11): ABSOLVER 0m0.556s → 0m28.179s,");
    println!("MathSAT 0m0.045s → 0m2.129s, CVC Lite 0m0.020s → 0m0.073s —");
    println!("the tight integrations win on simple Boolean-linear problems.");
}
