//! Component-decomposition experiment: solves a deliberately
//! decomposable workload (independent threshold instances over disjoint
//! variables, [`absolver_bench::workloads::decomposable_problem`]) three
//! ways and reports the wall-clock of each:
//!
//! * **whole** — the plain sequential control loop on the monolithic
//!   problem (no preprocessing, no partitioning);
//! * **partitioned** — the sequential component loop behind
//!   `--preprocess` (one sub-solve per connected component, models
//!   stitched back);
//! * **parallel** — `solve_parallel` with one shard per component.
//!
//! ```text
//! cargo run --release -p absolver-bench --bin components
//! ```
//!
//! `ABS_COMPONENTS_INSTANCES` (default 4) and `ABS_COMPONENTS_SIZE`
//! (default 40 variables per instance) shape the workload;
//! `ABS_TIMEOUT_SECS` (default 120) bounds each run; `ABS_BENCH_DIR`
//! (default `.`) is where `BENCH_components.json` is written. The
//! binary exits 1 if any of the three runs disagrees on the verdict —
//! partitioning must never change an answer.

use absolver_analyze::Simplifier;
use absolver_bench::harness::{env_seconds, format_duration, print_table};
use absolver_bench::workloads::decomposable_problem;
use absolver_core::{
    AbProblem, Orchestrator, OrchestratorOptions, Outcome, ParallelOptions, ParallelStrategy,
    Partition, SolveError,
};
use absolver_trace::{saturating_micros, JsonObject};
use std::path::PathBuf;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
}

fn verdict(outcome: &Result<Outcome, SolveError>, problem: &AbProblem) -> String {
    match outcome {
        Ok(Outcome::Sat(model)) => {
            assert!(
                model.satisfies(problem, 1e-6),
                "a Sat witness must validate against the whole problem"
            );
            "sat".to_string()
        }
        Ok(Outcome::Unsat) => "unsat".to_string(),
        Ok(Outcome::Unknown) => "unknown".to_string(),
        Err(e) => format!("error: {e}"),
    }
}

fn main() {
    let instances = env_usize("ABS_COMPONENTS_INSTANCES", 4);
    let size = env_usize("ABS_COMPONENTS_SIZE", 40);
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 120);
    let out_dir = PathBuf::from(std::env::var("ABS_BENCH_DIR").unwrap_or_else(|_| ".".into()));
    let options = OrchestratorOptions {
        time_limit: Some(timeout),
        ..Default::default()
    };

    let problem = decomposable_problem(instances, size);
    let partition = Partition::of(&problem);
    eprintln!(
        "decomposable workload: {instances} instances x {size} vars, \
         {} components",
        partition.len()
    );
    assert_eq!(partition.len(), instances, "workload must decompose");

    // Whole problem, no partitioning.
    let mut whole = Orchestrator::with_defaults().with_options(options.clone());
    let whole_outcome = whole.solve(&problem);
    let whole_verdict = verdict(&whole_outcome, &problem);
    let whole_elapsed = whole.stats().elapsed;

    // Sequential component loop (the `--preprocess` path).
    let mut seq = Orchestrator::with_defaults()
        .with_options(options.clone())
        .with_preprocessor(Box::new(Simplifier::new()));
    let seq_outcome = seq.solve(&problem);
    let seq_verdict = verdict(&seq_outcome, &problem);
    let seq_stats = seq.stats();

    // One shard per component.
    let popts = ParallelOptions {
        jobs: instances.max(2),
        strategy: ParallelStrategy::Portfolio,
        deterministic: true,
        ..Default::default()
    };
    let mut par = Orchestrator::with_defaults().with_options(options);
    let (par_outcome, par_stats) = match par.solve_parallel(&problem, &popts) {
        Ok((outcome, stats)) => (Ok(outcome), stats),
        Err(e) => (Err(e), Default::default()),
    };
    let par_verdict = verdict(&par_outcome, &problem);
    let par_elapsed = par_stats.elapsed;

    print_table(
        &["mode", "verdict", "time", "components"],
        &[
            vec![
                "whole".into(),
                whole_verdict.clone(),
                format_duration(whole_elapsed),
                "1".into(),
            ],
            vec![
                "partitioned".into(),
                seq_verdict.clone(),
                format_duration(seq_stats.elapsed),
                seq_stats.components.to_string(),
            ],
            vec![
                "parallel".into(),
                par_verdict.clone(),
                format_duration(par_elapsed),
                par_stats.components.to_string(),
            ],
        ],
    );

    let mut obj = JsonObject::new();
    obj.field_str("workload", "components")
        .field_u64("instances", instances as u64)
        .field_u64("vars_per_instance", size as u64)
        .field_u64("components", partition.len() as u64)
        .field_u64("subsumed_constraints", seq_stats.subsumed_constraints)
        .field_str("whole_verdict", &whole_verdict)
        .field_u64("whole_elapsed_us", saturating_micros(whole_elapsed))
        .field_str("partitioned_verdict", &seq_verdict)
        .field_u64(
            "partitioned_elapsed_us",
            saturating_micros(seq_stats.elapsed),
        )
        .field_str("parallel_verdict", &par_verdict)
        .field_u64("parallel_elapsed_us", saturating_micros(par_elapsed))
        .field_u64("parallel_jobs", popts.jobs as u64);
    let report = obj.finish();
    let path = out_dir.join("BENCH_components.json");
    if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());

    if whole_verdict != seq_verdict || whole_verdict != par_verdict {
        eprintln!(
            "VERDICT DISAGREEMENT: whole={whole_verdict} partitioned={seq_verdict} \
             parallel={par_verdict}"
        );
        std::process::exit(1);
    }
}
