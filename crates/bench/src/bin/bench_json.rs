//! Emits the machine-readable `BENCH_<workload>.json` observability
//! reports: one file per workload, each a single JSON object with the
//! verdict, structural statistics, and the full per-phase solver stats
//! (see `OrchestratorStats::to_json`).
//!
//! ```text
//! cargo run --release -p absolver-bench --bin bench_json [workload ...]
//! ```
//!
//! Without arguments every workload of
//! [`absolver_bench::workloads::bench_suite`] runs (steering,
//! threshold-reach, sudoku, fischer); with arguments only the named
//! subset. `ABS_TIMEOUT_SECS` (default 120) bounds each run;
//! `ABS_BENCH_DIR` (default `.`) selects the output directory.
//!
//! With `--check-regress` each fresh run is additionally compared
//! against the checked-in baseline `BENCH_<workload>.json` in
//! `ABS_BENCH_BASELINE_DIR` (default `.`). The run fails (exit 1) if
//! any workload is more than 25% slower than its baseline; an absolute
//! grace of 100ms absorbs scheduler noise on sub-millisecond runs.

use absolver_bench::harness::{env_seconds, format_duration, run_absolver_report};
use absolver_bench::workloads::bench_suite;
use std::path::PathBuf;

/// Pulls `"elapsed_us":<n>` out of a baseline report without a JSON
/// parser (the workspace is dependency-free).
fn baseline_elapsed_us(report: &str) -> Option<u64> {
    let key = "\"elapsed_us\":";
    let at = report.rfind(key)? + key.len();
    let digits: String = report[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Tolerated slowdown: 25% relative, plus 100ms absolute grace so
/// micro-benchmarks (fischer, sudoku) don't flake on timer noise.
fn regression_limit_us(baseline_us: u64) -> u64 {
    baseline_us + baseline_us / 4 + 100_000
}

fn main() {
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 120);
    let out_dir = PathBuf::from(std::env::var("ABS_BENCH_DIR").unwrap_or_else(|_| ".".into()));
    let baseline_dir =
        PathBuf::from(std::env::var("ABS_BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".into()));
    let mut check_regress = false;
    let selected: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--check-regress" {
                check_regress = true;
                false
            } else {
                true
            }
        })
        .collect();

    let suite = bench_suite();
    if let Some(unknown) = selected
        .iter()
        .find(|name| !suite.iter().any(|(key, _)| key == name))
    {
        let known: Vec<&str> = suite.iter().map(|(key, _)| *key).collect();
        eprintln!("unknown workload `{unknown}` (known: {})", known.join(", "));
        std::process::exit(2);
    }

    let mut failed = false;
    for (key, problem) in suite {
        if !selected.is_empty() && !selected.iter().any(|name| name == key) {
            continue;
        }
        eprintln!("running {key} ...");
        let (m, report) = run_absolver_report(key, &problem, Some(timeout));
        let path = out_dir.join(format!("BENCH_{key}.json"));
        if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            failed = true;
            continue;
        }
        eprintln!(
            "  {} [{}] -> {}",
            format_duration(m.elapsed),
            m.verdict,
            path.display()
        );
        if check_regress {
            let base_path = baseline_dir.join(format!("BENCH_{key}.json"));
            match std::fs::read_to_string(&base_path)
                .ok()
                .as_deref()
                .and_then(baseline_elapsed_us)
            {
                Some(base_us) => {
                    let fresh_us = m.elapsed.as_micros() as u64;
                    let limit_us = regression_limit_us(base_us);
                    if fresh_us > limit_us {
                        eprintln!(
                            "  REGRESSION: {key} took {fresh_us}us, baseline {base_us}us \
                             (limit {limit_us}us)"
                        );
                        failed = true;
                    } else {
                        eprintln!("  ok vs baseline: {fresh_us}us <= {limit_us}us ({base_us}us)");
                    }
                }
                None => {
                    eprintln!("  no usable baseline at {}", base_path.display());
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_extraction_takes_the_outermost_stats_value() {
        let report = r#"{"workload":"x","stats":{"phase":{"boolean_us":3},"elapsed_us":4211}}"#;
        assert_eq!(baseline_elapsed_us(report), Some(4211));
        assert_eq!(baseline_elapsed_us("{}"), None);
    }

    #[test]
    fn regression_limit_adds_relative_and_absolute_grace() {
        // 1s baseline: 25% + 100ms grace.
        assert_eq!(regression_limit_us(1_000_000), 1_350_000);
        // Micro-run: the absolute grace dominates.
        assert_eq!(regression_limit_us(800), 101_000);
    }
}
