//! Emits the machine-readable `BENCH_<workload>.json` observability
//! reports: one file per workload, each a single JSON object with the
//! verdict, structural statistics, and the full per-phase solver stats
//! (see `OrchestratorStats::to_json`).
//!
//! ```text
//! cargo run --release -p absolver-bench --bin bench_json [workload ...]
//! ```
//!
//! Without arguments every workload of
//! [`absolver_bench::workloads::bench_suite`] runs (steering,
//! threshold-reach, sudoku, fischer); with arguments only the named
//! subset. `ABS_TIMEOUT_SECS` (default 120) bounds each run;
//! `ABS_BENCH_DIR` (default `.`) selects the output directory.
//!
//! With `--check-regress` each fresh run is additionally compared
//! against the checked-in baseline `BENCH_<workload>.json` in
//! `ABS_BENCH_BASELINE_DIR` (default `.`). The run fails (exit 1) if
//! any workload is more than 15% slower than its baseline or flips its
//! verdict; an absolute grace of 50ms absorbs scheduler noise on
//! sub-millisecond runs. The steering workload must additionally show a
//! nonzero contraction-cache hit rate — it is the instance the cache
//! exists for, so a zero reads as "the cache is wired but dead".

use absolver_bench::harness::{env_seconds, format_duration, run_absolver_report};
use absolver_bench::workloads::bench_suite;
use absolver_trace::saturating_micros;
use std::path::PathBuf;

/// Pulls `"elapsed_us":<n>` out of a baseline report without a JSON
/// parser (the workspace is dependency-free).
fn baseline_elapsed_us(report: &str) -> Option<u64> {
    let key = "\"elapsed_us\":";
    let at = report.rfind(key)? + key.len();
    let digits: String = report[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pulls the top-level `"verdict":"<s>"` out of a report.
fn report_verdict(report: &str) -> Option<&str> {
    let key = "\"verdict\":\"";
    let at = report.find(key)? + key.len();
    report[at..].split('"').next()
}

/// Pulls the `"contraction_cache_hit_rate":<f>` field out of a report.
fn report_cache_hit_rate(report: &str) -> Option<f64> {
    let key = "\"contraction_cache_hit_rate\":";
    let at = report.find(key)? + key.len();
    let num: String = report[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// Tolerated slowdown: 15% relative, plus 50ms absolute grace so
/// micro-benchmarks (fischer, sudoku) don't flake on timer noise.
fn regression_limit_us(baseline_us: u64) -> u64 {
    baseline_us + baseline_us * 3 / 20 + 50_000
}

fn main() {
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 120);
    let out_dir = PathBuf::from(std::env::var("ABS_BENCH_DIR").unwrap_or_else(|_| ".".into()));
    let baseline_dir =
        PathBuf::from(std::env::var("ABS_BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".into()));
    let mut check_regress = false;
    let selected: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--check-regress" {
                check_regress = true;
                false
            } else {
                true
            }
        })
        .collect();

    let suite = bench_suite();
    if let Some(unknown) = selected
        .iter()
        .find(|name| !suite.iter().any(|(key, _)| key == name))
    {
        let known: Vec<&str> = suite.iter().map(|(key, _)| *key).collect();
        eprintln!("unknown workload `{unknown}` (known: {})", known.join(", "));
        std::process::exit(2);
    }

    let mut failed = false;
    for (key, problem) in suite {
        if !selected.is_empty() && !selected.iter().any(|name| name == key) {
            continue;
        }
        eprintln!("running {key} ...");
        let (m, report) = run_absolver_report(key, &problem, Some(timeout));
        let path = out_dir.join(format!("BENCH_{key}.json"));
        if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            failed = true;
            continue;
        }
        eprintln!(
            "  {} [{}] -> {}",
            format_duration(m.elapsed),
            m.verdict,
            path.display()
        );
        if check_regress {
            let base_path = baseline_dir.join(format!("BENCH_{key}.json"));
            let baseline = std::fs::read_to_string(&base_path).ok();
            match baseline.as_deref().and_then(baseline_elapsed_us) {
                Some(base_us) => {
                    let fresh_us = saturating_micros(m.elapsed);
                    let limit_us = regression_limit_us(base_us);
                    if fresh_us > limit_us {
                        eprintln!(
                            "  REGRESSION: {key} took {fresh_us}us, baseline {base_us}us \
                             (limit {limit_us}us)"
                        );
                        failed = true;
                    } else {
                        eprintln!("  ok vs baseline: {fresh_us}us <= {limit_us}us ({base_us}us)");
                    }
                }
                None => {
                    eprintln!("  no usable baseline at {}", base_path.display());
                    failed = true;
                }
            }
            if let Some(base_verdict) = baseline.as_deref().and_then(report_verdict) {
                if base_verdict != m.verdict {
                    eprintln!(
                        "  VERDICT FLIP: {key} is now `{}`, baseline says `{base_verdict}`",
                        m.verdict
                    );
                    failed = true;
                }
            }
            if key == "steering" {
                match report_cache_hit_rate(&report) {
                    Some(rate) if rate > 0.0 => {
                        eprintln!("  contraction cache alive: hit rate {rate:.3}");
                    }
                    other => {
                        eprintln!(
                            "  DEAD CACHE: steering contraction-cache hit rate is {other:?}, \
                             expected > 0"
                        );
                        failed = true;
                    }
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_extraction_takes_the_outermost_stats_value() {
        let report = r#"{"workload":"x","stats":{"phase":{"boolean_us":3},"elapsed_us":4211}}"#;
        assert_eq!(baseline_elapsed_us(report), Some(4211));
        assert_eq!(baseline_elapsed_us("{}"), None);
    }

    #[test]
    fn regression_limit_adds_relative_and_absolute_grace() {
        // 1s baseline: 15% + 50ms grace.
        assert_eq!(regression_limit_us(1_000_000), 1_200_000);
        // Micro-run: the absolute grace dominates.
        assert_eq!(regression_limit_us(800), 50_920);
    }

    #[test]
    fn report_field_extraction() {
        let report = r#"{"workload":"steering","verdict":"sat","pivots_per_check":1.5,"contraction_cache_hit_rate":0.42,"stats":{"elapsed_us":99}}"#;
        assert_eq!(report_verdict(report), Some("sat"));
        assert_eq!(report_cache_hit_rate(report), Some(0.42));
        assert_eq!(report_verdict("{}"), None);
        assert_eq!(report_cache_hit_rate("{}"), None);
    }
}
