//! Emits the machine-readable `BENCH_<workload>.json` observability
//! reports: one file per workload, each a single JSON object with the
//! verdict, structural statistics, and the full per-phase solver stats
//! (see `OrchestratorStats::to_json`).
//!
//! ```text
//! cargo run --release -p absolver-bench --bin bench_json [workload ...]
//! ```
//!
//! Without arguments every workload of
//! [`absolver_bench::workloads::bench_suite`] runs (steering,
//! threshold-reach, sudoku, fischer); with arguments only the named
//! subset. `ABS_TIMEOUT_SECS` (default 120) bounds each run;
//! `ABS_BENCH_DIR` (default `.`) selects the output directory.

use absolver_bench::harness::{env_seconds, format_duration, run_absolver_report};
use absolver_bench::workloads::bench_suite;
use std::path::PathBuf;

fn main() {
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 120);
    let out_dir = PathBuf::from(std::env::var("ABS_BENCH_DIR").unwrap_or_else(|_| ".".into()));
    let selected: Vec<String> = std::env::args().skip(1).collect();

    let suite = bench_suite();
    if let Some(unknown) = selected
        .iter()
        .find(|name| !suite.iter().any(|(key, _)| key == name))
    {
        let known: Vec<&str> = suite.iter().map(|(key, _)| *key).collect();
        eprintln!("unknown workload `{unknown}` (known: {})", known.join(", "));
        std::process::exit(2);
    }

    let mut failed = false;
    for (key, problem) in suite {
        if !selected.is_empty() && !selected.iter().any(|name| name == key) {
            continue;
        }
        eprintln!("running {key} ...");
        let (m, report) = run_absolver_report(key, &problem, Some(timeout));
        let path = out_dir.join(format!("BENCH_{key}.json"));
        if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            failed = true;
            continue;
        }
        eprintln!("  {} [{}] -> {}", format_duration(m.elapsed), m.verdict, path.display());
    }
    if failed {
        std::process::exit(1);
    }
}
