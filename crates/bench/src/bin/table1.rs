//! Regenerates the paper's **Table 1** (results: nonlinear problems).
//!
//! Columns: benchmark, #clauses, #constraint-bearing variables, #linear,
//! #nonlinear, ABsolver time — plus what the Boolean-linear baselines do
//! with the same input (the paper: "both CVC Lite and MathSAT rejected the
//! problems due to the nonlinear arithmetic inequalities contained").
//!
//! `ABS_TIMEOUT_SECS` (default 120) bounds each solver run.

use absolver_bench::harness::{print_table, run_absolver_report, run_cvc_like, run_mathsat_like};
use absolver_bench::table1::table1_suite;

fn main() {
    let timeout = absolver_bench::harness::env_seconds("ABS_TIMEOUT_SECS", 120);
    println!("Table 1: results on nonlinear problems (paper Sec. 5.1)\n");
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for (name, problem) in table1_suite() {
        eprintln!("running {name} ...");
        let (abs, report) = run_absolver_report(&name, &problem, Some(timeout));
        reports.push(report);
        let msat = run_mathsat_like(&problem, Some(timeout));
        let cvc = run_cvc_like(&problem, Some(timeout));
        rows.push(vec![
            name,
            problem.cnf().len().to_string(),
            problem.num_defs().to_string(),
            problem.num_linear().to_string(),
            problem.num_nonlinear().to_string(),
            format!("{} [{}]", abs.cell(), abs.verdict),
            msat.cell(),
            cvc.cell(),
        ]);
    }
    print_table(
        &[
            "Benchmark",
            "#Cl.",
            "#Var.",
            "#linear",
            "#nonlin.",
            "ABSOLVER",
            "MathSAT-like",
            "CVC-like",
        ],
        &rows,
    );
    println!("\npaper reference: Car steering 0m58.344s; esat_n11_m8 0m0.469s;");
    println!("nonlinear_unsat 0m0.260s; div_operator 0m0.233s; baselines reject all.");
    // Machine-readable per-row reports (one JSON object per line).
    for report in &reports {
        println!("{report}");
    }
}
