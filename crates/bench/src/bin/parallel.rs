//! Sequential-vs-parallel speedup benchmark for `solve_parallel`.
//!
//! Compares the sequential control loop against the portfolio and
//! cube-and-conquer strategies at several job counts on three workloads:
//!
//! * **sudoku hard** — the paper's Table 3 mixed encoding of a 26-clue
//!   puzzle;
//! * **steering** — the paper's Sec. 5.1 hybrid-systems case study;
//! * **threshold** — a reach-style workload built for parallel search:
//!   `m` ternary integers must sum past a 55 % threshold, so the default
//!   all-false decision phases crawl toward the feasible region one
//!   theory conflict at a time, while a diversified shard's scrambled
//!   phases start near it. Speedup here is *work* reduction — it shows up
//!   even on a single hardware thread.
//!
//! `ABS_TIMEOUT_SECS` (default 60) bounds every run.

use absolver_bench::harness::{env_seconds, format_duration, print_table, run_absolver};
use absolver_bench::sudoku::{encode_mixed, generate, Difficulty};
use absolver_bench::workloads::threshold_problem;
use absolver_core::{
    AbProblem, Orchestrator, OrchestratorOptions, Outcome, ParallelOptions, ParallelStrategy,
};
use absolver_model::steering_problem;
use std::time::Duration;

fn run_parallel(
    problem: &AbProblem,
    strategy: ParallelStrategy,
    jobs: usize,
    time_limit: Duration,
) -> (String, Duration) {
    let opts = ParallelOptions {
        jobs,
        strategy,
        deterministic: true,
        base: OrchestratorOptions {
            time_limit: Some(time_limit),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut orc = Orchestrator::with_defaults();
    match orc.solve_parallel(problem, &opts) {
        Ok((outcome, stats)) => {
            let verdict = match outcome {
                Outcome::Sat(model) => {
                    debug_assert!(model.satisfies(problem, 1e-5), "model must validate");
                    "sat"
                }
                Outcome::Unsat => "unsat",
                Outcome::Unknown if stats.timed_out => "timeout",
                Outcome::Unknown => "unknown",
            };
            (verdict.to_string(), stats.elapsed)
        }
        Err(e) => (format!("error: {e}"), Duration::ZERO),
    }
}

fn speedup(seq: Duration, par: Duration) -> String {
    if par.is_zero() {
        return "-".to_string();
    }
    format!("{:.2}x", seq.as_secs_f64() / par.as_secs_f64())
}

fn main() {
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 60);
    println!("Parallel solving: sequential vs portfolio vs cube-and-conquer\n");

    let workloads: Vec<(String, AbProblem)> = vec![
        (
            "sudoku hard (mixed)".to_string(),
            encode_mixed(&generate(3, Difficulty::Hard).0),
        ),
        ("steering".to_string(), steering_problem()),
        ("threshold m=120".to_string(), threshold_problem(120)),
        ("threshold m=160".to_string(), threshold_problem(160)),
    ];

    let mut rows = Vec::new();
    for (name, problem) in &workloads {
        eprintln!("running {name} ...");
        let seq = run_absolver(problem, Some(timeout));
        let mut row = vec![name.clone(), format!("{} [{}]", seq.cell(), seq.verdict)];
        let mut best = 0.0f64;
        for (strategy, jobs) in [
            (ParallelStrategy::Portfolio, 2),
            (ParallelStrategy::Portfolio, 4),
            (ParallelStrategy::Cubes, 2),
            (ParallelStrategy::Cubes, 4),
        ] {
            let (verdict, elapsed) = run_parallel(problem, strategy, jobs, timeout);
            // Timeouts are reported, not asserted away — on one hardware
            // thread a losing strategy can legitimately exceed the budget.
            // What must never happen is a Sat/Unsat contradiction.
            if matches!(verdict.as_str(), "sat" | "unsat")
                && matches!(seq.verdict.as_str(), "sat" | "unsat")
            {
                assert_eq!(
                    verdict, seq.verdict,
                    "{name}: {strategy} x{jobs} contradicts sequential"
                );
            }
            // A ratio only means something when both sides finished: a
            // timed-out sequential baseline gives a lower bound at best.
            let comparable = matches!(verdict.as_str(), "sat" | "unsat")
                && matches!(seq.verdict.as_str(), "sat" | "unsat");
            if comparable && !elapsed.is_zero() {
                best = best.max(seq.elapsed.as_secs_f64() / elapsed.as_secs_f64());
            }
            let ratio = if comparable {
                speedup(seq.elapsed, elapsed)
            } else {
                "-".to_string()
            };
            row.push(format!("{} ({ratio})", format_duration(elapsed)));
        }
        row.push(if best > 0.0 {
            format!("{best:.2}x")
        } else {
            "-".to_string()
        });
        rows.push(row);
    }
    print_table(
        &[
            "Workload",
            "sequential",
            "portfolio x2",
            "portfolio x4",
            "cubes x2",
            "cubes x4",
            "best",
        ],
        &rows,
    );
    println!("\nSpeedups on a single hardware thread come from work reduction");
    println!("(diversified decision phases and cube pruning), not core count;");
    println!("on multi-core hosts the same shards additionally run concurrently.");
}
