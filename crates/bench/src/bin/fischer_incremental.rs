//! Streaming Fischer BMC harness: deepens the FISCHER family n = 1..11
//! inside ONE persistent solve session and races it against the
//! from-scratch Table 2 loop, emitting `BENCH_fischer_incremental.json`.
//!
//! ```text
//! cargo run --release -p absolver-bench --bin fischer_incremental [--check-regress]
//! ```
//!
//! At each depth the session run performs the same three checks the
//! from-scratch loop does — the reachability query, an idempotent
//! re-check (the verdict-cache showcase), and a `push`/mutex/`check`/`pop`
//! excursion (n ≥ 2) — but keeps its Boolean state, simplex assertion
//! stack, lemmas, and theory-verdict cache across all of them. The
//! from-scratch comparator solves byte-identical cloned problems with a
//! fresh orchestrator per check.
//!
//! `ABS_BENCH_DIR` (default `.`) selects the output directory. With
//! `--check-regress` the run fails (exit 1) unless: the fresh session
//! time is within the regression limit of the checked-in baseline in
//! `ABS_BENCH_BASELINE_DIR` (default `.`), the session beats the
//! from-scratch loop outright, the theory-verdict cache scored at least
//! one hit, and every verdict matches the protocol (reach SAT, mutex
//! UNSAT at every depth, both modes).

use absolver_bench::fischer::FischerStream;
use absolver_core::{AbProblem, Orchestrator, Outcome};
use absolver_trace::{saturating_micros, JsonObject};
use std::path::PathBuf;
use std::time::Instant;

const N_MAX: usize = 11;

/// Pulls a `"<key>":<integer>` field out of a report without a JSON
/// parser (the workspace is dependency-free).
fn report_u64(report: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = report.find(&needle)? + needle.len();
    let digits: String = report[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Tolerated slowdown vs the checked-in baseline: 15% relative plus a
/// 50ms absolute grace for timer noise (same policy as `bench_json`).
fn regression_limit_us(baseline_us: u64) -> u64 {
    baseline_us + baseline_us * 3 / 20 + 50_000
}

fn verdict_name(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Sat(_) => "sat",
        Outcome::Unsat => "unsat",
        Outcome::Unknown => "unknown",
    }
}

/// One from-scratch solve on a fresh orchestrator, returning the verdict.
fn scratch_check(problem: &AbProblem) -> Outcome {
    Orchestrator::with_defaults()
        .solve(problem)
        .unwrap_or_else(|e| panic!("from-scratch solve failed: {e}"))
}

fn main() {
    let out_dir = PathBuf::from(std::env::var("ABS_BENCH_DIR").unwrap_or_else(|_| ".".into()));
    let baseline_dir =
        PathBuf::from(std::env::var("ABS_BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".into()));
    let check_regress = std::env::args().any(|a| a == "--check-regress");
    let mut failed = false;

    // ---- streaming session run -------------------------------------
    eprintln!("streaming session: deepening fischer 1..={N_MAX} ...");
    let mut stream = FischerStream::new(N_MAX);
    // Byte-identical copies of every problem the session decides, in
    // check order, so the comparator replays the exact same work.
    let mut scratch_problems: Vec<(AbProblem, &'static str)> = Vec::new();
    let session_started = Instant::now();
    let mut final_verdict = "unknown";
    for n in 1..=N_MAX {
        stream.add_process();
        scratch_problems.push((stream.session().problem().clone(), "sat"));
        let reach = stream
            .session_mut()
            .check()
            .unwrap_or_else(|e| panic!("n={n}: session check failed: {e}"));
        if !reach.is_sat() {
            eprintln!("  BAD VERDICT: n={n} reach is {}", verdict_name(&reach));
            failed = true;
        }
        // Idempotent re-check: same frame, same projection — the theory
        // verdict cache should answer it.
        scratch_problems.push((stream.session().problem().clone(), "sat"));
        let again = stream.session_mut().check().unwrap();
        if !again.is_sat() {
            eprintln!("  BAD VERDICT: n={n} re-check is {}", verdict_name(&again));
            failed = true;
        }
        final_verdict = verdict_name(&again);
        if n >= 2 {
            stream.session_mut().push();
            stream.assert_mutex_entry();
            scratch_problems.push((stream.session().problem().clone(), "unsat"));
            let mutex = stream.session_mut().check().unwrap();
            if !mutex.is_unsat() {
                eprintln!("  BAD VERDICT: n={n} mutex is {}", verdict_name(&mutex));
                failed = true;
            }
            stream.session_mut().pop().expect("matching push");
        }
    }
    let session_elapsed = session_started.elapsed();
    let cumulative = stream.session().cumulative_stats();
    eprintln!(
        "  session: {} checks in {}us, {} cache hits, {} lemmas retained",
        stream.session().checks(),
        session_elapsed.as_micros(),
        cumulative.theory_cache_hits,
        stream.session().lemmas_retained(),
    );

    // ---- from-scratch comparator ------------------------------------
    eprintln!(
        "from-scratch loop: {} fresh solves ...",
        scratch_problems.len()
    );
    let scratch_started = Instant::now();
    for (i, (problem, expected)) in scratch_problems.iter().enumerate() {
        let outcome = scratch_check(problem);
        if verdict_name(&outcome) != *expected {
            eprintln!(
                "  BAD VERDICT: scratch check {i} is {}, expected {expected}",
                verdict_name(&outcome)
            );
            failed = true;
        }
    }
    let scratch_elapsed = scratch_started.elapsed();
    eprintln!("  from-scratch: {}us", scratch_elapsed.as_micros());

    // ---- report ------------------------------------------------------
    let session_us = saturating_micros(session_elapsed);
    let scratch_us = saturating_micros(scratch_elapsed);
    let cache_lookups = cumulative.theory_cache_hits + cumulative.theory_cache_misses;
    let hit_rate = if cache_lookups == 0 {
        0.0
    } else {
        cumulative.theory_cache_hits as f64 / cache_lookups as f64
    };
    let speedup = if session_us == 0 {
        0.0
    } else {
        scratch_us as f64 / session_us as f64
    };
    let mut obj = JsonObject::new();
    obj.field_str("workload", "fischer_incremental")
        .field_str("verdict", final_verdict)
        .field_u64("depths", N_MAX as u64)
        .field_u64("session_checks", stream.session().checks())
        .field_u64("session_elapsed_us", session_us)
        .field_u64("scratch_elapsed_us", scratch_us)
        .field_f64("speedup", speedup)
        .field_u64("theory_cache_hits", cumulative.theory_cache_hits)
        .field_f64("theory_cache_hit_rate", hit_rate)
        .field_u64("lemmas_retained", stream.session().lemmas_retained() as u64)
        .field_raw("stats", &cumulative.to_json());
    let report = obj.finish();
    let path = out_dir.join("BENCH_fischer_incremental.json");
    if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
        eprintln!("cannot write {}: {e}", path.display());
        failed = true;
    } else {
        eprintln!(
            "  {:.2}x over from-scratch, cache hit rate {hit_rate:.3} -> {}",
            speedup,
            path.display()
        );
    }

    // ---- gates -------------------------------------------------------
    if check_regress {
        let base_path = baseline_dir.join("BENCH_fischer_incremental.json");
        match std::fs::read_to_string(&base_path)
            .ok()
            .as_deref()
            .and_then(|r| report_u64(r, "session_elapsed_us"))
        {
            Some(base_us) => {
                let limit_us = regression_limit_us(base_us);
                if session_us > limit_us {
                    eprintln!(
                        "  REGRESSION: session took {session_us}us, baseline {base_us}us \
                         (limit {limit_us}us)"
                    );
                    failed = true;
                } else {
                    eprintln!("  ok vs baseline: {session_us}us <= {limit_us}us ({base_us}us)");
                }
            }
            None => {
                eprintln!("  no usable baseline at {}", base_path.display());
                failed = true;
            }
        }
        if session_us >= scratch_us {
            eprintln!(
                "  NO PAYOFF: session ({session_us}us) does not beat from-scratch \
                 ({scratch_us}us)"
            );
            failed = true;
        }
        if cumulative.theory_cache_hits == 0 {
            eprintln!("  DEAD CACHE: the session scored zero theory-verdict cache hits");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_extraction_finds_the_named_field() {
        let report = r#"{"workload":"x","session_elapsed_us":4211,"scratch_elapsed_us":9000}"#;
        assert_eq!(report_u64(report, "session_elapsed_us"), Some(4211));
        assert_eq!(report_u64(report, "scratch_elapsed_us"), Some(9000));
        assert_eq!(report_u64(report, "missing"), None);
        assert_eq!(report_u64("{}", "session_elapsed_us"), None);
    }

    #[test]
    fn regression_limit_adds_relative_and_absolute_grace() {
        assert_eq!(regression_limit_us(1_000_000), 1_200_000);
        assert_eq!(regression_limit_us(800), 50_920);
    }
}
