//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! (a) **LSAT mode vs external restarts** (paper Sec. 4: enumerating all
//!     solutions with a single-solution backend "happens at the expense of
//!     the time required for restarting the entire solving process
//!     externally") — the incremental CDCL backend against
//!     [`RestartingBoolean`] on a Sudoku instance.
//! (b) **Minimal conflicts vs naive blocking** — the simplex backend with
//!     and without the deletion-filter minimisation on FISCHER.
//! (c) **Tight vs loose coupling** — the DPLL(T) baseline against
//!     ABsolver's control loop on FISCHER (the architectural contrast of
//!     Table 2).

use absolver_baselines::{MathSatLike, MathSatLikeOptions};
use absolver_bench::fischer::fischer;
use absolver_bench::harness::{env_seconds, format_duration, print_table};
use absolver_bench::sudoku::{encode_mixed, generate, Difficulty};
use absolver_core::{
    CdclBoolean, Orchestrator, OrchestratorOptions, RestartingBoolean, SimplexLinear,
};
use std::time::{Duration, Instant};

fn options(timeout: Duration) -> OrchestratorOptions {
    OrchestratorOptions {
        time_limit: Some(timeout),
        ..Default::default()
    }
}

fn main() {
    let timeout = env_seconds("ABS_TIMEOUT_SECS", 120);

    // ---- (a) incremental enumeration vs external restarts ---------------
    println!("Ablation (a): all-models bookkeeping, incremental vs restarts");
    println!("(enumerating up to 200 interleavings of FISCHER6, and the");
    println!("solutions of an under-constrained Sudoku)\n");
    let fischer_instance = fischer(6);
    let (mut puzzle, _) = generate(2006, Difficulty::Easy);
    // Blank a full band to give the puzzle many solutions.
    for row in puzzle.iter_mut().take(3) {
        row.fill(0);
    }
    let sudoku_instance = encode_mixed(&puzzle);
    let mut rows = Vec::new();
    for (instance_label, problem, cap) in [
        ("FISCHER6 schedules", &fischer_instance, 200usize),
        ("Sudoku solutions", &sudoku_instance, 50),
    ] {
        for (label, restarting) in [
            ("incremental (LSAT mode)", false),
            ("external restarts", true),
        ] {
            let mut orc = if restarting {
                Orchestrator::with_defaults().with_boolean(Box::new(RestartingBoolean::new()))
            } else {
                Orchestrator::with_defaults().with_boolean(Box::new(CdclBoolean::new()))
            }
            .with_options(options(timeout));
            let started = Instant::now();
            let models = orc.solve_all(problem, cap).expect("within budget");
            rows.push(vec![
                instance_label.to_string(),
                label.to_string(),
                models.len().to_string(),
                format_duration(started.elapsed()),
            ]);
        }
    }
    print_table(&["Instance", "Boolean backend", "models", "time"], &rows);

    // ---- (b) minimal conflicts vs raw certificates ----------------------
    println!("\nAblation (b): conflict minimisation in the linear solver\n");
    let mut rows = Vec::new();
    for (label, minimize) in [("deletion-filter cores", true), ("raw certificates", false)] {
        let backend = if minimize {
            SimplexLinear::new()
        } else {
            SimplexLinear::without_minimization()
        };
        let mut orc = Orchestrator::custom(Box::new(CdclBoolean::new()))
            .with_linear(Box::new(backend))
            .with_nonlinear(Box::new(absolver_core::CascadeNonlinear::default()))
            .with_options(options(timeout));
        let problem = fischer(8);
        let started = Instant::now();
        let outcome = orc.solve(&problem).expect("within budget");
        let stats = orc.stats();
        rows.push(vec![
            label.to_string(),
            format!("{outcome:?}").chars().take(8).collect(),
            stats.boolean_iterations.to_string(),
            format!(
                "{:.1}",
                if stats.conflicts_fed_back == 0 {
                    0.0
                } else {
                    stats.conflict_literals as f64 / stats.conflicts_fed_back as f64
                }
            ),
            format_duration(started.elapsed()),
        ]);
    }
    print_table(
        &[
            "Conflict mode",
            "verdict",
            "iterations",
            "avg core size",
            "time",
        ],
        &rows,
    );

    // ---- (c) tight vs loose coupling ------------------------------------
    println!("\nAblation (c): tight DPLL(T) vs loose control loop (FISCHER)\n");
    let mut rows = Vec::new();
    for n in [4usize, 8] {
        let problem = fischer(n);
        let started = Instant::now();
        let mut orc = Orchestrator::with_defaults().with_options(options(timeout));
        let _ = orc.solve(&problem).expect("within budget");
        let loose = started.elapsed();
        let mut tight = MathSatLike {
            options: MathSatLikeOptions {
                time_limit: Some(timeout),
                ..Default::default()
            },
        };
        let run = tight.solve(&problem);
        rows.push(vec![
            format!("FISCHER{n}"),
            format_duration(loose),
            format_duration(run.elapsed),
            format!(
                "{:.1}×",
                loose.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        &[
            "Instance",
            "loose (ABsolver)",
            "tight (DPLL(T))",
            "loose/tight",
        ],
        &rows,
    );
}
