//! Load generator for the `absolverd` solve service, emitting
//! `BENCH_service.json`.
//!
//! ```text
//! cargo run --release -p absolver-bench --bin service_load [--check-regress]
//! ```
//!
//! Drives an in-process [`Server`] through three phases over one shared
//! declaration family (threshold-style problems that differ only in
//! their clauses):
//!
//! 1. **cold** — `VARIANTS` distinct problems, submitted one at a time
//!    (the first builds the warm session, the rest exercise the
//!    session-pool tier);
//! 2. **resub** — the same problems byte-identically resubmitted (the
//!    problem-cache tier: verdict + model replay, no solving);
//! 3. **burst** — `2 × VARIANTS` fresh problems submitted all at once
//!    with mixed priorities (queueing + backpressure-free throughput).
//!
//! Client-side latency (submit → response received, queue wait
//! included) is recorded per request; the report carries overall
//! throughput, p50/p95/p99, the cold-vs-resubmission p50 ratio, the
//! cache hit rate, and the worker abort count.
//!
//! `ABS_BENCH_DIR` (default `.`) selects the output directory. With
//! `--check-regress` the run fails (exit 1) unless: p99 stays within
//! the regression limit of the checked-in baseline in
//! `ABS_BENCH_BASELINE_DIR` (default `.`), throughput is at least half
//! the baseline's, resubmission beats the cold p50 by more than 1.5x,
//! the caches scored at least one hit, the warm-session pool served
//! repeat declarations, at least one pooled session resumed a
//! contraction cache carried over from an earlier request, and no
//! worker aborted.

use absolver_core::parser;
use absolver_core::{AbProblem, VarKind};
use absolver_linear::CmpOp;
use absolver_nonlinear::Expr;
use absolver_num::Rational;
use absolver_service::protocol::{Priority, Response, SolveFrame};
use absolver_service::{Server, ServerOptions, Submission};
use absolver_trace::{saturating_micros, JsonObject};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::Instant;

/// Distinct problems per phase (the burst phase uses twice as many).
const VARIANTS: usize = 24;
/// Arithmetic variables per problem (solve cost scales with this).
const M: usize = 14;

/// Pulls a `"<key>":<integer>` field out of a report without a JSON
/// parser (the workspace is dependency-free).
fn report_u64(report: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = report.find(&needle)? + needle.len();
    let digits: String = report[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Tolerated slowdown vs the checked-in baseline: 15% relative plus a
/// 50ms absolute grace for timer noise (same policy as `bench_json`).
fn regression_limit_us(baseline_us: u64) -> u64 {
    baseline_us + baseline_us * 3 / 20 + 50_000
}

/// One member of the shared-declaration problem family: the threshold
/// skeleton (m int vars in `{-1,0,1}`, free atoms `aᵢ ⇔ xᵢ ≥ 1`, a
/// required sum threshold) plus a variant-specific polarity pattern on
/// the free atoms. Every variant renders the same declarations (same
/// [`absolver_service::decl_key`]), so the warm-session tier applies;
/// the clause sets differ, so the problem-cache tier does not (until a
/// byte-identical resubmission).
fn variant_text(variant: usize) -> String {
    let mut b = AbProblem::builder();
    let vars: Vec<usize> = (0..M)
        .map(|i| b.arith_var(&format!("x{i}"), VarKind::Int))
        .collect();
    let mut frees = Vec::new();
    for &v in &vars {
        let a = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(1));
        frees.push(a);
        let lo = b.atom(Expr::var(v), CmpOp::Ge, Rational::from_int(-1));
        b.require(lo.positive());
        let hi = b.atom(Expr::var(v), CmpOp::Le, Rational::from_int(1));
        b.require(hi.positive());
    }
    let sum = vars.iter().fold(Expr::int(0), |acc, &v| acc + Expr::var(v));
    let target = (M * 55).div_ceil(100) as i64;
    let u = b.atom(sum, CmpOp::Ge, Rational::from_int(target));
    b.require(u.positive());
    // A nonlinear coupling on the first two variables, identical in every
    // variant: x0² + x1² ≤ 2 keeps the family satisfiable (any values in
    // {-1,0,1} qualify) while forcing each solve through the interval
    // cascade — so the cross-request contraction-cache gate below has a
    // nonlinear search whose contraction work pooled sessions can share.
    let curve = b.atom(
        Expr::var(vars[0]) * Expr::var(vars[0]) + Expr::var(vars[1]) * Expr::var(vars[1]),
        CmpOp::Le,
        Rational::from_int(2),
    );
    b.require(curve.positive());
    // The variant bits pin a few free atoms, changing the clause set
    // (and the search) without touching the declarations.
    for (i, &a) in frees.iter().enumerate().take(usize::BITS as usize) {
        if variant & (1 << i) != 0 {
            b.require(a.positive());
        }
    }
    parser::write(&b.build())
}

/// Submits `problems` and waits for every response, returning each
/// request's client-side latency in µs (submit → response).
fn run_phase(
    server: &Server,
    problems: &[(u64, Priority, String)],
    burst: bool,
) -> Vec<(u64, u64)> {
    let (tx, rx) = mpsc::channel::<Response>();
    let mut started: HashMap<u64, Instant> = HashMap::new();
    let mut latencies = Vec::with_capacity(problems.len());
    for (id, priority, text) in problems {
        started.insert(*id, Instant::now());
        let frame = SolveFrame {
            id: *id,
            timeout_ms: None,
            priority: *priority,
            text: text.clone(),
        };
        match server.submit(frame, tx.clone()) {
            Submission::Enqueued { .. } => {}
            Submission::Rejected { .. } => panic!("queue sized for the load; must not reject"),
            // Statically-unsat bodies are answered at submission; the
            // response is already on `rx`, so just collect it below.
            Submission::Answered => {}
        }
        if !burst {
            // One at a time: wait for this response before the next.
            collect_one(&rx, &mut started, &mut latencies);
        }
    }
    while !started.is_empty() {
        collect_one(&rx, &mut started, &mut latencies);
    }
    latencies
}

fn collect_one(
    rx: &mpsc::Receiver<Response>,
    started: &mut HashMap<u64, Instant>,
    latencies: &mut Vec<(u64, u64)>,
) {
    match rx.recv().expect("response") {
        Response::Ok { id, verdict, .. } => {
            let at = started.remove(&id).expect("tracked request");
            assert_eq!(verdict, "sat", "threshold variants are satisfiable");
            latencies.push((id, saturating_micros(at.elapsed())));
        }
        other => panic!("unexpected response under load: {other:?}"),
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() {
    let out_dir = PathBuf::from(std::env::var("ABS_BENCH_DIR").unwrap_or_else(|_| ".".into()));
    let baseline_dir =
        PathBuf::from(std::env::var("ABS_BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".into()));
    let check_regress = std::env::args().any(|a| a == "--check-regress");
    let mut failed = false;

    let server = Server::new(ServerOptions {
        workers: 2,
        queue_capacity: 4 * VARIANTS,
        ..Default::default()
    });

    // ---- phase 1: cold ----------------------------------------------
    let cold_problems: Vec<(u64, Priority, String)> = (0..VARIANTS)
        .map(|v| (v as u64, Priority::Normal, variant_text(v)))
        .collect();
    eprintln!("phase 1: {VARIANTS} cold solves ...");
    let run_started = Instant::now();
    let cold = run_phase(&server, &cold_problems, false);

    // ---- phase 2: byte-identical resubmission ------------------------
    let resub_problems: Vec<(u64, Priority, String)> = cold_problems
        .iter()
        .map(|(id, p, text)| (1000 + id, *p, text.clone()))
        .collect();
    eprintln!("phase 2: {VARIANTS} resubmissions ...");
    let resub = run_phase(&server, &resub_problems, false);

    // ---- phase 3: mixed-priority burst -------------------------------
    let burst_problems: Vec<(u64, Priority, String)> = (0..2 * VARIANTS)
        .map(|i| {
            let priority = match i % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            };
            (2000 + i as u64, priority, variant_text(VARIANTS + i))
        })
        .collect();
    eprintln!("phase 3: {} burst solves ...", burst_problems.len());
    let burst = run_phase(&server, &burst_problems, true);
    let elapsed = run_started.elapsed();

    // ---- metrics -----------------------------------------------------
    let total_requests = (cold.len() + resub.len() + burst.len()) as u64;
    let elapsed_us = saturating_micros(elapsed).max(1);
    let throughput_rps = total_requests as f64 * 1_000_000.0 / elapsed_us as f64;

    let mut all_us: Vec<u64> = cold
        .iter()
        .chain(&resub)
        .chain(&burst)
        .map(|&(_, us)| us)
        .collect();
    all_us.sort_unstable();
    let p50_us = percentile(&all_us, 0.50);
    let p95_us = percentile(&all_us, 0.95);
    let p99_us = percentile(&all_us, 0.99);

    let mut cold_us: Vec<u64> = cold.iter().map(|&(_, us)| us).collect();
    cold_us.sort_unstable();
    let mut resub_us: Vec<u64> = resub.iter().map(|&(_, us)| us).collect();
    resub_us.sort_unstable();
    let cold_p50_us = percentile(&cold_us, 0.50);
    let resub_p50_us = percentile(&resub_us, 0.50).max(1);
    let resub_speedup = cold_p50_us as f64 / resub_p50_us as f64;

    let stats = server.stats();
    let hits =
        stats.problem_hits.load(Ordering::Relaxed) + stats.session_hits.load(Ordering::Relaxed);
    let lookups = hits
        + stats.problem_misses.load(Ordering::Relaxed).min(
            // A problem-cache miss that then hits the session pool is one
            // warm answer, not two lookups; count each request once.
            stats.session_misses.load(Ordering::Relaxed)
                + stats.session_hits.load(Ordering::Relaxed),
        );
    let cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let worker_aborts = stats.aborts.load(Ordering::Relaxed);
    let contraction_hits = stats.contraction_hits.load(Ordering::Relaxed);
    let contraction_resumes = stats.contraction_resumes.load(Ordering::Relaxed);

    eprintln!(
        "  {total_requests} requests in {elapsed_us}us ({throughput_rps:.0} rps), \
         p50 {p50_us}us p95 {p95_us}us p99 {p99_us}us"
    );
    eprintln!(
        "  cold p50 {cold_p50_us}us vs resub p50 {resub_p50_us}us ({resub_speedup:.1}x), \
         cache hit rate {cache_hit_rate:.3}, aborts {worker_aborts}"
    );
    eprintln!(
        "  contraction cache: {contraction_hits} hits, {contraction_resumes} \
         cross-request resumes"
    );

    // ---- report ------------------------------------------------------
    let mut obj = JsonObject::new();
    obj.field_str("workload", "service_load")
        .field_u64("requests", total_requests)
        .field_u64("elapsed_us", elapsed_us)
        .field_f64("throughput_rps", throughput_rps)
        .field_u64("p50_us", p50_us)
        .field_u64("p95_us", p95_us)
        .field_u64("p99_us", p99_us)
        .field_u64("cold_p50_us", cold_p50_us)
        .field_u64("resub_p50_us", resub_p50_us)
        .field_f64("resub_speedup", resub_speedup)
        .field_f64("cache_hit_rate", cache_hit_rate)
        .field_u64("worker_aborts", worker_aborts)
        .field_raw("stats", &server.stats_json());
    let report = obj.finish();
    let path = out_dir.join("BENCH_service.json");
    if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
        eprintln!("cannot write {}: {e}", path.display());
        failed = true;
    } else {
        eprintln!("  -> {}", path.display());
    }
    server.shutdown();

    // ---- gates -------------------------------------------------------
    if check_regress {
        let base_path = baseline_dir.join("BENCH_service.json");
        let baseline = std::fs::read_to_string(&base_path).ok();
        match baseline.as_deref().and_then(|r| report_u64(r, "p99_us")) {
            Some(base_p99) => {
                let limit = regression_limit_us(base_p99);
                if p99_us > limit {
                    eprintln!(
                        "  REGRESSION: p99 {p99_us}us, baseline {base_p99}us (limit {limit}us)"
                    );
                    failed = true;
                } else {
                    eprintln!("  ok vs baseline p99: {p99_us}us <= {limit}us ({base_p99}us)");
                }
            }
            None => {
                eprintln!("  no usable baseline at {}", base_path.display());
                failed = true;
            }
        }
        // Throughput floor: half the baseline's rate (rps is noisy on
        // shared CI hardware, so the floor is deliberately loose).
        if let Some(base_elapsed) = baseline
            .as_deref()
            .and_then(|r| report_u64(r, "elapsed_us"))
        {
            let base_requests = baseline
                .as_deref()
                .and_then(|r| report_u64(r, "requests"))
                .unwrap_or(total_requests);
            let base_rps = base_requests as f64 * 1_000_000.0 / base_elapsed.max(1) as f64;
            if throughput_rps < base_rps / 2.0 {
                eprintln!(
                    "  THROUGHPUT FLOOR: {throughput_rps:.0} rps < half of baseline \
                     {base_rps:.0} rps"
                );
                failed = true;
            }
        }
        if resub_speedup <= 1.5 {
            eprintln!(
                "  NO CACHE PAYOFF: resubmission p50 only {resub_speedup:.2}x better than cold"
            );
            failed = true;
        }
        if hits == 0 {
            eprintln!("  DEAD CACHE: zero problem/session cache hits under load");
            failed = true;
        }
        // Cross-request warm-state gates. The cold phase reuses one
        // declaration family, so the fingerprint-keyed pool must serve
        // warm sessions, and those sessions must resume the persistent
        // contraction cache written by earlier requests — interned
        // constraint ids are what keep the carried entries valid.
        if stats.session_hits.load(Ordering::Relaxed) == 0 {
            eprintln!("  DEAD POOL: zero warm-session hits across repeat declarations");
            failed = true;
        }
        if contraction_resumes == 0 {
            eprintln!(
                "  NO CROSS-REQUEST CONTRACTION SHARING: pooled sessions never \
                 resumed a warm contraction cache"
            );
            failed = true;
        }
        if worker_aborts != 0 {
            eprintln!("  WORKER ABORTS: {worker_aborts} requests died in catch_unwind");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_rank_from_sorted_input() {
        let us = [10, 20, 30, 40, 1000];
        assert_eq!(percentile(&us, 0.50), 30);
        assert_eq!(percentile(&us, 0.99), 1000);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn variants_share_declarations_but_not_clauses() {
        let a: AbProblem = variant_text(1).parse().unwrap();
        let b: AbProblem = variant_text(2).parse().unwrap();
        assert_eq!(
            absolver_service::decl_key(&a),
            absolver_service::decl_key(&b)
        );
        assert_ne!(variant_text(1), variant_text(2));
    }
}
