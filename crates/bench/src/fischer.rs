//! FISCHER benchmark generator (paper Table 2).
//!
//! The paper's Table 2 runs the SMT-LIB `FISCHERn-1-fair.smt` instances —
//! Boolean + linear encodings of Fischer's real-time mutual-exclusion
//! protocol for `n` processes. The original files are not redistributable
//! here, so this module generates instances of the same family: an
//! event-time encoding of one round of the protocol whose Boolean skeleton
//! chooses an interleaving of the lock writes and whose linear part
//! carries the real-time constraints.
//!
//! Protocol recap: every contending process `p` writes `lock := p` within
//! `a` time units of starting (`0 ≤ set_p ≤ a`), then waits at least
//! `b > a` (`check_p ≥ set_p + b`) before reading the lock; it enters the
//! critical section only if the lock still holds its own id. Lock writes
//! are serialised on the bus, so any two writes are at least one tick
//! apart — encoded as the disjunctions `set_p ≤ set_q − 1 ∨ set_q ≤
//! set_p − 1` whose orientations form the Boolean search space.
//!
//! Two queries are provided:
//!
//! * [`fischer`] — *can process 0 enter the critical section?* SAT, but
//!   only for interleaving orientations that are acyclic and timing-
//!   consistent; a lazy solver "examines many Boolean solutions first"
//!   (the paper's own explanation of ABsolver's Table 2 slowdown), while
//!   the tight DPLL(T) baselines prune partial orientations early.
//! * [`fischer_mutex`] — *can processes 0 and 1 both enter?* UNSAT when
//!   `b > a` (the protocol is safe).

use absolver_core::{AbProblem, AbProblemBuilder, VarKind};
use absolver_linear::CmpOp;
use absolver_logic::Var;
use absolver_nonlinear::Expr;
use absolver_num::Rational;

/// Parameters of a FISCHER instance.
#[derive(Debug, Clone, Copy)]
pub struct FischerConfig {
    /// Number of processes (the paper sweeps 1..=11).
    pub processes: usize,
    /// Write deadline `a` (must admit `n` serialised writes: `a ≥ n`).
    pub a: i64,
    /// Wait time `b` (protocol safe iff `b > a`).
    pub b: i64,
}

impl FischerConfig {
    /// The standard parameters for `n` processes: `a = n + 1`, `b = a + 1`.
    pub fn standard(n: usize) -> FischerConfig {
        let a = n as i64 + 1;
        FischerConfig {
            processes: n,
            a,
            b: a + 1,
        }
    }
}

struct Skeleton {
    set: Vec<usize>,
    check: Vec<usize>,
}

/// Timing constraints + serialised-write disjunctions shared by both
/// queries.
fn skeleton(builder: &mut AbProblemBuilder, config: &FischerConfig) -> Skeleton {
    let n = config.processes;
    let set: Vec<usize> = (0..n)
        .map(|p| builder.arith_var(&format!("set_{p}"), VarKind::Real))
        .collect();
    let check: Vec<usize> = (0..n)
        .map(|p| builder.arith_var(&format!("check_{p}"), VarKind::Real))
        .collect();
    for p in 0..n {
        builder.set_range(set[p], absolver_num::Interval::new(0.0, config.a as f64));
        builder.set_range(
            check[p],
            absolver_num::Interval::new(0.0, (config.a + 2 * config.b) as f64),
        );
    }
    // Per-process timing, as unit atoms.
    for p in 0..n {
        let nonneg = builder.atom(Expr::var(set[p]), CmpOp::Ge, Rational::zero());
        builder.require(nonneg.positive());
        let deadline = builder.atom(Expr::var(set[p]), CmpOp::Le, Rational::from_int(config.a));
        builder.require(deadline.positive());
        let wait = builder.atom(
            Expr::var(check[p]) - Expr::var(set[p]),
            CmpOp::Ge,
            Rational::from_int(config.b),
        );
        builder.require(wait.positive());
    }
    // Serialised lock writes: |set_p − set_q| ≥ 1, as an orientation choice.
    for p in 0..n {
        for q in (p + 1)..n {
            let p_first = builder.atom(
                Expr::var(set[p]) - Expr::var(set[q]),
                CmpOp::Le,
                Rational::from_int(-1),
            );
            let q_first = builder.atom(
                Expr::var(set[q]) - Expr::var(set[p]),
                CmpOp::Le,
                Rational::from_int(-1),
            );
            builder.add_clause([p_first.positive(), q_first.positive()]);
        }
    }
    Skeleton { set, check }
}

/// Adds the critical-section entry condition for process `p`: every other
/// write either precedes `p`'s or happens only after `p` has read.
fn entry_condition(builder: &mut AbProblemBuilder, sk: &Skeleton, p: usize) {
    let n = sk.set.len();
    for q in 0..n {
        if q == p {
            continue;
        }
        let earlier: Var = builder.atom(
            Expr::var(sk.set[q]) - Expr::var(sk.set[p]),
            CmpOp::Lt,
            Rational::zero(),
        );
        let too_late: Var = builder.atom(
            Expr::var(sk.set[q]) - Expr::var(sk.check[p]),
            CmpOp::Gt,
            Rational::zero(),
        );
        builder.add_clause([earlier.positive(), too_late.positive()]);
    }
}

/// The Table 2 instance for `n` processes: *process 0 can enter the
/// critical section* — satisfiable, with an exponential orientation space
/// that only timing reasoning prunes.
pub fn fischer(n: usize) -> AbProblem {
    assert!(n > 0, "at least one process");
    let config = FischerConfig::standard(n);
    let mut builder = AbProblem::builder();
    let sk = skeleton(&mut builder, &config);
    entry_condition(&mut builder, &sk, 0);
    builder.build()
}

/// The mutual-exclusion query: *processes 0 and 1 both enter*. UNSAT for
/// the safe parameters (`b > a`), SAT when `b ≤ a`.
///
/// # Panics
///
/// Panics if `config.processes < 2`.
pub fn fischer_mutex(config: FischerConfig) -> AbProblem {
    assert!(config.processes >= 2, "mutex needs two processes");
    let mut builder = AbProblem::builder();
    let sk = skeleton(&mut builder, &config);
    entry_condition(&mut builder, &sk, 0);
    entry_condition(&mut builder, &sk, 1);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_baselines::{BaselineVerdict, MathSatLike};
    use absolver_core::Orchestrator;

    #[test]
    fn instances_scale_with_processes() {
        let small = fischer(2);
        let large = fischer(6);
        assert!(large.cnf().len() > small.cnf().len());
        assert!(large.num_constraints() > small.num_constraints());
        assert_eq!(large.num_nonlinear(), 0, "pure Boolean-linear family");
    }

    #[test]
    fn reachability_is_sat_and_validates() {
        for n in 1..=4 {
            let p = fischer(n);
            let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
            let model = outcome
                .model()
                .unwrap_or_else(|| panic!("n={n} must be SAT"));
            assert!(model.satisfies(&p, 1e-9), "n={n}");
        }
    }

    #[test]
    fn witness_puts_process_zero_last() {
        let p = fischer(3);
        let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
        let model = outcome.model().unwrap();
        let set0 = model
            .arith
            .value_f64(p.arith_var("set_0").unwrap())
            .unwrap();
        for q in 1..3 {
            let setq = model
                .arith
                .value_f64(p.arith_var(&format!("set_{q}")).unwrap())
                .unwrap();
            assert!(setq < set0, "set_{q}={setq} must precede set_0={set0}");
        }
    }

    #[test]
    fn safe_mutex_is_unsat() {
        for n in 2..=3 {
            let p = fischer_mutex(FischerConfig::standard(n));
            let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
            assert!(outcome.is_unsat(), "n={n}: protocol with b > a is safe");
        }
    }

    #[test]
    fn unsafe_parameters_violate_mutex() {
        // b ≤ a breaks the protocol: two processes in the CS are possible.
        let p = fischer_mutex(FischerConfig {
            processes: 2,
            a: 5,
            b: 1,
        });
        let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
        let model = outcome
            .model()
            .expect("unsafe parameters admit a violation");
        assert!(model.satisfies(&p, 1e-9));
    }

    #[test]
    fn tight_baseline_agrees() {
        for n in 2..=3 {
            let sat = fischer(n);
            match MathSatLike::new().solve(&sat).verdict {
                BaselineVerdict::Sat(m) => assert!(m.satisfies(&sat, 1e-9), "n={n}"),
                other => panic!("n={n}: {other:?}"),
            }
            let unsat = fischer_mutex(FischerConfig::standard(n));
            assert_eq!(
                MathSatLike::new().solve(&unsat).verdict,
                BaselineVerdict::Unsat
            );
        }
    }
}
