//! FISCHER benchmark generator (paper Table 2).
//!
//! The paper's Table 2 runs the SMT-LIB `FISCHERn-1-fair.smt` instances —
//! Boolean + linear encodings of Fischer's real-time mutual-exclusion
//! protocol for `n` processes. The original files are not redistributable
//! here, so this module generates instances of the same family: an
//! event-time encoding of one round of the protocol whose Boolean skeleton
//! chooses an interleaving of the lock writes and whose linear part
//! carries the real-time constraints.
//!
//! Protocol recap: every contending process `p` writes `lock := p` within
//! `a` time units of starting (`0 ≤ set_p ≤ a`), then waits at least
//! `b > a` (`check_p ≥ set_p + b`) before reading the lock; it enters the
//! critical section only if the lock still holds its own id. Lock writes
//! are serialised on the bus, so any two writes are at least one tick
//! apart — encoded as the disjunctions `set_p ≤ set_q − 1 ∨ set_q ≤
//! set_p − 1` whose orientations form the Boolean search space.
//!
//! Two queries are provided:
//!
//! * [`fischer`] — *can process 0 enter the critical section?* SAT, but
//!   only for interleaving orientations that are acyclic and timing-
//!   consistent; a lazy solver "examines many Boolean solutions first"
//!   (the paper's own explanation of ABsolver's Table 2 slowdown), while
//!   the tight DPLL(T) baselines prune partial orientations early.
//! * [`fischer_mutex`] — *can processes 0 and 1 both enter?* UNSAT when
//!   `b > a` (the protocol is safe).

use absolver_core::{AbProblem, AbProblemBuilder, Session, VarKind};
use absolver_linear::CmpOp;
use absolver_logic::Var;
use absolver_nonlinear::{Expr, VarId};
use absolver_num::{Interval, Rational};

/// Parameters of a FISCHER instance.
#[derive(Debug, Clone, Copy)]
pub struct FischerConfig {
    /// Number of processes (the paper sweeps 1..=11).
    pub processes: usize,
    /// Write deadline `a` (must admit `n` serialised writes: `a ≥ n`).
    pub a: i64,
    /// Wait time `b` (protocol safe iff `b > a`).
    pub b: i64,
}

impl FischerConfig {
    /// The standard parameters for `n` processes: `a = n + 1`, `b = a + 1`.
    pub fn standard(n: usize) -> FischerConfig {
        let a = n as i64 + 1;
        FischerConfig {
            processes: n,
            a,
            b: a + 1,
        }
    }
}

struct Skeleton {
    set: Vec<usize>,
    check: Vec<usize>,
}

/// Timing constraints + serialised-write disjunctions shared by both
/// queries.
fn skeleton(builder: &mut AbProblemBuilder, config: &FischerConfig) -> Skeleton {
    let n = config.processes;
    let set: Vec<usize> = (0..n)
        .map(|p| builder.arith_var(&format!("set_{p}"), VarKind::Real))
        .collect();
    let check: Vec<usize> = (0..n)
        .map(|p| builder.arith_var(&format!("check_{p}"), VarKind::Real))
        .collect();
    for p in 0..n {
        builder.set_range(set[p], absolver_num::Interval::new(0.0, config.a as f64));
        builder.set_range(
            check[p],
            absolver_num::Interval::new(0.0, (config.a + 2 * config.b) as f64),
        );
    }
    // Per-process timing, as unit atoms.
    for p in 0..n {
        let nonneg = builder.atom(Expr::var(set[p]), CmpOp::Ge, Rational::zero());
        builder.require(nonneg.positive());
        let deadline = builder.atom(Expr::var(set[p]), CmpOp::Le, Rational::from_int(config.a));
        builder.require(deadline.positive());
        let wait = builder.atom(
            Expr::var(check[p]) - Expr::var(set[p]),
            CmpOp::Ge,
            Rational::from_int(config.b),
        );
        builder.require(wait.positive());
    }
    // Serialised lock writes: |set_p − set_q| ≥ 1, as an orientation choice.
    for p in 0..n {
        for q in (p + 1)..n {
            let p_first = builder.atom(
                Expr::var(set[p]) - Expr::var(set[q]),
                CmpOp::Le,
                Rational::from_int(-1),
            );
            let q_first = builder.atom(
                Expr::var(set[q]) - Expr::var(set[p]),
                CmpOp::Le,
                Rational::from_int(-1),
            );
            builder.add_clause([p_first.positive(), q_first.positive()]);
        }
    }
    Skeleton { set, check }
}

/// Adds the critical-section entry condition for process `p`: every other
/// write either precedes `p`'s or happens only after `p` has read.
fn entry_condition(builder: &mut AbProblemBuilder, sk: &Skeleton, p: usize) {
    let n = sk.set.len();
    for q in 0..n {
        if q == p {
            continue;
        }
        let earlier: Var = builder.atom(
            Expr::var(sk.set[q]) - Expr::var(sk.set[p]),
            CmpOp::Lt,
            Rational::zero(),
        );
        let too_late: Var = builder.atom(
            Expr::var(sk.set[q]) - Expr::var(sk.check[p]),
            CmpOp::Gt,
            Rational::zero(),
        );
        builder.add_clause([earlier.positive(), too_late.positive()]);
    }
}

/// The Table 2 instance for `n` processes: *process 0 can enter the
/// critical section* — satisfiable, with an exponential orientation space
/// that only timing reasoning prunes.
pub fn fischer(n: usize) -> AbProblem {
    assert!(n > 0, "at least one process");
    let config = FischerConfig::standard(n);
    let mut builder = AbProblem::builder();
    let sk = skeleton(&mut builder, &config);
    entry_condition(&mut builder, &sk, 0);
    builder.build()
}

/// The mutual-exclusion query: *processes 0 and 1 both enter*. UNSAT for
/// the safe parameters (`b > a`), SAT when `b ≤ a`.
///
/// # Panics
///
/// Panics if `config.processes < 2`.
pub fn fischer_mutex(config: FischerConfig) -> AbProblem {
    assert!(config.processes >= 2, "mutex needs two processes");
    let mut builder = AbProblem::builder();
    let sk = skeleton(&mut builder, &config);
    entry_condition(&mut builder, &sk, 0);
    entry_condition(&mut builder, &sk, 1);
    builder.build()
}

/// A FISCHER instance grown one process at a time inside a persistent
/// [`Session`] — the streaming counterpart of the Table 2 loop, which
/// rebuilds and re-solves the whole instance at every `n`.
///
/// Unlike [`FischerConfig::standard`], the deadline `a` is fixed up front
/// for the *maximum* depth (`a = n_max + 1`, `b = a + 1`), so deepening is
/// strictly append-only: adding process `p` adds its event variables,
/// timing atoms, serialised-write disjunctions against every earlier
/// process, and the process-0 entry clause for the new contender. Nothing
/// already asserted ever changes, which is what lets the session keep its
/// lemmas, verdict cache, and warm Boolean state across depths.
///
/// The mutual-exclusion query is *not* monotone (it constrains process 1's
/// entry), so it runs as a `push` / [`FischerStream::assert_mutex_entry`] /
/// `check` / `pop` excursion at each depth.
#[derive(Debug)]
pub struct FischerStream {
    session: Session,
    a: i64,
    b: i64,
    set: Vec<VarId>,
    check: Vec<VarId>,
}

impl FischerStream {
    /// Starts an empty stream sized for at most `n_max` processes, over a
    /// default session.
    pub fn new(n_max: usize) -> FischerStream {
        FischerStream::with_session(n_max, Session::new())
    }

    /// Starts an empty stream sized for at most `n_max` processes, over a
    /// caller-configured session (custom backends or options).
    pub fn with_session(n_max: usize, session: Session) -> FischerStream {
        let a = n_max as i64 + 1;
        FischerStream {
            session,
            a,
            b: a + 1,
            set: Vec::new(),
            check: Vec::new(),
        }
    }

    /// Number of processes added so far.
    pub fn processes(&self) -> usize {
        self.set.len()
    }

    /// The underlying session (stats, checks, model access).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the underlying session (`push`/`pop`/`check`).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Appends the next process: event variables, timing atoms, write
    /// serialisation against every earlier process, and — for contenders
    /// other than process 0 — the process-0 entry clause.
    pub fn add_process(&mut self) {
        let p = self.set.len();
        let s = &mut self.session;
        let set_p = s
            .arith_var(&format!("set_{p}"), VarKind::Real)
            .expect("fresh name");
        let check_p = s
            .arith_var(&format!("check_{p}"), VarKind::Real)
            .expect("fresh name");
        s.assert_range(set_p, Interval::new(0.0, self.a as f64))
            .expect("declared");
        s.assert_range(check_p, Interval::new(0.0, (self.a + 2 * self.b) as f64))
            .expect("declared");
        let nonneg = s
            .atom(Expr::var(set_p), CmpOp::Ge, Rational::zero())
            .expect("declared");
        s.require(nonneg.positive());
        let deadline = s
            .atom(Expr::var(set_p), CmpOp::Le, Rational::from_int(self.a))
            .expect("declared");
        s.require(deadline.positive());
        let wait = s
            .atom(
                Expr::var(check_p) - Expr::var(set_p),
                CmpOp::Ge,
                Rational::from_int(self.b),
            )
            .expect("declared");
        s.require(wait.positive());
        for q in 0..p {
            let q_first = s
                .atom(
                    Expr::var(self.set[q]) - Expr::var(set_p),
                    CmpOp::Le,
                    Rational::from_int(-1),
                )
                .expect("declared");
            let p_first = s
                .atom(
                    Expr::var(set_p) - Expr::var(self.set[q]),
                    CmpOp::Le,
                    Rational::from_int(-1),
                )
                .expect("declared");
            s.assert_clause([q_first.positive(), p_first.positive()]);
        }
        if p > 0 {
            // Process 0's entry condition for the new contender.
            let earlier = s
                .atom(
                    Expr::var(set_p) - Expr::var(self.set[0]),
                    CmpOp::Lt,
                    Rational::zero(),
                )
                .expect("declared");
            let too_late = s
                .atom(
                    Expr::var(set_p) - Expr::var(self.check[0]),
                    CmpOp::Gt,
                    Rational::zero(),
                )
                .expect("declared");
            s.assert_clause([earlier.positive(), too_late.positive()]);
        }
        self.set.push(set_p);
        self.check.push(check_p);
    }

    /// Asserts process 1's critical-section entry condition into the
    /// *current frame* — push first, pop afterwards, or the mutex
    /// constraint (UNSAT with these safe parameters) poisons later depths.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two processes.
    pub fn assert_mutex_entry(&mut self) {
        assert!(self.set.len() >= 2, "mutex needs two processes");
        let s = &mut self.session;
        for q in 0..self.set.len() {
            if q == 1 {
                continue;
            }
            let earlier = s
                .atom(
                    Expr::var(self.set[q]) - Expr::var(self.set[1]),
                    CmpOp::Lt,
                    Rational::zero(),
                )
                .expect("declared");
            let too_late = s
                .atom(
                    Expr::var(self.set[q]) - Expr::var(self.check[1]),
                    CmpOp::Gt,
                    Rational::zero(),
                )
                .expect("declared");
            s.assert_clause([earlier.positive(), too_late.positive()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_baselines::{BaselineVerdict, MathSatLike};
    use absolver_core::Orchestrator;

    #[test]
    fn instances_scale_with_processes() {
        let small = fischer(2);
        let large = fischer(6);
        assert!(large.cnf().len() > small.cnf().len());
        assert!(large.num_constraints() > small.num_constraints());
        assert_eq!(large.num_nonlinear(), 0, "pure Boolean-linear family");
    }

    #[test]
    fn reachability_is_sat_and_validates() {
        for n in 1..=4 {
            let p = fischer(n);
            let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
            let model = outcome
                .model()
                .unwrap_or_else(|| panic!("n={n} must be SAT"));
            assert!(model.satisfies(&p, 1e-9), "n={n}");
        }
    }

    #[test]
    fn witness_puts_process_zero_last() {
        let p = fischer(3);
        let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
        let model = outcome.model().unwrap();
        let set0 = model
            .arith
            .value_f64(p.arith_var("set_0").unwrap())
            .unwrap();
        for q in 1..3 {
            let setq = model
                .arith
                .value_f64(p.arith_var(&format!("set_{q}")).unwrap())
                .unwrap();
            assert!(setq < set0, "set_{q}={setq} must precede set_0={set0}");
        }
    }

    #[test]
    fn safe_mutex_is_unsat() {
        for n in 2..=3 {
            let p = fischer_mutex(FischerConfig::standard(n));
            let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
            assert!(outcome.is_unsat(), "n={n}: protocol with b > a is safe");
        }
    }

    #[test]
    fn unsafe_parameters_violate_mutex() {
        // b ≤ a breaks the protocol: two processes in the CS are possible.
        let p = fischer_mutex(FischerConfig {
            processes: 2,
            a: 5,
            b: 1,
        });
        let outcome = Orchestrator::with_defaults().solve(&p).unwrap();
        let model = outcome
            .model()
            .expect("unsafe parameters admit a violation");
        assert!(model.satisfies(&p, 1e-9));
    }

    #[test]
    fn stream_agrees_with_from_scratch() {
        let mut stream = FischerStream::new(4);
        for n in 1..=4 {
            stream.add_process();
            let out = stream.session_mut().check().unwrap();
            let model = out.model().unwrap_or_else(|| panic!("n={n} must be SAT"));
            assert!(model.satisfies(stream.session().problem(), 1e-9), "n={n}");
            let fresh = Orchestrator::with_defaults()
                .solve(stream.session().problem())
                .unwrap();
            assert!(fresh.is_sat(), "n={n}: from-scratch disagrees");
            if n >= 2 {
                stream.session_mut().push();
                stream.assert_mutex_entry();
                assert!(
                    stream.session_mut().check().unwrap().is_unsat(),
                    "n={n}: safe protocol must refuse double entry"
                );
                stream.session_mut().pop().unwrap();
            }
        }
        // The mutex excursions must not have poisoned the final frame.
        assert!(stream.session_mut().check().unwrap().is_sat());
    }

    #[test]
    fn tight_baseline_agrees() {
        for n in 2..=3 {
            let sat = fischer(n);
            match MathSatLike::new().solve(&sat).verdict {
                BaselineVerdict::Sat(m) => assert!(m.satisfies(&sat, 1e-9), "n={n}"),
                other => panic!("n={n}: {other:?}"),
            }
            let unsat = fischer_mutex(FischerConfig::standard(n));
            assert_eq!(
                MathSatLike::new().solve(&unsat).verdict,
                BaselineVerdict::Unsat
            );
        }
    }
}
