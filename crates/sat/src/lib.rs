//! A CDCL SAT solver with all-models enumeration, the Boolean engine of the
//! ABsolver constraint-solving library.
//!
//! In the paper's architecture, ABsolver delegates the Boolean part of an
//! AB-problem to a pluggable SAT solver — zChaff for one-model queries, or
//! LSAT when *all* satisfying assignments are needed (e.g. for the Sudoku
//! benchmarks and consistency-based diagnosis). This crate provides both
//! capabilities:
//!
//! * [`Solver`] — incremental CDCL search (two-watched literals, first-UIP
//!   learning, VSIDS, phase saving, Luby restarts, clause-DB reduction).
//! * [`ModelIter`] / [`enumerate_with_restarts`] — all-models enumeration,
//!   in-process or via external restarts.
//! * [`TheoryHook`] — a DPLL(T) attachment point used by the tightly
//!   integrated baseline solvers.
//!
//! ```
//! use absolver_sat::{SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! solver.add_dimacs_clause(&[1, -2]);
//! solver.add_dimacs_clause(&[2]);
//! assert!(solver.solve().is_sat());
//! solver.add_dimacs_clause(&[-1]);
//! assert_eq!(solver.solve(), SolveResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enumerate;
mod solver;
mod theory;

pub use enumerate::{enumerate_with_restarts, ModelIter};
pub use solver::{SolveResult, Solver, SolverStats};
pub use theory::{TheoryHook, TheoryResponse};

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_logic::{dimacs, Assignment, Tri, Var};
    use absolver_testkit::{gen, property, Rng, TestRng};

    /// Brute-force satisfiability for cross-checking (≤ 20 variables).
    fn brute_force_sat(cnf: &absolver_logic::Cnf) -> Option<Assignment> {
        let n = cnf.num_vars();
        assert!(n <= 20);
        for bits in 0..(1u32 << n) {
            let a = Assignment::from_bools((0..n).map(|i| bits >> i & 1 == 1));
            if cnf.eval(&a) == Tri::True {
                return Some(a);
            }
        }
        None
    }

    fn brute_force_count(cnf: &absolver_logic::Cnf) -> usize {
        let n = cnf.num_vars();
        (0..(1u32 << n))
            .filter(|bits| {
                let a = Assignment::from_bools((0..n).map(|i| bits >> i & 1 == 1));
                cnf.eval(&a) == Tri::True
            })
            .count()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1]);
        s.add_dimacs_clause(&[-1, 2]);
        s.add_dimacs_clause(&[-2, 3]);
        s.add_dimacs_clause(&[-3, 4]);
        let m = s.solve();
        let model = m.model().unwrap();
        for i in 0..4 {
            assert!(model.value(Var::new(i)).is_true());
        }
        assert_eq!(s.stats().decisions, 0);
    }

    #[test]
    fn simple_unsat_via_resolution() {
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1, 2]);
        s.add_dimacs_clause(&[1, -2]);
        s.add_dimacs_clause(&[-1, 2]);
        s.add_dimacs_clause(&[-1, -2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Vars 1..=6 (i ∈ 0..3, j ∈ 0..2).
        let v = |i: i32, j: i32| i * 2 + j + 1;
        let mut s = Solver::new();
        for i in 0..3 {
            s.add_dimacs_clause(&[v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_dimacs_clause(&[-v(i1, j), -v(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn incremental_strengthening() {
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1, 2, 3]);
        assert!(s.solve().is_sat());
        s.add_dimacs_clause(&[-1]);
        assert!(s.solve().is_sat());
        s.add_dimacs_clause(&[-2]);
        assert!(s.solve().is_sat());
        s.add_dimacs_clause(&[-3]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once UNSAT, always UNSAT.
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(!s.add_dimacs_clause(&[1]));
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard pigeonhole instance with a budget of 1 conflict.
        let v = |i: i32, j: i32| i * 5 + j + 1;
        let mut s = Solver::new();
        for i in 0..6 {
            let holes: Vec<i32> = (0..5).map(|j| v(i, j)).collect();
            s.add_dimacs_clause(&holes);
        }
        for j in 0..5 {
            for i1 in 0..6 {
                for i2 in (i1 + 1)..6 {
                    s.add_dimacs_clause(&[-v(i1, j), -v(i2, j)]);
                }
            }
        }
        s.set_conflict_budget(1);
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(u64::MAX);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_original_cnf() {
        let text = "p cnf 6 7\n1 2 0\n-1 3 0\n-2 4 0\n-3 -4 5 0\n-5 6 0\n1 -6 0\n2 5 0\n";
        let file = dimacs::parse(text).unwrap();
        let mut s = Solver::from_cnf(&file.cnf);
        let result = s.solve();
        let model = result.model().expect("satisfiable");
        assert_eq!(file.cnf.eval(model), Tri::True);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut rng = TestRng::seed_from_u64(0xAB50_1BE5);
        for round in 0..60 {
            let n = rng.gen_range(3..10usize);
            let m = rng.gen_range(1..(4 * n));
            let mut cnf = absolver_logic::Cnf::new(n);
            for _ in 0..m {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(1..=n as i32);
                    lits.push(if rng.gen_bool(0.5) { v } else { -v });
                }
                cnf.add_dimacs_clause(&lits);
            }
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve();
            let expected = brute_force_sat(&cnf);
            match (&got, &expected) {
                (SolveResult::Sat(model), Some(_)) => {
                    assert_eq!(cnf.eval(model), Tri::True, "round {round}: bogus model");
                }
                (SolveResult::Unsat, None) => {}
                other => panic!("round {round}: solver/brute-force disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn model_counts_agree_with_brute_force() {
        let mut rng = TestRng::seed_from_u64(0xC0FF_EE00);
        for _ in 0..25 {
            let n = rng.gen_range(2..8usize);
            let m = rng.gen_range(1..(3 * n));
            let mut cnf = absolver_logic::Cnf::new(n);
            for _ in 0..m {
                let len = rng.gen_range(1..=3usize);
                let mut lits = Vec::new();
                for _ in 0..len {
                    let v = rng.gen_range(1..=n as i32);
                    lits.push(if rng.gen_bool(0.5) { v } else { -v });
                }
                cnf.add_dimacs_clause(&lits);
            }
            let expected = brute_force_count(&cnf);
            let mut s = Solver::from_cnf(&cnf);
            let got = ModelIter::over_all_vars(&mut s).count();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn theory_hook_vetoes_models() {
        // Theory: "x1 and x2 must not both be true", expressed only through
        // the hook. Formula alone: x1 ∨ x2 with x1, x2 free.
        struct NotBoth;
        impl TheoryHook for NotBoth {
            fn on_model(&mut self, a: &Assignment) -> TheoryResponse {
                if a.value(Var::new(0)).is_true() && a.value(Var::new(1)).is_true() {
                    TheoryResponse::Conflict(vec![Var::new(0).negative(), Var::new(1).negative()])
                } else {
                    TheoryResponse::Ok
                }
            }
        }
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1, 2]);
        let result = s.solve_with_theory(&mut NotBoth);
        let model = result.model().unwrap();
        assert!(
            !(model.value(Var::new(0)).is_true() && model.value(Var::new(1)).is_true()),
            "theory constraint violated"
        );
    }

    #[test]
    fn theory_hook_can_force_unsat() {
        struct RejectAll;
        impl TheoryHook for RejectAll {
            fn on_model(&mut self, a: &Assignment) -> TheoryResponse {
                // Block every model by its full assignment.
                let clause = a
                    .iter()
                    .filter_map(|(v, t)| {
                        t.to_bool()
                            .map(|b| if b { v.negative() } else { v.positive() })
                    })
                    .collect();
                TheoryResponse::Conflict(clause)
            }
        }
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1, 2]);
        s.reserve_vars(2);
        assert_eq!(s.solve_with_theory(&mut RejectAll), SolveResult::Unsat);
        assert_eq!(s.stats().theory_conflicts, 3);
    }

    #[test]
    fn assumptions_basic() {
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1, 2]);
        s.add_dimacs_clause(&[-1, 3]);
        // Assume x1: model must have x1 and x3.
        let a1 = Var::new(0).positive();
        match s.solve_under(&[a1]) {
            SolveResult::Sat(m) => {
                assert!(m.value(Var::new(0)).is_true());
                assert!(m.value(Var::new(2)).is_true());
            }
            other => panic!("{other:?}"),
        }
        // Assume ¬x1 ∧ ¬x2: contradicts (x1 ∨ x2).
        let result = s.solve_under(&[Var::new(0).negative(), Var::new(1).negative()]);
        assert_eq!(result, SolveResult::Unsat);
        let failed = s.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        assert!(failed.iter().all(|l| l.var().index() <= 1));
        // The solver itself is still satisfiable afterwards.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn failed_assumptions_are_a_real_core() {
        // x1 → x2, x2 → x3; assume x1 and ¬x3 (conflict), plus an
        // irrelevant assumption on x4.
        let mut s = Solver::new();
        s.add_dimacs_clause(&[-1, 2]);
        s.add_dimacs_clause(&[-2, 3]);
        s.reserve_vars(4);
        let assumptions = [
            Var::new(3).positive(), // irrelevant
            Var::new(0).positive(),
            Var::new(2).negative(),
        ];
        assert_eq!(s.solve_under(&assumptions), SolveResult::Unsat);
        let failed = s.failed_assumptions().to_vec();
        // The core must contain the two genuinely conflicting assumptions;
        // the irrelevant one may or may not appear (we only guarantee a
        // subset of the assumptions that is itself unsat).
        assert!(
            failed.contains(&Var::new(0).positive()) || failed.contains(&Var::new(2).negative())
        );
        // Check the core is unsat as claimed: assert each core literal as
        // a unit in a fresh solver.
        let mut fresh = Solver::new();
        fresh.add_dimacs_clause(&[-1, 2]);
        fresh.add_dimacs_clause(&[-2, 3]);
        fresh.reserve_vars(4);
        for l in &failed {
            fresh.add_clause(&[*l]);
        }
        assert_eq!(
            fresh.solve(),
            SolveResult::Unsat,
            "core {failed:?} must be unsat"
        );
    }

    #[test]
    fn assumptions_respect_unsat_formula() {
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1]);
        s.add_dimacs_clause(&[-1]);
        assert_eq!(s.solve_under(&[Var::new(0).positive()]), SolveResult::Unsat);
    }

    #[test]
    fn repeated_assumption_queries_are_independent() {
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1, 2, 3]);
        for i in 0..3u32 {
            let lit = Var::new(i).positive();
            match s.solve_under(&[lit]) {
                SolveResult::Sat(m) => assert!(m.value(Var::new(i)).is_true()),
                other => panic!("{other:?}"),
            }
        }
        // All-negative assumptions contradict the clause.
        let all_neg: Vec<_> = (0..3).map(|i| Var::new(i).negative()).collect();
        assert_eq!(s.solve_under(&all_neg), SolveResult::Unsat);
    }

    fn dimacs_clauses() -> absolver_testkit::Gen<Vec<Vec<i32>>> {
        let lit = {
            let var = gen::ints(1i32..=8);
            let neg = gen::bool_any();
            absolver_testkit::Gen::new(move |src| {
                let v = var.generate(src);
                if neg.generate(src) {
                    -v
                } else {
                    v
                }
            })
        };
        gen::vec_of(gen::vec_of(lit, 1..4), 1..30)
    }

    property! {
        #![cases = 64]
        fn never_returns_wrong_model(clauses in dimacs_clauses()) {
            let mut cnf = absolver_logic::Cnf::new(8);
            for lits in &clauses {
                cnf.add_dimacs_clause(lits);
            }
            let mut s = Solver::from_cnf(&cnf);
            match s.solve() {
                SolveResult::Sat(model) => assert_eq!(cnf.eval(&model), Tri::True),
                SolveResult::Unsat => assert!(brute_force_sat(&cnf).is_none()),
                SolveResult::Unknown => panic!("no budget set"),
            }
        }
    }
}
