//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! This is the reproduction's stand-in for zChaff: the same algorithm family
//! (two-watched-literal propagation, first-UIP clause learning, VSIDS-style
//! activity decision heuristic, phase saving, Luby restarts, and learnt
//! clause database reduction), implemented from scratch.
//!
//! The solver also exposes a small DPLL(T)-style [`TheoryHook`] so that the
//! *tightly integrated* baseline solvers in `absolver-baselines` can attach
//! a theory checker to the Boolean search, which is the architectural
//! contrast the paper draws between ABsolver and MathSAT/CVC Lite.

use crate::theory::{TheoryHook, TheoryResponse};
use absolver_logic::{Assignment, Clause, Cnf, Lit, Tri, Var};
use std::fmt;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying total assignment was found.
    Sat(Assignment),
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Returns `true` for [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// The model, if SAT.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Search statistics, reset by [`Solver::reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learnt.
    pub learnt: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted: u64,
    /// Number of theory conflict clauses injected by a [`TheoryHook`].
    pub theory_conflicts: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learnt={} deleted={} theory_conflicts={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt,
            self.deleted,
            self.theory_conflicts
        )
    }
}

const CLAUSE_NONE: u32 = u32::MAX;

#[derive(Debug)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct VarState {
    value: Tri,
    level: u32,
    reason: u32,
}

/// A CDCL SAT solver with incremental clause addition.
///
/// ```
/// use absolver_logic::Var;
/// use absolver_sat::Solver;
///
/// let mut solver = Solver::new();
/// solver.add_dimacs_clause(&[1, 2]);
/// solver.add_dimacs_clause(&[-1, 2]);
/// solver.add_dimacs_clause(&[-2, 3]);
/// let result = solver.solve();
/// let model = result.model().expect("satisfiable");
/// assert!(model.value(Var::new(1)).is_true()); // x2 forced
/// assert!(model.value(Var::new(2)).is_true()); // x3 forced
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<ClauseData>,
    /// Watch lists indexed by literal code; clause indices watching that literal.
    watches: Vec<Vec<u32>>,
    vars: Vec<VarState>,
    /// Saved phases for phase-saving.
    phase: Vec<bool>,
    /// VSIDS activities.
    activity: Vec<f64>,
    /// Binary max-heap of variables ordered by activity.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `u32::MAX` if absent.
    heap_pos: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    var_inc: f64,
    cla_inc: f64,
    /// Set if a top-level conflict has been derived; the instance is UNSAT forever.
    unsat: bool,
    /// Conflict budget for [`Solver::solve`]; `u64::MAX` means unlimited.
    conflict_budget: u64,
    stats: SolverStats,
    /// Assumption literals of the active `solve_under` call.
    assumptions: Vec<Lit>,
    /// Failed-assumption subset of the last UNSAT `solve_under`.
    failed_assumptions: Vec<Lit>,
    // scratch buffers for conflict analysis
    seen: Vec<bool>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            vars: Vec::new(),
            phase: Vec::new(),
            activity: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            var_inc: 1.0,
            cla_inc: 1.0,
            unsat: false,
            conflict_budget: u64::MAX,
            stats: SolverStats::default(),
            assumptions: Vec::new(),
            failed_assumptions: Vec::new(),
            seen: Vec::new(),
        }
    }

    /// Creates a solver preloaded with a CNF formula.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause(c.lits());
        }
        s
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// Limits the number of conflicts a single [`Solver::solve`] call may
    /// spend before returning [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: u64) {
        self.conflict_budget = budget;
    }

    /// The VSIDS activity of every variable, indexed by variable number.
    /// Cube-and-conquer splitting reads this after a bounded probe run to
    /// pick high-activity branch variables.
    pub fn activities(&self) -> &[f64] {
        &self.activity
    }

    /// Deterministically reseeds the saved decision phases (SplitMix64 on
    /// `seed` and the variable index). Portfolio solving uses this to
    /// diversify otherwise-identical CDCL instances: different initial
    /// phases explore the search space in a different order without
    /// affecting soundness or completeness.
    pub fn scramble_phases(&mut self, seed: u64) {
        for (i, p) in self.phase.iter_mut().enumerate() {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *p = (z ^ (z >> 31)) & 1 == 1;
        }
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.vars.len() < n {
            let idx = self.vars.len() as u32;
            self.vars.push(VarState {
                value: Tri::Unknown,
                level: 0,
                reason: CLAUSE_NONE,
            });
            self.phase.push(false);
            self.activity.push(0.0);
            self.heap_pos.push(u32::MAX);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.seen.push(false);
            self.heap_insert(idx);
        }
    }

    /// Adds a clause; returns `false` if the clause (together with earlier
    /// ones) makes the instance trivially unsatisfiable.
    ///
    /// May be called between `solve` calls (incremental interface); the
    /// solver backtracks to the root level first.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if self.unsat {
            return false;
        }
        let max_var = lits.iter().map(|l| l.var().index() + 1).max().unwrap_or(0);
        self.reserve_vars(max_var);

        // Simplify: drop duplicate and root-false literals, detect tautology
        // and root-satisfied clauses.
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                Tri::True => return true, // already satisfied at root
                Tri::False => continue,
                Tri::Unknown => {
                    if simplified.contains(&!l) {
                        return true; // tautology
                    }
                    if !simplified.contains(&l) {
                        simplified.push(l);
                    }
                }
            }
        }
        match simplified.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(simplified[0], CLAUSE_NONE);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    /// Adds a clause given in DIMACS signed-integer notation.
    pub fn add_dimacs_clause(&mut self, lits: &[i32]) -> bool {
        let lits: Vec<Lit> = lits.iter().map(|&v| Lit::from_dimacs(v)).collect();
        self.add_clause(&lits)
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let id = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(id);
        self.watches[lits[1].code()].push(id);
        self.clauses.push(ClauseData {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        id
    }

    /// Current value of a literal.
    fn lit_value(&self, l: Lit) -> Tri {
        let v = self.vars[l.var().index()].value;
        if l.is_negated() {
            !v
        } else {
            v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert!(self.lit_value(l).is_unknown());
        let vi = l.var().index();
        self.vars[vi] = VarState {
            value: Tri::from(l.is_positive()),
            level: self.decision_level(),
            reason,
        };
        self.trail.push(l);
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'watchers: while i < watchers.len() {
                let ci = watchers[i];
                if self.clauses[ci as usize].deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                // Normalise: the falsified literal goes to slot 1.
                {
                    let lits = &mut self.clauses[ci as usize].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_value(first).is_true() {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if !self.lit_value(lk).is_false() {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.code()].push(ci);
                        watchers.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No replacement: clause is unit or conflicting.
                if self.lit_value(first).is_false() {
                    self.watches[false_lit.code()] = watchers;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
            self.watches[false_lit.code()] = watchers;
        }
        None
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for idx in (target..self.trail.len()).rev() {
            let l = self.trail[idx];
            let vi = l.var().index();
            self.phase[vi] = l.is_positive();
            self.vars[vi].value = Tri::Unknown;
            self.vars[vi].reason = CLAUSE_NONE;
            self.heap_insert(vi as u32);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    // ---- VSIDS heap -----------------------------------------------------

    fn heap_less(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn heap_insert(&mut self, v: u32) {
        if self.heap_pos[v as usize] != u32::MAX {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a] as usize] = a as u32;
        self.heap_pos[self.heap[b] as usize] = b as u32;
    }

    fn heap_pop(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top as usize] = u32::MAX;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.heap_pos[v];
        if pos != u32::MAX {
            self.heap_sift_up(pos as usize);
        }
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    // ---- conflict analysis ----------------------------------------------

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        let level = self.decision_level();

        loop {
            self.bump_clause(confl);
            let start = if p.is_some() { 1 } else { 0 };
            // Clone literals cheaply to appease the borrow checker.
            let lits: Vec<Lit> = self.clauses[confl as usize].lits[start..].to_vec();
            for q in lits {
                let vi = q.var().index();
                if !self.seen[vi] && self.vars[vi].level > 0 {
                    self.seen[vi] = true;
                    self.bump_var(vi);
                    if self.vars[vi].level >= level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let vi = lit.var().index();
            self.seen[vi] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            confl = self.vars[vi].reason;
            debug_assert!(confl != CLAUSE_NONE);
        }

        // Local clause minimisation: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        for &q in &learnt[1..] {
            let reason = self.vars[q.var().index()].reason;
            let redundant = reason != CLAUSE_NONE
                && self.clauses[reason as usize].lits[1..].iter().all(|&r| {
                    let ri = r.var().index();
                    self.seen[ri] || self.vars[ri].level == 0
                });
            if !redundant {
                minimized.push(q);
            }
        }

        // Compute backjump level and clear seen flags.
        for &q in &learnt[1..] {
            self.seen[q.var().index()] = false;
        }
        let mut back_level = 0;
        if minimized.len() > 1 {
            // Move the highest-level non-UIP literal to slot 1.
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.vars[minimized[i].var().index()].level
                    > self.vars[minimized[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            back_level = self.vars[minimized[1].var().index()].level;
        }
        (minimized, back_level)
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learnt += 1;
        match learnt.len() {
            0 => self.unsat = true,
            1 => {
                debug_assert_eq!(self.decision_level(), 0);
                if self.lit_value(learnt[0]).is_false() {
                    self.unsat = true;
                } else if self.lit_value(learnt[0]).is_unknown() {
                    self.enqueue(learnt[0], CLAUSE_NONE);
                }
            }
            _ => {
                let ci = self.attach_clause(learnt, true);
                self.bump_clause(ci);
                let first = self.clauses[ci as usize].lits[0];
                self.enqueue(first, ci);
            }
        }
    }

    /// Deletes the least active half of the learnt clauses (reason clauses
    /// and binary clauses are kept).
    fn reduce_db(&mut self) {
        let mut learnt_ids: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && c.lits.len() > 2 && !self.is_locked(i)
            })
            .collect();
        learnt_ids.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let remove = learnt_ids.len() / 2;
        for &ci in &learnt_ids[..remove] {
            self.clauses[ci as usize].deleted = true;
            self.stats.deleted += 1;
        }
    }

    fn is_locked(&self, ci: u32) -> bool {
        let first = self.clauses[ci as usize].lits[0];
        self.lit_value(first).is_true() && self.vars[first.var().index()].reason == ci
    }

    fn num_learnt(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count()
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.vars[v as usize].value.is_unknown() {
                let phase = self.phase[v as usize];
                return Some(Lit::new(Var::new(v), !phase));
            }
        }
        None
    }

    fn extract_model(&self) -> Assignment {
        let mut a = Assignment::new(self.vars.len());
        for (i, vs) in self.vars.iter().enumerate() {
            a.set(Var::new(i as u32), vs.value);
        }
        a
    }

    /// Luby restart sequence (1,1,2,1,1,2,4,...).
    fn luby(mut i: u64) -> u64 {
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i + 1 {
                k += 1;
            }
            if (1u64 << k) - 1 == i + 1 {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_theory(&mut ())
    }

    /// Solves under the given assumption literals (MiniSat-style
    /// incremental interface): the formula is checked together with the
    /// assumptions, without adding them as clauses. On UNSAT,
    /// [`Solver::failed_assumptions`] holds a subset of the assumptions
    /// whose conjunction is already contradictory (empty when the formula
    /// is unsatisfiable on its own).
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.assumptions = assumptions.to_vec();
        let result = self.solve_with_theory(&mut ());
        self.assumptions.clear();
        self.cancel_until(0);
        result
    }

    /// The failed-assumption subset of the most recent
    /// [`Solver::solve_under`] call that returned UNSAT.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed_assumptions
    }

    /// Computes the subset of assumption literals that (together with
    /// `failed`) is already contradictory — MiniSat's `analyzeFinal`.
    /// `failed` is the assumption found false on the current trail.
    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut out = vec![failed];
        if self.decision_level() == 0 {
            return out;
        }
        self.seen[failed.var().index()] = true;
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[idx];
            let vi = l.var().index();
            if !self.seen[vi] {
                continue;
            }
            let reason = self.vars[vi].reason;
            if reason == CLAUSE_NONE {
                // A decision: under assumption levels this is an earlier
                // assumption literal (true on the trail).
                out.push(l);
            } else {
                for &q in &self.clauses[reason as usize].lits[1..] {
                    if self.vars[q.var().index()].level > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[vi] = false;
        }
        self.seen[failed.var().index()] = false;
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Solves the current formula, consulting a DPLL(T)-style theory hook.
    ///
    /// The hook is invoked at every unit-propagation fixpoint and once more
    /// on each total Boolean model. When the hook reports a conflict clause,
    /// the solver backtracks to the root level, adds the clause, and resumes
    /// the search — the "tight integration" loop used by the baseline
    /// solvers in `absolver-baselines`.
    pub fn solve_with_theory<T: TheoryHook + ?Sized>(&mut self, theory: &mut T) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart_round = 0u64;
        let mut conflicts_left = Self::luby(restart_round) * 128;
        let mut max_learnt = (self.clauses.len().max(64) / 3).max(256);

        loop {
            if let Some(confl) = self.propagate() {
                // Boolean conflict.
                self.stats.conflicts += 1;
                conflicts_left = conflicts_left.saturating_sub(1);
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                let (learnt, back_level) = self.analyze(confl);
                self.cancel_until(back_level);
                self.record_learnt(learnt);
                if self.unsat {
                    return SolveResult::Unsat;
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.stats.conflicts - start_conflicts >= self.conflict_budget {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                continue;
            }

            // Propagation fixpoint: give the theory a chance to object.
            if theory.wants_fixpoint_checks() {
                match theory.on_fixpoint(&self.extract_model()) {
                    TheoryResponse::Ok => {}
                    TheoryResponse::Conflict(clause) => {
                        self.stats.theory_conflicts += 1;
                        self.cancel_until(0);
                        if !self.add_clause(&clause) {
                            return SolveResult::Unsat;
                        }
                        continue;
                    }
                }
            }

            if conflicts_left == 0 {
                // Restart.
                self.stats.restarts += 1;
                restart_round += 1;
                conflicts_left = Self::luby(restart_round) * 128;
                self.cancel_until(0);
            }

            if self.num_learnt() > max_learnt {
                self.reduce_db();
                max_learnt += max_learnt / 10;
            }

            // Apply pending assumptions as pseudo-decisions before any
            // free decision (MiniSat-style incremental interface).
            if (self.decision_level() as usize) < self.assumptions.len() {
                let a = self.assumptions[self.decision_level() as usize];
                self.reserve_vars(a.var().index() + 1);
                match self.lit_value(a) {
                    Tri::True => {
                        // Already satisfied: open a dummy level to keep
                        // level indexing aligned with assumption ranks.
                        self.trail_lim.push(self.trail.len());
                    }
                    Tri::False => {
                        self.failed_assumptions = self.analyze_final(a);
                        self.cancel_until(0);
                        return SolveResult::Unsat;
                    }
                    Tri::Unknown => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, CLAUSE_NONE);
                    }
                }
                continue;
            }

            match self.pick_branch() {
                None => {
                    // Total Boolean model; final theory check.
                    let model = self.extract_model();
                    match theory.on_model(&model) {
                        TheoryResponse::Ok => {
                            self.cancel_until(0);
                            return SolveResult::Sat(model);
                        }
                        TheoryResponse::Conflict(clause) => {
                            self.stats.theory_conflicts += 1;
                            self.cancel_until(0);
                            if !self.add_clause(&clause) {
                                return SolveResult::Unsat;
                            }
                        }
                    }
                }
                Some(decision) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(decision, CLAUSE_NONE);
                }
            }
        }
    }

    /// Adds a clause forbidding the given total assignment restricted to
    /// `vars` (a *blocking clause*), enabling all-models enumeration.
    ///
    /// Returns `false` if this makes the formula unsatisfiable.
    pub fn block_assignment(&mut self, model: &Assignment, vars: &[Var]) -> bool {
        let clause: Vec<Lit> = vars
            .iter()
            .filter_map(|&v| match model.value(v) {
                Tri::True => Some(v.negative()),
                Tri::False => Some(v.positive()),
                Tri::Unknown => None,
            })
            .collect();
        self.add_clause(&clause)
    }
}

/// Converts the solver's clause database back into a [`Cnf`] (original,
/// non-deleted clauses only). Mainly useful in tests and diagnostics.
impl From<&Solver> for Cnf {
    fn from(s: &Solver) -> Cnf {
        let mut cnf = Cnf::new(s.num_vars());
        for c in s.clauses.iter().filter(|c| !c.learnt && !c.deleted) {
            cnf.add_clause(Clause::new(c.lits.clone()));
        }
        cnf
    }
}
