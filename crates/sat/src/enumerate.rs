//! All-models enumeration (the "LSAT mode").
//!
//! The paper highlights two routes to obtaining *all* satisfying
//! assignments (Sec. 4): using a dedicated all-solutions solver such as
//! LSAT, or — with any single-solution SAT backend — ABsolver's internal
//! bookkeeping, which repeatedly re-invokes the solver with blocking
//! clauses "at the expense of the time required for restarting the entire
//! solving process externally".
//!
//! [`ModelIter`] implements the efficient in-process variant: the learnt
//! clause database and heuristic state survive between successive models,
//! which is what makes the Sudoku benchmarks fast. The restart-based
//! variant is provided as [`enumerate_with_restarts`] so the cost
//! difference can be measured (see the ablation bench in `absolver-bench`).

use crate::{SolveResult, Solver};
use absolver_logic::{Assignment, Cnf, Var};

/// Iterator over all models of a solver's formula, projected onto a set of
/// variables.
///
/// Each yielded model is blocked before the next search, so every projected
/// assignment is produced exactly once. Projection matters: blocking on all
/// variables would enumerate irrelevant don't-care combinations.
///
/// ```
/// use absolver_logic::Var;
/// use absolver_sat::{ModelIter, Solver};
///
/// let mut solver = Solver::new();
/// solver.add_dimacs_clause(&[1, 2]);
/// let vars = vec![Var::new(0), Var::new(1)];
/// let models: Vec<_> = ModelIter::new(&mut solver, vars).collect();
/// assert_eq!(models.len(), 3); // TT, TF, FT
/// ```
#[derive(Debug)]
pub struct ModelIter<'a> {
    solver: &'a mut Solver,
    projection: Vec<Var>,
    exhausted: bool,
}

impl<'a> ModelIter<'a> {
    /// Creates an enumerator over `solver`'s models projected onto
    /// `projection`.
    pub fn new(solver: &'a mut Solver, projection: Vec<Var>) -> ModelIter<'a> {
        ModelIter {
            solver,
            projection,
            exhausted: false,
        }
    }

    /// Creates an enumerator projecting onto all of the solver's variables.
    pub fn over_all_vars(solver: &'a mut Solver) -> ModelIter<'a> {
        let projection = (0..solver.num_vars()).map(|i| Var::new(i as u32)).collect();
        ModelIter::new(solver, projection)
    }
}

impl Iterator for ModelIter<'_> {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        if self.exhausted {
            return None;
        }
        match self.solver.solve() {
            SolveResult::Sat(model) => {
                if !self.solver.block_assignment(&model, &self.projection) {
                    self.exhausted = true;
                }
                Some(model)
            }
            _ => {
                self.exhausted = true;
                None
            }
        }
    }
}

/// Enumerates all models of `cnf` projected onto `projection` by restarting
/// a *fresh* solver for every model — the external-restart strategy the
/// paper describes for backends that cannot enumerate natively.
///
/// Functionally equivalent to [`ModelIter`] but discards all learnt clauses
/// between models; `max_models` bounds the enumeration.
pub fn enumerate_with_restarts(
    cnf: &Cnf,
    projection: &[Var],
    max_models: usize,
) -> Vec<Assignment> {
    let mut blocked: Vec<Vec<i32>> = Vec::new();
    let mut models = Vec::new();
    while models.len() < max_models {
        // Restart: rebuild the entire solver from scratch.
        let mut solver = Solver::from_cnf(cnf);
        for b in &blocked {
            solver.add_dimacs_clause(b);
        }
        match solver.solve() {
            SolveResult::Sat(model) => {
                let clause: Vec<i32> = projection
                    .iter()
                    .filter_map(|&v| {
                        model.value(v).to_bool().map(|b| {
                            let d = (v.index() + 1) as i32;
                            if b {
                                -d
                            } else {
                                d
                            }
                        })
                    })
                    .collect();
                if clause.is_empty() {
                    models.push(model);
                    break;
                }
                blocked.push(clause);
                models.push(model);
            }
            _ => break,
        }
    }
    models
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_exactly_projected_models() {
        // x1 ∨ x2, free x3 — projected onto {x1, x2} there are 3 models.
        let mut solver = Solver::new();
        solver.add_dimacs_clause(&[1, 2]);
        solver.reserve_vars(3);
        let models: Vec<_> = ModelIter::new(&mut solver, vec![Var::new(0), Var::new(1)]).collect();
        assert_eq!(models.len(), 3);
        // All projected models distinct.
        let mut keys: Vec<(bool, bool)> = models
            .iter()
            .map(|m| {
                (
                    m.value(Var::new(0)).to_bool().unwrap(),
                    m.value(Var::new(1)).to_bool().unwrap(),
                )
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 3);
        assert!(!keys.contains(&(false, false)));
    }

    #[test]
    fn unsat_formula_yields_no_models() {
        let mut solver = Solver::new();
        solver.add_dimacs_clause(&[1]);
        solver.add_dimacs_clause(&[-1]);
        assert_eq!(ModelIter::over_all_vars(&mut solver).count(), 0);
    }

    #[test]
    fn full_projection_counts_all_assignments() {
        // (x1 ∨ x2 ∨ x3) has 7 models over 3 vars.
        let mut solver = Solver::new();
        solver.add_dimacs_clause(&[1, 2, 3]);
        assert_eq!(ModelIter::over_all_vars(&mut solver).count(), 7);
    }

    #[test]
    fn restart_variant_agrees_with_incremental() {
        let mut cnf = Cnf::new(4);
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[-3, 4]);
        let projection: Vec<Var> = (0..4).map(Var::new).collect();
        let restarted = enumerate_with_restarts(&cnf, &projection, usize::MAX);
        let mut solver = Solver::from_cnf(&cnf);
        let incremental: Vec<_> = ModelIter::new(&mut solver, projection).collect();
        assert_eq!(restarted.len(), incremental.len());
        assert_eq!(restarted.len(), 3 * 3); // (x1∨x2: 3) × (x3→x4: 3)
    }

    #[test]
    fn max_models_caps_restart_enumeration() {
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause(&[1, 2, 3]);
        let projection: Vec<Var> = (0..3).map(Var::new).collect();
        assert_eq!(enumerate_with_restarts(&cnf, &projection, 2).len(), 2);
    }
}
