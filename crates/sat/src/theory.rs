//! DPLL(T)-style theory hook.
//!
//! ABsolver itself couples SAT and theory solvers *loosely*, through its
//! orchestrating control loop. The baselines it is compared against
//! (MathSAT, CVC Lite) couple them *tightly*: the theory checker runs inside
//! the Boolean search. [`TheoryHook`] is the small interface that enables
//! the latter style on top of [`crate::Solver`], so the reproduction can
//! measure both architectures (Tables 2 and 3 of the paper).

use absolver_logic::{Assignment, Lit};

/// Response of a theory check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryResponse {
    /// The assignment is theory-consistent (so far).
    Ok,
    /// The assignment is theory-inconsistent; the clause must be added to
    /// the Boolean formula. It should be falsified by the current
    /// assignment, and typically encodes the negation of an inconsistent
    /// subset of theory atoms.
    Conflict(Vec<Lit>),
}

/// A theory checker attached to the CDCL search.
pub trait TheoryHook {
    /// Whether [`TheoryHook::on_fixpoint`] should be called at every unit
    /// propagation fixpoint (early pruning). When `false`, only total models
    /// are checked.
    fn wants_fixpoint_checks(&self) -> bool {
        false
    }

    /// Called at a unit-propagation fixpoint with the current (typically
    /// partial) assignment.
    fn on_fixpoint(&mut self, _assignment: &Assignment) -> TheoryResponse {
        TheoryResponse::Ok
    }

    /// Called with a total Boolean model before the solver declares SAT.
    fn on_model(&mut self, assignment: &Assignment) -> TheoryResponse;
}

/// The trivial theory: accepts everything (plain SAT solving).
impl TheoryHook for () {
    fn on_model(&mut self, _assignment: &Assignment) -> TheoryResponse {
        TheoryResponse::Ok
    }
}
