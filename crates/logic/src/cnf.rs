//! Clauses, CNF formulas, and (partial) assignments.

use crate::{Lit, Tri, Var};
use std::fmt;

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(lits: Vec<Lit>) -> Clause {
        Clause { lits }
    }

    /// The literals of the clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` for the empty clause (which is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains both a literal and its
    /// negation and is thus trivially satisfied.
    pub fn is_tautology(&self) -> bool {
        let mut sorted = self.lits.clone();
        sorted.sort_unstable();
        sorted.windows(2).any(|w| w[0] == !w[1] || w[1] == !w[0])
    }

    /// Removes duplicate literals in place (order not preserved).
    pub fn dedup(&mut self) {
        self.lits.sort_unstable();
        self.lits.dedup();
    }

    /// Evaluates the clause under a partial assignment.
    pub fn eval(&self, assignment: &Assignment) -> Tri {
        let mut acc = Tri::False;
        for &l in &self.lits {
            acc = acc | assignment.lit_value(l);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Clause {
        Clause {
            lits: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;
    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;
    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return f.write_str("⊥");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A CNF formula: a conjunction of [`Clause`]s over a fixed variable count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Appends a clause, growing the variable count if the clause mentions a
    /// new variable.
    pub fn add_clause(&mut self, clause: Clause) {
        for l in &clause {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Convenience: appends a clause given as DIMACS-style signed integers.
    ///
    /// # Panics
    ///
    /// Panics if any literal is `0`.
    pub fn add_dimacs_clause(&mut self, lits: &[i32]) {
        self.add_clause(lits.iter().map(|&v| Lit::from_dimacs(v)).collect());
    }

    /// Allocates and returns a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Rolls the formula back to its first `num_clauses` clauses and
    /// `num_vars` variables — the undo primitive of incremental solve
    /// sessions (`push`/`pop`). Clauses and variables are append-only, so
    /// a snapshot of the two counts fully identifies an earlier state.
    ///
    /// # Panics
    ///
    /// Panics if a surviving clause mentions a variable being removed
    /// (the snapshot would not come from this formula's own history).
    pub fn truncate(&mut self, num_clauses: usize, num_vars: usize) {
        self.clauses.truncate(num_clauses);
        assert!(
            self.clauses
                .iter()
                .flat_map(|c| c.iter())
                .all(|l| l.var().index() < num_vars),
            "Cnf::truncate: surviving clause mentions a removed variable"
        );
        self.num_vars = self.num_vars.min(num_vars);
    }

    /// Evaluates the formula under a partial assignment.
    pub fn eval(&self, assignment: &Assignment) -> Tri {
        let mut acc = Tri::True;
        for c in &self.clauses {
            acc = acc & c.eval(assignment);
            if acc.is_false() {
                break;
            }
        }
        acc
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.add_clause(c);
        }
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Cnf {
        let mut cnf = Cnf::new(0);
        cnf.extend(iter);
        cnf
    }
}

/// A (partial) truth assignment to Boolean variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    values: Vec<Tri>,
}

impl Assignment {
    /// Creates an all-unknown assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Assignment {
        Assignment {
            values: vec![Tri::Unknown; num_vars],
        }
    }

    /// Creates a total assignment from booleans (index = variable index).
    pub fn from_bools(values: impl IntoIterator<Item = bool>) -> Assignment {
        Assignment {
            values: values.into_iter().map(Tri::from).collect(),
        }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of a variable (`Unknown` for out-of-range variables).
    pub fn value(&self, var: Var) -> Tri {
        self.values
            .get(var.index())
            .copied()
            .unwrap_or(Tri::Unknown)
    }

    /// Value of a literal under this assignment.
    pub fn lit_value(&self, lit: Lit) -> Tri {
        let v = self.value(lit.var());
        if lit.is_negated() {
            !v
        } else {
            v
        }
    }

    /// Sets a variable, growing the assignment if necessary.
    pub fn set(&mut self, var: Var, value: Tri) {
        if var.index() >= self.values.len() {
            self.values.resize(var.index() + 1, Tri::Unknown);
        }
        self.values[var.index()] = value;
    }

    /// Sets a literal to true (i.e. its variable to the matching polarity).
    pub fn assert_lit(&mut self, lit: Lit) {
        self.set(lit.var(), Tri::from(lit.is_positive()));
    }

    /// Returns `true` if every covered variable has a known value.
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|v| !v.is_unknown())
    }

    /// Iterates over `(Var, Tri)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Tri)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &t)| (Var::new(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        Lit::from_dimacs(v)
    }

    #[test]
    fn clause_eval_three_valued() {
        let c = Clause::new(vec![lit(1), lit(-2)]);
        let mut a = Assignment::new(2);
        assert_eq!(c.eval(&a), Tri::Unknown);
        a.set(Var::new(1), Tri::True); // x2 = true, so ¬x2 = false
        assert_eq!(c.eval(&a), Tri::Unknown);
        a.set(Var::new(0), Tri::False);
        assert_eq!(c.eval(&a), Tri::False);
        a.set(Var::new(0), Tri::True);
        assert_eq!(c.eval(&a), Tri::True);
    }

    #[test]
    fn empty_clause_is_false() {
        let c = Clause::default();
        assert!(c.is_empty());
        assert_eq!(c.eval(&Assignment::new(0)), Tri::False);
        assert_eq!(c.to_string(), "⊥");
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::new(vec![lit(1), lit(-1)]).is_tautology());
        assert!(!Clause::new(vec![lit(1), lit(2)]).is_tautology());
        assert!(Clause::new(vec![lit(2), lit(1), lit(-2)]).is_tautology());
    }

    #[test]
    fn dedup() {
        let mut c = Clause::new(vec![lit(1), lit(2), lit(1)]);
        c.dedup();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cnf_eval_and_growth() {
        let mut cnf = Cnf::new(0);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[2, 3]);
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.len(), 2);
        let a = Assignment::from_bools([true, true, false]);
        assert_eq!(cnf.eval(&a), Tri::True);
        let a = Assignment::from_bools([false, true, false]);
        assert_eq!(cnf.eval(&a), Tri::False);
        let mut partial = Assignment::new(3);
        partial.set(Var::new(0), Tri::True);
        assert_eq!(cnf.eval(&partial), Tri::Unknown);
    }

    #[test]
    fn fresh_var() {
        let mut cnf = Cnf::new(2);
        let v = cnf.fresh_var();
        assert_eq!(v.index(), 2);
        assert_eq!(cnf.num_vars(), 3);
    }

    #[test]
    fn assignment_basics() {
        let mut a = Assignment::new(1);
        assert!(!a.is_total());
        a.assert_lit(lit(-3)); // grows to 3 vars, x3 = false
        assert_eq!(a.len(), 3);
        assert_eq!(a.value(Var::new(2)), Tri::False);
        assert_eq!(a.lit_value(lit(-3)), Tri::True);
        assert_eq!(a.value(Var::new(99)), Tri::Unknown);
        let total = Assignment::from_bools([true, false]);
        assert!(total.is_total());
        let pairs: Vec<_> = total.iter().collect();
        assert_eq!(
            pairs,
            vec![(Var::new(0), Tri::True), (Var::new(1), Tri::False)]
        );
    }

    #[test]
    fn cnf_from_iterator() {
        let cnf: Cnf = vec![Clause::new(vec![lit(1)]), Clause::new(vec![lit(-2)])]
            .into_iter()
            .collect();
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.len(), 2);
    }
}
