//! The 3-valued logic domain `B = 𝔹 ∪ {?}`.
//!
//! The paper's circuit core evaluates gates over `{tt, ff, ?}`, where `?`
//! means "a theory solver still has to determine this value" (Sec. 2 and
//! Fig. 5). [`Tri`] is that domain with strong-Kleene connectives: a gate
//! output is only `?` when the known inputs do not already force it.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A truth value in 3-valued (strong Kleene) logic.
///
/// ```
/// use absolver_logic::Tri;
///
/// assert_eq!(Tri::True & Tri::Unknown, Tri::Unknown);
/// assert_eq!(Tri::False & Tri::Unknown, Tri::False);
/// assert_eq!(Tri::True | Tri::Unknown, Tri::True);
/// assert_eq!(!Tri::Unknown, Tri::Unknown);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tri {
    /// Definitely true (`tt`).
    True,
    /// Definitely false (`ff`).
    False,
    /// Not yet determined (`?`).
    #[default]
    Unknown,
}

impl Tri {
    /// Returns `true` iff the value is [`Tri::True`].
    pub fn is_true(self) -> bool {
        self == Tri::True
    }

    /// Returns `true` iff the value is [`Tri::False`].
    pub fn is_false(self) -> bool {
        self == Tri::False
    }

    /// Returns `true` iff the value is [`Tri::Unknown`].
    pub fn is_unknown(self) -> bool {
        self == Tri::Unknown
    }

    /// Converts to `Option<bool>`, mapping `?` to `None`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tri::True => Some(true),
            Tri::False => Some(false),
            Tri::Unknown => None,
        }
    }

    /// Strong-Kleene implication `self → rhs`.
    pub fn implies(self, rhs: Tri) -> Tri {
        !self | rhs
    }

    /// Strong-Kleene exclusive or.
    pub fn xor(self, rhs: Tri) -> Tri {
        match (self, rhs) {
            (Tri::Unknown, _) | (_, Tri::Unknown) => Tri::Unknown,
            (a, b) if a == b => Tri::False,
            _ => Tri::True,
        }
    }

    /// Equivalence `self ↔ rhs`.
    pub fn iff(self, rhs: Tri) -> Tri {
        !self.xor(rhs)
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

impl From<Option<bool>> for Tri {
    fn from(b: Option<bool>) -> Tri {
        match b {
            Some(true) => Tri::True,
            Some(false) => Tri::False,
            None => Tri::Unknown,
        }
    }
}

impl Not for Tri {
    type Output = Tri;
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

impl BitAnd for Tri {
    type Output = Tri;
    fn bitand(self, rhs: Tri) -> Tri {
        match (self, rhs) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }
}

impl BitOr for Tri {
    type Output = Tri;
    fn bitor(self, rhs: Tri) -> Tri {
        match (self, rhs) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tri::True => "tt",
            Tri::False => "ff",
            Tri::Unknown => "?",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Tri; 3] = [Tri::True, Tri::False, Tri::Unknown];

    #[test]
    fn kleene_truth_tables() {
        assert_eq!(Tri::True & Tri::True, Tri::True);
        assert_eq!(Tri::True & Tri::False, Tri::False);
        assert_eq!(Tri::Unknown & Tri::False, Tri::False);
        assert_eq!(Tri::Unknown & Tri::True, Tri::Unknown);
        assert_eq!(Tri::Unknown & Tri::Unknown, Tri::Unknown);
        assert_eq!(Tri::False | Tri::False, Tri::False);
        assert_eq!(Tri::Unknown | Tri::True, Tri::True);
        assert_eq!(Tri::Unknown | Tri::False, Tri::Unknown);
    }

    #[test]
    fn negation_involution() {
        for t in ALL {
            assert_eq!(!!t, t);
        }
    }

    #[test]
    fn de_morgan() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn implication_and_iff() {
        assert_eq!(Tri::False.implies(Tri::Unknown), Tri::True);
        assert_eq!(Tri::True.implies(Tri::Unknown), Tri::Unknown);
        assert_eq!(Tri::Unknown.implies(Tri::True), Tri::True);
        assert_eq!(Tri::True.iff(Tri::True), Tri::True);
        assert_eq!(Tri::True.iff(Tri::False), Tri::False);
        assert_eq!(Tri::True.iff(Tri::Unknown), Tri::Unknown);
    }

    #[test]
    fn xor_table() {
        assert_eq!(Tri::True.xor(Tri::False), Tri::True);
        assert_eq!(Tri::True.xor(Tri::True), Tri::False);
        assert_eq!(Tri::False.xor(Tri::False), Tri::False);
        assert_eq!(Tri::Unknown.xor(Tri::True), Tri::Unknown);
    }

    #[test]
    fn conversions() {
        assert_eq!(Tri::from(true), Tri::True);
        assert_eq!(Tri::from(Some(false)), Tri::False);
        assert_eq!(Tri::from(None), Tri::Unknown);
        assert_eq!(Tri::True.to_bool(), Some(true));
        assert_eq!(Tri::Unknown.to_bool(), None);
        assert_eq!(Tri::default(), Tri::Unknown);
    }

    #[test]
    fn consistent_with_bool_on_known_values() {
        for a in [true, false] {
            for b in [true, false] {
                assert_eq!(Tri::from(a) & Tri::from(b), Tri::from(a && b));
                assert_eq!(Tri::from(a) | Tri::from(b), Tri::from(a || b));
                assert_eq!(Tri::from(a).xor(Tri::from(b)), Tri::from(a ^ b));
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Tri::True.to_string(), "tt");
        assert_eq!(Tri::False.to_string(), "ff");
        assert_eq!(Tri::Unknown.to_string(), "?");
    }
}
