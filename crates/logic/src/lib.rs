//! Propositional building blocks for the ABsolver constraint-solving
//! library: 3-valued truth values, literals, clauses, CNF formulas, partial
//! assignments, and DIMACS I/O.
//!
//! The 3-valued domain [`Tri`] mirrors the paper's `B = 𝔹 ∪ {?}` (Sec. 2):
//! `?` marks atoms whose truth a theory solver has not yet determined. The
//! DIMACS layer ([`dimacs`]) keeps comment lines intact so that
//! `absolver-core` can store arithmetic constraint definitions in them
//! while any off-the-shelf SAT solver still accepts the file.
//!
//! ```
//! use absolver_logic::{dimacs, Assignment, Tri};
//!
//! let file = dimacs::parse("p cnf 2 2\n1 -2 0\n2 0\n")?;
//! let model = Assignment::from_bools([true, true]);
//! assert_eq!(file.cnf.eval(&model), Tri::True);
//! # Ok::<(), dimacs::ParseDimacsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
pub mod dimacs;
mod lit;
mod tri;

pub use cnf::{Assignment, Clause, Cnf};
pub use lit::{Lit, Var};
pub use tri::Tri;
