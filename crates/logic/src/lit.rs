//! Boolean variables and literals.
//!
//! [`Var`] is a 0-based variable index; [`Lit`] packs a variable and a sign
//! into a single `u32` (the usual MiniSat encoding `var << 1 | negated`),
//! which keeps the SAT solver's watch lists flat and cache-friendly.

use std::fmt;

/// A Boolean variable, identified by a 0-based index.
///
/// In the DIMACS external format variables are 1-based; use
/// [`Lit::from_dimacs`] / [`Lit::to_dimacs`] at the I/O boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 0-based index.
    pub fn new(index: u32) -> Var {
        Var(index)
    }

    /// The 0-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, false)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, true)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`, negated if `negated` is true.
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | negated as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if the literal is positive.
    pub fn is_positive(self) -> bool {
        !self.is_negated()
    }

    /// The packed code (`var << 1 | negated`); useful as an array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its packed code.
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Parses a non-zero DIMACS literal (`3` → var 2 positive, `-3` → var 2
    /// negated).
    ///
    /// # Panics
    ///
    /// Panics if `value == 0` (DIMACS reserves 0 as the clause terminator).
    pub fn from_dimacs(value: i32) -> Lit {
        assert!(value != 0, "DIMACS literal must be non-zero");
        let var = Var(value.unsigned_abs() - 1);
        Lit::new(var, value < 0)
    }

    /// The signed 1-based DIMACS form of this literal.
    pub fn to_dimacs(self) -> i32 {
        let v = (self.var().0 + 1) as i32;
        if self.is_negated() {
            -v
        } else {
            v
        }
    }

    /// Evaluates the literal under a polarity of its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value ^ self.is_negated()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trip() {
        for idx in [0u32, 1, 2, 1000] {
            let v = Var::new(idx);
            let p = v.positive();
            let n = v.negative();
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.is_positive() && !p.is_negated());
            assert!(n.is_negated() && !n.is_positive());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(Lit::from_code(p.code()), p);
        }
    }

    #[test]
    fn dimacs_round_trip() {
        for v in [1, -1, 5, -42, i32::MAX] {
            assert_eq!(Lit::from_dimacs(v).to_dimacs(), v);
        }
        assert_eq!(Lit::from_dimacs(3).var().index(), 2);
        assert!(Lit::from_dimacs(-3).is_negated());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn eval() {
        let x = Var::new(0);
        assert!(x.positive().eval(true));
        assert!(!x.positive().eval(false));
        assert!(!x.negative().eval(true));
        assert!(x.negative().eval(false));
    }

    #[test]
    fn display() {
        assert_eq!(Var::new(0).to_string(), "x1");
        assert_eq!(Var::new(2).positive().to_string(), "x3");
        assert_eq!(Var::new(2).negative().to_string(), "¬x3");
    }
}
