//! Plain DIMACS CNF reading and writing.
//!
//! This handles the *Boolean* layer of the paper's input format: a standard
//! `p cnf <vars> <clauses>` header followed by zero-terminated clauses.
//! Comment lines (`c …`) are preserved for the caller, because ABsolver's
//! extended format (`absolver-core`) encodes arithmetic constraint
//! definitions in them — a plain SAT solver simply ignores them, which is
//! exactly the backwards-compatibility trick of Sec. 1.1.
//!
//! Besides the formula itself, the parser records *source locations*:
//! the line/column where each comment's text starts and the line where
//! each clause begins. Higher layers (the extended-format parser and the
//! static analyzer) use these to report findings with exact spans.

use crate::{Clause, Cnf, Lit};
use std::fmt;

/// The result of parsing a DIMACS file: the CNF plus all comment lines (with
/// the leading `c ` stripped), in order of appearance, and the source
/// locations needed for precise downstream diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DimacsFile {
    /// The Boolean formula.
    pub cnf: Cnf,
    /// Comment lines, `c ` prefix removed, original order.
    pub comments: Vec<String>,
    /// Per comment (parallel to [`DimacsFile::comments`]): the 1-based
    /// line number and the 1-based column where the comment *text* (after
    /// the `c ` marker) starts in the original input.
    pub comment_spans: Vec<(usize, usize)>,
    /// Per clause (parallel to `cnf.clauses()`): the 1-based line number
    /// where the clause's first literal appears.
    pub clause_lines: Vec<usize>,
    /// The variable count declared in the `p cnf` header, if one was
    /// present (the actual count may have been grown beyond it).
    pub declared_vars: Option<usize>,
}

/// Error produced when parsing malformed DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    col: usize,
    kind: String,
}

impl ParseDimacsError {
    fn new(line: usize, col: usize, kind: impl Into<String>) -> ParseDimacsError {
        ParseDimacsError {
            line,
            col,
            kind: kind.into(),
        }
    }

    /// 1-based line number of the offending input line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the offending token within its line.
    pub fn column(&self) -> usize {
        self.col
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DIMACS parse error at line {}, column {}: {}",
            self.line, self.col, self.kind
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Iterates over the whitespace-separated tokens of `line` together with
/// the 1-based column where each token starts (byte-based; input is ASCII
/// in practice).
fn tokens_with_cols(line: &str) -> impl Iterator<Item = (usize, &str)> {
    line.split_whitespace().map(move |tok| {
        let off = tok.as_ptr() as usize - line.as_ptr() as usize;
        (off + 1, tok)
    })
}

/// Parses DIMACS CNF text.
///
/// Tolerates clauses spanning multiple lines, missing headers (the formula
/// size is then inferred), and variables beyond the declared count (the
/// count is grown). Comment lines are collected verbatim (minus the `c`
/// marker) for higher layers to interpret.
///
/// # Errors
///
/// Returns an error for malformed headers or non-integer clause tokens.
///
/// ```
/// use absolver_logic::dimacs;
///
/// let file = dimacs::parse("p cnf 2 2\nc hello\n1 -2 0\n2 0\n")?;
/// assert_eq!(file.cnf.num_vars(), 2);
/// assert_eq!(file.cnf.len(), 2);
/// assert_eq!(file.comments, vec!["hello"]);
/// assert_eq!(file.comment_spans, vec![(2, 3)]);
/// assert_eq!(file.clause_lines, vec![3, 4]);
/// assert_eq!(file.declared_vars, Some(2));
/// # Ok::<(), dimacs::ParseDimacsError>(())
/// ```
pub fn parse(text: &str) -> Result<DimacsFile, ParseDimacsError> {
    let mut cnf = Cnf::new(0);
    let mut comments = Vec::new();
    let mut comment_spans = Vec::new();
    let mut clause_lines = Vec::new();
    let mut declared_vars = 0usize;
    let mut header_vars: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();
    let mut current_line: Option<usize> = None;
    let mut seen_header = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        let indent = raw.len() - raw.trim_start().len();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('c') {
            // `c` alone, or `c <comment>`; anything else ("cxyz") is a comment too
            // per common DIMACS practice.
            let stripped_space = rest.starts_with(' ');
            let text_start = indent + 1 + usize::from(stripped_space);
            comments.push(rest.strip_prefix(' ').unwrap_or(rest).to_string());
            comment_spans.push((lineno, text_start + 1));
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if seen_header {
                return Err(ParseDimacsError::new(
                    lineno,
                    indent + 1,
                    "duplicate problem line",
                ));
            }
            seen_header = true;
            let mut it = tokens_with_cols(rest);
            // Columns below are relative to `rest`; shift by the `p` marker
            // plus any indentation to report positions in the raw line.
            let shift = indent + 1;
            match it.next() {
                Some((_, "cnf")) => {}
                other => {
                    let (col, word) = other.unwrap_or((rest.len() + 1, ""));
                    return Err(ParseDimacsError::new(
                        lineno,
                        col + shift,
                        format!("expected `p cnf`, found `p {word}`"),
                    ));
                }
            }
            let (vars_col, vars_tok) = it.next().unwrap_or((rest.len() + 1, ""));
            declared_vars = vars_tok.parse().map_err(|_| {
                ParseDimacsError::new(lineno, vars_col + shift, "bad variable count")
            })?;
            header_vars = Some(declared_vars);
            let (clauses_col, clauses_tok) = it.next().unwrap_or((rest.len() + 1, ""));
            let _declared_clauses: usize = clauses_tok.parse().map_err(|_| {
                ParseDimacsError::new(lineno, clauses_col + shift, "bad clause count")
            })?;
            continue;
        }
        for (col, tok) in tokens_with_cols(raw) {
            let v: i32 = tok.parse().map_err(|_| {
                ParseDimacsError::new(lineno, col, format!("invalid literal `{tok}`"))
            })?;
            if v == 0 {
                cnf.add_clause(Clause::new(std::mem::take(&mut current)));
                clause_lines.push(current_line.take().unwrap_or(lineno));
            } else {
                current.push(Lit::from_dimacs(v));
                current_line.get_or_insert(lineno);
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(Clause::new(current));
        clause_lines.push(current_line.unwrap_or(1));
    }
    if cnf.num_vars() < declared_vars {
        // Honour declared count even if trailing variables are unused.
        let missing = declared_vars - cnf.num_vars();
        for _ in 0..missing {
            cnf.fresh_var();
        }
    }
    Ok(DimacsFile {
        cnf,
        comments,
        comment_spans,
        clause_lines,
        declared_vars: header_vars,
    })
}

/// Renders a CNF in DIMACS format, with optional comment lines placed after
/// the header (as ABsolver's extended format expects).
///
/// ```
/// use absolver_logic::{dimacs, Cnf};
///
/// let mut cnf = Cnf::new(2);
/// cnf.add_dimacs_clause(&[1, -2]);
/// let text = dimacs::write(&cnf, &["a comment".to_string()]);
/// assert_eq!(text, "p cnf 2 1\n1 -2 0\nc a comment\n");
/// ```
pub fn write(cnf: &Cnf, comments: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.len()));
    for clause in cnf.clauses() {
        for lit in clause {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    for c in comments {
        if c.is_empty() {
            out.push_str("c\n");
        } else {
            out.push_str("c ");
            out.push_str(c);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let f = parse("p cnf 3 2\n1 2 -3 0\n-1 0\n").unwrap();
        assert_eq!(f.cnf.num_vars(), 3);
        assert_eq!(f.cnf.len(), 2);
        assert_eq!(f.cnf.clauses()[0].len(), 3);
        assert_eq!(f.cnf.clauses()[1].lits()[0], Lit::from_dimacs(-1));
        assert_eq!(f.clause_lines, vec![2, 3]);
        assert_eq!(f.declared_vars, Some(3));
    }

    #[test]
    fn parse_multiline_clause_and_missing_header() {
        let f = parse("1 2\n3 0 -1 0").unwrap();
        assert_eq!(f.cnf.len(), 2);
        assert_eq!(f.cnf.num_vars(), 3);
        // A multi-line clause is located at its first literal.
        assert_eq!(f.clause_lines, vec![1, 2]);
        assert_eq!(f.declared_vars, None);
    }

    #[test]
    fn parse_collects_comments() {
        let f = parse("c first\np cnf 1 1\nc def int 1 i >= 0\n1 0\nc\n").unwrap();
        assert_eq!(f.comments, vec!["first", "def int 1 i >= 0", ""]);
        assert_eq!(f.comment_spans, vec![(1, 3), (3, 3), (5, 2)]);
    }

    #[test]
    fn comment_spans_account_for_indentation() {
        let f = parse("p cnf 1 1\n  c note here\n1 0\n").unwrap();
        assert_eq!(f.comments, vec!["note here"]);
        // Two spaces of indent, `c`, one space: text starts at column 5.
        assert_eq!(f.comment_spans, vec![(2, 5)]);
    }

    #[test]
    fn parse_grows_beyond_declared() {
        let f = parse("p cnf 1 1\n5 0\n").unwrap();
        assert_eq!(f.cnf.num_vars(), 5);
        assert_eq!(f.declared_vars, Some(1));
    }

    #[test]
    fn parse_honours_declared_when_unused() {
        let f = parse("p cnf 7 1\n1 0\n").unwrap();
        assert_eq!(f.cnf.num_vars(), 7);
    }

    #[test]
    fn parse_trailing_clause_without_zero() {
        let f = parse("p cnf 2 1\n1 2\n").unwrap();
        assert_eq!(f.cnf.len(), 1);
        assert_eq!(f.cnf.clauses()[0].len(), 2);
        assert_eq!(f.clause_lines, vec![2]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("p dnf 1 1\n").is_err());
        assert!(parse("p cnf x 1\n").is_err());
        assert!(parse("p cnf 1\n").is_err());
        assert!(parse("p cnf 1 1\n1 a 0\n").is_err());
        let err = parse("p cnf 1 1\np cnf 1 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 1);
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn parse_errors_carry_columns() {
        // Wrong format keyword: `dnf` starts at column 3.
        let err = parse("p dnf 1 1\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 3));
        // Bad variable count at column 7.
        let err = parse("p cnf x 1\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 7));
        // Missing clause count: reported past the end of the line.
        let err = parse("p cnf 1\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.column() > 7);
        // Bad literal `a` at line 2, column 3.
        let err = parse("p cnf 1 1\n1 a 0\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 3));
    }

    #[test]
    fn write_round_trip() {
        let original = "p cnf 4 3\n1 0\n-2 3 0\n4 0\nc def int 1 i >= 0\n";
        let f = parse(original).unwrap();
        let rendered = write(&f.cnf, &f.comments);
        assert_eq!(rendered, original);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed, f);
    }

    #[test]
    fn write_empty_formula() {
        let cnf = Cnf::new(0);
        assert_eq!(write(&cnf, &[]), "p cnf 0 0\n");
    }
}
