//! Plain DIMACS CNF reading and writing.
//!
//! This handles the *Boolean* layer of the paper's input format: a standard
//! `p cnf <vars> <clauses>` header followed by zero-terminated clauses.
//! Comment lines (`c …`) are preserved for the caller, because ABsolver's
//! extended format (`absolver-core`) encodes arithmetic constraint
//! definitions in them — a plain SAT solver simply ignores them, which is
//! exactly the backwards-compatibility trick of Sec. 1.1.

use crate::{Clause, Cnf, Lit};
use std::fmt;

/// The result of parsing a DIMACS file: the CNF plus all comment lines (with
/// the leading `c ` stripped), in order of appearance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DimacsFile {
    /// The Boolean formula.
    pub cnf: Cnf,
    /// Comment lines, `c ` prefix removed, original order.
    pub comments: Vec<String>,
}

/// Error produced when parsing malformed DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    kind: String,
}

impl ParseDimacsError {
    fn new(line: usize, kind: impl Into<String>) -> ParseDimacsError {
        ParseDimacsError { line, kind: kind.into() }
    }

    /// 1-based line number of the offending input line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMACS parse error at line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// Tolerates clauses spanning multiple lines, missing headers (the formula
/// size is then inferred), and variables beyond the declared count (the
/// count is grown). Comment lines are collected verbatim (minus the `c`
/// marker) for higher layers to interpret.
///
/// # Errors
///
/// Returns an error for malformed headers or non-integer clause tokens.
///
/// ```
/// use absolver_logic::dimacs;
///
/// let file = dimacs::parse("p cnf 2 2\nc hello\n1 -2 0\n2 0\n")?;
/// assert_eq!(file.cnf.num_vars(), 2);
/// assert_eq!(file.cnf.len(), 2);
/// assert_eq!(file.comments, vec!["hello"]);
/// # Ok::<(), dimacs::ParseDimacsError>(())
/// ```
pub fn parse(text: &str) -> Result<DimacsFile, ParseDimacsError> {
    let mut cnf = Cnf::new(0);
    let mut comments = Vec::new();
    let mut declared_vars = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    let mut seen_header = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('c') {
            // `c` alone, or `c <comment>`; anything else ("cxyz") is a comment too
            // per common DIMACS practice.
            comments.push(rest.strip_prefix(' ').unwrap_or(rest).to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if seen_header {
                return Err(ParseDimacsError::new(lineno, "duplicate problem line"));
            }
            seen_header = true;
            let mut it = rest.split_whitespace();
            match it.next() {
                Some("cnf") => {}
                other => {
                    return Err(ParseDimacsError::new(
                        lineno,
                        format!("expected `p cnf`, found `p {}`", other.unwrap_or("")),
                    ))
                }
            }
            declared_vars = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::new(lineno, "bad variable count"))?;
            let _declared_clauses: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::new(lineno, "bad clause count"))?;
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i32 = tok.parse().map_err(|_| {
                ParseDimacsError::new(lineno, format!("invalid literal `{tok}`"))
            })?;
            if v == 0 {
                cnf.add_clause(Clause::new(std::mem::take(&mut current)));
            } else {
                current.push(Lit::from_dimacs(v));
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(Clause::new(current));
    }
    if cnf.num_vars() < declared_vars {
        // Honour declared count even if trailing variables are unused.
        let missing = declared_vars - cnf.num_vars();
        for _ in 0..missing {
            cnf.fresh_var();
        }
    }
    Ok(DimacsFile { cnf, comments })
}

/// Renders a CNF in DIMACS format, with optional comment lines placed after
/// the header (as ABsolver's extended format expects).
///
/// ```
/// use absolver_logic::{dimacs, Cnf};
///
/// let mut cnf = Cnf::new(2);
/// cnf.add_dimacs_clause(&[1, -2]);
/// let text = dimacs::write(&cnf, &["a comment".to_string()]);
/// assert_eq!(text, "p cnf 2 1\n1 -2 0\nc a comment\n");
/// ```
pub fn write(cnf: &Cnf, comments: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.len()));
    for clause in cnf.clauses() {
        for lit in clause {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    for c in comments {
        if c.is_empty() {
            out.push_str("c\n");
        } else {
            out.push_str("c ");
            out.push_str(c);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let f = parse("p cnf 3 2\n1 2 -3 0\n-1 0\n").unwrap();
        assert_eq!(f.cnf.num_vars(), 3);
        assert_eq!(f.cnf.len(), 2);
        assert_eq!(f.cnf.clauses()[0].len(), 3);
        assert_eq!(f.cnf.clauses()[1].lits()[0], Lit::from_dimacs(-1));
    }

    #[test]
    fn parse_multiline_clause_and_missing_header() {
        let f = parse("1 2\n3 0 -1 0").unwrap();
        assert_eq!(f.cnf.len(), 2);
        assert_eq!(f.cnf.num_vars(), 3);
    }

    #[test]
    fn parse_collects_comments() {
        let f = parse("c first\np cnf 1 1\nc def int 1 i >= 0\n1 0\nc\n").unwrap();
        assert_eq!(f.comments, vec!["first", "def int 1 i >= 0", ""]);
    }

    #[test]
    fn parse_grows_beyond_declared() {
        let f = parse("p cnf 1 1\n5 0\n").unwrap();
        assert_eq!(f.cnf.num_vars(), 5);
    }

    #[test]
    fn parse_honours_declared_when_unused() {
        let f = parse("p cnf 7 1\n1 0\n").unwrap();
        assert_eq!(f.cnf.num_vars(), 7);
    }

    #[test]
    fn parse_trailing_clause_without_zero() {
        let f = parse("p cnf 2 1\n1 2\n").unwrap();
        assert_eq!(f.cnf.len(), 1);
        assert_eq!(f.cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("p dnf 1 1\n").is_err());
        assert!(parse("p cnf x 1\n").is_err());
        assert!(parse("p cnf 1\n").is_err());
        assert!(parse("p cnf 1 1\n1 a 0\n").is_err());
        let err = parse("p cnf 1 1\np cnf 1 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn write_round_trip() {
        let original = "p cnf 4 3\n1 0\n-2 3 0\n4 0\nc def int 1 i >= 0\n";
        let f = parse(original).unwrap();
        let rendered = write(&f.cnf, &f.comments);
        assert_eq!(rendered, original);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed, f);
    }

    #[test]
    fn write_empty_formula() {
        let cnf = Cnf::new(0);
        assert_eq!(write(&cnf, &[]), "p cnf 0 0\n");
    }
}
