//! Automatic test-case generation with decision coverage (paper Sec. 6).
//!
//! "Further possible use-cases of ABsolver include the automatic
//! generation of test cases. Since ABsolver, internally, determines the
//! solutions by computing all possible assignments, common coverage
//! metrics like path coverage can be obtained for free in this setting."
//!
//! [`generate_tests`] implements that use-case: every relational decision
//! of a model (each arithmetic atom of the extracted AB-problem) and the
//! queried output are *coverage targets* in both polarities; for each
//! target the solver is asked for an input vector driving the model to
//! that decision outcome. Targets no input can reach are reported as
//! unreachable rather than silently skipped. Expected outputs come from
//! simulating the original diagram, so every test vector is a complete
//! `(inputs, expected outputs)` pair ready for a test bench.

use crate::convert::{diagram_to_ab, ConvertError, ConvertOptions, Query};
use crate::diagram::Diagram;
use absolver_core::{AbProblem, Orchestrator, Outcome};
use absolver_logic::Lit;
use std::fmt;

/// One generated test: concrete inputs plus expected outport values.
#[derive(Debug, Clone, PartialEq)]
pub struct TestVector {
    /// Input values, in inport declaration order.
    pub inputs: Vec<f64>,
    /// Expected Boolean outport values, in outport declaration order
    /// (obtained by simulating the diagram).
    pub outputs: Vec<bool>,
}

/// A coverage target: a decision (arithmetic atom) or the queried output,
/// at a required polarity.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageTarget {
    /// Human-readable description of the decision.
    pub description: String,
    /// The required outcome of the decision.
    pub polarity: bool,
    /// Index into [`TestSuite::vectors`] of the covering test, if any.
    pub covered_by: Option<usize>,
}

/// The generated suite plus its coverage accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TestSuite {
    /// Deduplicated test vectors.
    pub vectors: Vec<TestVector>,
    /// All targets with their coverage status.
    pub targets: Vec<CoverageTarget>,
}

impl TestSuite {
    /// Number of covered targets.
    pub fn covered(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| t.covered_by.is_some())
            .count()
    }

    /// Number of targets proven unreachable (no input can produce them).
    pub fn unreachable(&self) -> usize {
        self.targets.len() - self.covered()
    }

    /// Coverage ratio over *reachable* targets (1.0 when every reachable
    /// decision outcome is exercised).
    pub fn coverage(&self) -> f64 {
        if self.targets.is_empty() {
            1.0
        } else {
            self.covered() as f64 / self.targets.len() as f64
        }
    }
}

impl fmt::Display for TestSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} test vectors, {}/{} targets covered ({} unreachable)",
            self.vectors.len(),
            self.covered(),
            self.targets.len(),
            self.unreachable()
        )
    }
}

/// Generates a decision-coverage test suite for `output` of `diagram`.
///
/// # Errors
///
/// Propagates conversion errors (unknown output, type mismatch).
pub fn generate_tests(diagram: &Diagram, output: &str) -> Result<TestSuite, ConvertError> {
    // Convert twice, once per output polarity: the resulting problems
    // share the atom structure, only the asserted output literal differs.
    let mut options = ConvertOptions::reachable(output);
    options.assume_ranges = true;
    let reach = diagram_to_ab(diagram, &options)?;
    options.query = Query::Falsifiable(output.to_string());
    let falsify = diagram_to_ab(diagram, &options)?;

    let mut suite = TestSuite::default();
    let mut orc = Orchestrator::with_defaults();

    // Output coverage: one vector per output polarity.
    for (problem, polarity) in [(&reach, true), (&falsify, false)] {
        let target = CoverageTarget {
            description: format!("output `{output}`"),
            polarity,
            covered_by: None,
        };
        let covered_by = solve_to_vector(&mut orc, problem, None, diagram, &mut suite.vectors);
        suite.targets.push(CoverageTarget {
            covered_by,
            ..target
        });
    }

    // Decision coverage: each atom, both polarities, under the weaker
    // query (output reachable) — atoms identical in both conversions, so
    // cover them against the disjunction by trying each problem.
    // Atoms forced by unit clauses (e.g. asserted input-range assumptions)
    // are axioms of the analysis, not decisions — skip them.
    let forced: Vec<u32> = reach
        .cnf()
        .clauses()
        .iter()
        .filter(|c| c.len() == 1)
        .map(|c| c.lits()[0].var().index() as u32)
        .collect();
    for (var, def) in reach.defs() {
        if forced.contains(&(var.index() as u32)) {
            continue;
        }
        let description = def
            .constraints
            .first()
            .map(|c| c.to_string())
            .unwrap_or_else(|| format!("atom {var}"));
        for polarity in [true, false] {
            let lit = if polarity {
                var.positive()
            } else {
                var.negative()
            };
            let mut covered_by =
                solve_to_vector(&mut orc, &reach, Some(lit), diagram, &mut suite.vectors);
            if covered_by.is_none() {
                covered_by =
                    solve_to_vector(&mut orc, &falsify, Some(lit), diagram, &mut suite.vectors);
            }
            suite.targets.push(CoverageTarget {
                description: format!("decision [{description}]"),
                polarity,
                covered_by,
            });
        }
    }
    Ok(suite)
}

/// Solves `problem` (+ an optional forced literal); on SAT, decodes the
/// arithmetic witness into an input vector, simulates the diagram for the
/// expected outputs, dedups, and returns the vector index.
fn solve_to_vector(
    orc: &mut Orchestrator,
    problem: &AbProblem,
    forced: Option<Lit>,
    diagram: &Diagram,
    vectors: &mut Vec<TestVector>,
) -> Option<usize> {
    let constrained;
    let problem = match forced {
        Some(lit) => {
            constrained = problem.with_clause([lit]);
            &constrained
        }
        None => problem,
    };
    match orc.solve(problem) {
        Ok(Outcome::Sat(model)) => {
            let inputs: Vec<f64> = (0..problem.arith_vars().len())
                .map(|v| model.arith.value_f64(v).unwrap_or(0.0))
                .collect();
            let outputs = diagram.simulate(&inputs);
            let vector = TestVector { inputs, outputs };
            let index = vectors
                .iter()
                .position(|v| v == &vector)
                .unwrap_or_else(|| {
                    vectors.push(vector);
                    vectors.len() - 1
                });
            Some(index)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::{Block, LogicOp};
    use absolver_core::VarKind;
    use absolver_linear::CmpOp;
    use absolver_num::{Interval, Rational};

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    /// ok := (x ≥ 2) ∧ (x² ≤ 50), x ∈ [0, 10].
    fn small_monitor() -> Diagram {
        let mut d = Diagram::new();
        let x = d
            .inport("x", VarKind::Real, Interval::new(0.0, 10.0))
            .unwrap();
        let two = d.constant(q(2)).unwrap();
        let fifty = d.constant(q(50)).unwrap();
        let ge = d.add(Block::RelOp(CmpOp::Ge), vec![x, two]).unwrap();
        let sq = d.mul(x, x).unwrap();
        let le = d.add(Block::RelOp(CmpOp::Le), vec![sq, fifty]).unwrap();
        let and = d.add(Block::Logic(LogicOp::And), vec![ge, le]).unwrap();
        d.outport("ok", and).unwrap();
        d
    }

    #[test]
    fn full_coverage_on_coverable_model() {
        let d = small_monitor();
        let suite = generate_tests(&d, "ok").unwrap();
        // Every decision outcome of this model is reachable.
        assert_eq!(suite.unreachable(), 0, "{suite}");
        assert!(suite.coverage() >= 1.0 - 1e-12);
        assert!(!suite.vectors.is_empty());
        // Expected outputs must agree with a fresh simulation.
        for v in &suite.vectors {
            assert_eq!(d.simulate(&v.inputs), v.outputs);
        }
        // Both output polarities exercised.
        let outs: Vec<bool> = suite.vectors.iter().map(|v| v.outputs[0]).collect();
        assert!(outs.contains(&true) && outs.contains(&false));
    }

    #[test]
    fn unreachable_targets_are_reported() {
        // trap := (x ≥ 2) ∧ (x ≤ 1) can never be true; its atoms are each
        // coverable but the output's true-polarity is unreachable.
        let mut d = Diagram::new();
        let x = d
            .inport("x", VarKind::Real, Interval::new(0.0, 10.0))
            .unwrap();
        let two = d.constant(q(2)).unwrap();
        let one = d.constant(q(1)).unwrap();
        let ge = d.add(Block::RelOp(CmpOp::Ge), vec![x, two]).unwrap();
        let le = d.add(Block::RelOp(CmpOp::Le), vec![x, one]).unwrap();
        let and = d.add(Block::Logic(LogicOp::And), vec![ge, le]).unwrap();
        d.outport("trap", and).unwrap();
        let suite = generate_tests(&d, "trap").unwrap();
        let output_true = suite
            .targets
            .iter()
            .find(|t| t.description.contains("output") && t.polarity)
            .unwrap();
        assert!(output_true.covered_by.is_none(), "trap=true is unreachable");
        let output_false = suite
            .targets
            .iter()
            .find(|t| t.description.contains("output") && !t.polarity)
            .unwrap();
        assert!(output_false.covered_by.is_some());
        assert_eq!(suite.unreachable(), 1);
    }

    #[test]
    fn vectors_are_deduplicated() {
        let d = small_monitor();
        let suite = generate_tests(&d, "ok").unwrap();
        for i in 0..suite.vectors.len() {
            for j in (i + 1)..suite.vectors.len() {
                assert_ne!(suite.vectors[i], suite.vectors[j]);
            }
        }
        // Fewer vectors than targets (sharing happens).
        assert!(suite.vectors.len() <= suite.targets.len());
    }

    #[test]
    fn display_summarises() {
        let suite = generate_tests(&small_monitor(), "ok").unwrap();
        let text = suite.to_string();
        assert!(text.contains("test vectors"));
        assert!(text.contains("targets covered"));
    }
}
