//! The automated conversion work-flow (paper Fig. 3):
//! block diagram → LUSTRE node → AB-problem.
//!
//! Given a combinational [`Diagram`], [`diagram_to_lustre`] produces the
//! textual intermediate representation (the SCADE/LUSTRE step of the
//! paper), and [`lustre_to_ab`] extracts the multi-domain constraint
//! satisfaction problem: the Boolean structure becomes a 3-valued
//! [`Circuit`] lowered to CNF by Tseitin transformation, and every
//! relational block becomes an arithmetic constraint definition bound to
//! its Tseitin variable.

use crate::diagram::{Block, Diagram, Factor, LogicOp, Sign, UnaryFn};
use crate::lustre::{BinOp, LustreExpr, LustreNode, LustreType, UnOp};
use absolver_core::{AbProblem, Circuit, NodeId, VarKind};
use absolver_linear::CmpOp;
use absolver_nonlinear::{ConstraintId, Expr, NlConstraint};
use absolver_num::{Interval, Rational};
use std::collections::HashMap;
use std::fmt;

/// What to ask of the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Is there an input valuation making the named output **true**?
    Reachable(String),
    /// Is there an input valuation making the named output **false**
    /// (i.e. can the property be violated)? UNSAT then means the property
    /// holds for all inputs in range.
    Falsifiable(String),
}

/// Options of the LUSTRE → AB extraction.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// The query to encode.
    pub query: Query,
    /// Assert each numeric input's physical range as constraints (forced
    /// true), in addition to using it as the interval search box.
    pub assume_ranges: bool,
}

impl ConvertOptions {
    /// Reachability query for `output` with range assumptions on.
    pub fn reachable(output: &str) -> ConvertOptions {
        ConvertOptions {
            query: Query::Reachable(output.to_string()),
            assume_ranges: true,
        }
    }

    /// Falsification query for `output` with range assumptions on.
    pub fn falsifiable(output: &str) -> ConvertOptions {
        ConvertOptions {
            query: Query::Falsifiable(output.to_string()),
            assume_ranges: true,
        }
    }
}

/// Error of the conversion pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertError {
    message: String,
}

impl ConvertError {
    fn new(m: impl Into<String>) -> ConvertError {
        ConvertError { message: m.into() }
    }
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conversion error: {}", self.message)
    }
}

impl std::error::Error for ConvertError {}

// ---------------------------------------------------------------------------
// Diagram → LUSTRE
// ---------------------------------------------------------------------------

/// Converts a diagram to a LUSTRE node plus the physical ranges of its
/// numeric inputs (which LUSTRE itself cannot carry).
pub fn diagram_to_lustre(diagram: &Diagram) -> (LustreNode, HashMap<String, Interval>) {
    let mut node = LustreNode {
        name: "model".to_string(),
        ..LustreNode::default()
    };
    let mut ranges = HashMap::new();
    let mut flow: Vec<String> = Vec::with_capacity(diagram.len());

    for (id, block) in diagram.iter() {
        let srcs: Vec<LustreExpr> = diagram
            .inputs(id)
            .iter()
            .map(|&s| LustreExpr::ident(&flow[s.0]))
            .collect();
        let name = format!("t{}", id.0);
        match block {
            Block::Inport {
                name: n,
                kind,
                range,
            } => {
                let t = match kind {
                    VarKind::Int => LustreType::Int,
                    VarKind::Real => LustreType::Real,
                };
                node.inputs.push((n.clone(), t));
                ranges.insert(n.clone(), *range);
                flow.push(n.clone());
                continue;
            }
            Block::Outport { name: n } => {
                node.outputs.push((n.clone(), LustreType::Bool));
                node.equations
                    .push((n.clone(), srcs.into_iter().next().unwrap()));
                flow.push(n.clone());
                continue;
            }
            _ => {}
        }
        let (ty, expr) = match block {
            Block::Constant(c) => (LustreType::Real, LustreExpr::Num(c.clone())),
            Block::Sum(signs) => {
                let mut it = signs.iter().zip(srcs);
                let (s0, e0) = it.next().expect("sum has inputs");
                let first = match s0 {
                    Sign::Plus => e0,
                    Sign::Minus => LustreExpr::unary(UnOp::Neg, e0),
                };
                let e = it.fold(first, |acc, (s, e)| match s {
                    Sign::Plus => LustreExpr::binary(BinOp::Add, acc, e),
                    Sign::Minus => LustreExpr::binary(BinOp::Sub, acc, e),
                });
                (LustreType::Real, e)
            }
            Block::Product(factors) => {
                let mut it = factors.iter().zip(srcs);
                let (f0, e0) = it.next().expect("product has inputs");
                let first = match f0 {
                    Factor::Mul => e0,
                    Factor::Div => {
                        LustreExpr::binary(BinOp::Div, LustreExpr::Num(Rational::one()), e0)
                    }
                };
                let e = it.fold(first, |acc, (f, e)| match f {
                    Factor::Mul => LustreExpr::binary(BinOp::Mul, acc, e),
                    Factor::Div => LustreExpr::binary(BinOp::Div, acc, e),
                });
                (LustreType::Real, e)
            }
            Block::Gain(g) => (
                LustreType::Real,
                LustreExpr::binary(
                    BinOp::Mul,
                    LustreExpr::Num(g.clone()),
                    srcs.into_iter().next().unwrap(),
                ),
            ),
            Block::Unary(f) => {
                let a = srcs.into_iter().next().unwrap();
                let e = match f {
                    UnaryFn::Abs => LustreExpr::unary(UnOp::Abs, a),
                    UnaryFn::Sqrt => LustreExpr::unary(UnOp::Sqrt, a),
                    UnaryFn::Sin => LustreExpr::unary(UnOp::Sin, a),
                    UnaryFn::Cos => LustreExpr::unary(UnOp::Cos, a),
                    UnaryFn::Exp => LustreExpr::unary(UnOp::Exp, a),
                    UnaryFn::Square => LustreExpr::binary(BinOp::Mul, a.clone(), a),
                };
                (LustreType::Real, e)
            }
            Block::RelOp(op) => {
                let mut it = srcs.into_iter();
                let (a, b) = (it.next().unwrap(), it.next().unwrap());
                let bop = match op {
                    CmpOp::Lt => BinOp::Lt,
                    CmpOp::Le => BinOp::Le,
                    CmpOp::Gt => BinOp::Gt,
                    CmpOp::Ge => BinOp::Ge,
                    CmpOp::Eq => BinOp::Eq,
                };
                (LustreType::Bool, LustreExpr::binary(bop, a, b))
            }
            Block::Logic(op) => {
                let mut it = srcs.into_iter();
                let e = match op {
                    LogicOp::Not => LustreExpr::unary(UnOp::Not, it.next().unwrap()),
                    LogicOp::Xor => {
                        let a = it.next().unwrap();
                        let b = it.next().unwrap();
                        LustreExpr::binary(BinOp::Xor, a, b)
                    }
                    // Balanced folding keeps expression depth logarithmic
                    // for wide gates (associative operators only).
                    LogicOp::And => balanced_fold(BinOp::And, it.collect()),
                    LogicOp::Or => balanced_fold(BinOp::Or, it.collect()),
                };
                (LustreType::Bool, e)
            }
            Block::Inport { .. } | Block::Outport { .. } => unreachable!("handled above"),
        };
        node.locals.push((name.clone(), ty));
        node.equations.push((name.clone(), expr));
        flow.push(name);
    }
    (node, ranges)
}

/// Folds an associative binary operator over the items as a balanced tree.
fn balanced_fold(op: BinOp, mut items: Vec<LustreExpr>) -> LustreExpr {
    debug_assert!(!items.is_empty());
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(LustreExpr::binary(op, a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop().expect("nonempty")
}

// ---------------------------------------------------------------------------
// LUSTRE → AB-problem
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Inlined {
    Arith(Expr),
    Boolean(NodeId),
}

struct Extractor<'a> {
    node: &'a LustreNode,
    circuit: Circuit,
    /// numeric input name → arithmetic variable id
    arith_inputs: HashMap<String, usize>,
    /// Boolean input name → circuit input pin
    bool_inputs: HashMap<String, usize>,
    /// memoised flows
    memo: HashMap<String, Inlined>,
    /// constraints, one per atom pin
    atoms: Vec<NlConstraint>,
    /// structural atom sharing, keyed on the interned constraint id
    /// (hash-consing makes id equality structural equality)
    atom_index: HashMap<ConstraintId, usize>,
}

impl Extractor<'_> {
    fn flow(&mut self, name: &str) -> Result<Inlined, ConvertError> {
        if let Some(v) = self.memo.get(name) {
            return Ok(v.clone());
        }
        let out = if let Some(&v) = self.arith_inputs.get(name) {
            Inlined::Arith(Expr::var(v))
        } else if let Some(&pin) = self.bool_inputs.get(name) {
            Inlined::Boolean(self.circuit.bool_input(pin))
        } else {
            let e = self
                .node
                .equation(name)
                .ok_or_else(|| ConvertError::new(format!("flow `{name}` has no equation")))?;
            self.convert(e)?
        };
        self.memo.insert(name.to_string(), out.clone());
        Ok(out)
    }

    fn arith(&mut self, e: &LustreExpr) -> Result<Expr, ConvertError> {
        match self.convert(e)? {
            Inlined::Arith(x) => Ok(x),
            Inlined::Boolean(_) => Err(ConvertError::new(format!(
                "expected numeric expression, got boolean `{e}`"
            ))),
        }
    }

    fn boolean(&mut self, e: &LustreExpr) -> Result<NodeId, ConvertError> {
        match self.convert(e)? {
            Inlined::Boolean(n) => Ok(n),
            Inlined::Arith(_) => Err(ConvertError::new(format!(
                "expected boolean expression, got numeric `{e}`"
            ))),
        }
    }

    fn atom(&mut self, lhs: Expr, op: CmpOp, rhs: Expr) -> NodeId {
        // Keep a constant RHS when available, else normalise to `… ⋈ 0`.
        let constraint = match rhs {
            Expr::Const(c) => NlConstraint::new(lhs.simplify(), op, c),
            rhs => NlConstraint::new((lhs - rhs).simplify(), op, Rational::zero()),
        };
        let index = *self.atom_index.entry(constraint.cid()).or_insert_with(|| {
            self.atoms.push(constraint);
            self.atoms.len() - 1
        });
        self.circuit.atom(index)
    }

    fn convert(&mut self, e: &LustreExpr) -> Result<Inlined, ConvertError> {
        Ok(match e {
            LustreExpr::Num(q) => Inlined::Arith(Expr::constant(q.clone())),
            LustreExpr::Bool(b) => {
                let t = if *b {
                    absolver_logic::Tri::True
                } else {
                    absolver_logic::Tri::False
                };
                Inlined::Boolean(self.circuit.constant(t))
            }
            LustreExpr::Ident(n) => self.flow(n)?,
            LustreExpr::Unary(op, a) => match op {
                UnOp::Not => {
                    let n = self.boolean(a)?;
                    Inlined::Boolean(self.circuit.not(n))
                }
                UnOp::Neg => Inlined::Arith(-self.arith(a)?),
                UnOp::Abs => Inlined::Arith(self.arith(a)?.abs()),
                UnOp::Sqrt => Inlined::Arith(self.arith(a)?.sqrt()),
                UnOp::Sin => Inlined::Arith(self.arith(a)?.sin()),
                UnOp::Cos => Inlined::Arith(self.arith(a)?.cos()),
                UnOp::Exp => Inlined::Arith(self.arith(a)?.exp()),
            },
            LustreExpr::Binary(op, a, b) => match op {
                BinOp::Add => Inlined::Arith(self.arith(a)? + self.arith(b)?),
                BinOp::Sub => Inlined::Arith(self.arith(a)? - self.arith(b)?),
                BinOp::Mul => Inlined::Arith(self.arith(a)? * self.arith(b)?),
                BinOp::Div => Inlined::Arith(self.arith(a)? / self.arith(b)?),
                BinOp::And => {
                    let (x, y) = (self.boolean(a)?, self.boolean(b)?);
                    Inlined::Boolean(self.circuit.and(vec![x, y]))
                }
                BinOp::Or => {
                    let (x, y) = (self.boolean(a)?, self.boolean(b)?);
                    Inlined::Boolean(self.circuit.or(vec![x, y]))
                }
                BinOp::Xor => {
                    let (x, y) = (self.boolean(a)?, self.boolean(b)?);
                    Inlined::Boolean(self.circuit.xor(x, y))
                }
                BinOp::Implies => {
                    let (x, y) = (self.boolean(a)?, self.boolean(b)?);
                    Inlined::Boolean(self.circuit.implies(x, y))
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let (x, y) = (self.arith(a)?, self.arith(b)?);
                    let op = match op {
                        BinOp::Lt => CmpOp::Lt,
                        BinOp::Le => CmpOp::Le,
                        BinOp::Gt => CmpOp::Gt,
                        _ => CmpOp::Ge,
                    };
                    Inlined::Boolean(self.atom(x, op, y))
                }
                BinOp::Eq => {
                    // Equality is equivalence on bool flows, an arithmetic
                    // atom on numeric flows.
                    match self.convert(a)? {
                        Inlined::Boolean(x) => {
                            let y = self.boolean(b)?;
                            Inlined::Boolean(self.circuit.iff(x, y))
                        }
                        Inlined::Arith(x) => {
                            let y = self.arith(b)?;
                            Inlined::Boolean(self.atom(x, CmpOp::Eq, y))
                        }
                    }
                }
            },
        })
    }
}

/// Extracts an AB-problem from a LUSTRE node: the paper's "extract the
/// multi-domain constraint satisfaction problems" step.
///
/// `ranges` supplies physical input ranges (used as interval search boxes
/// and, with [`ConvertOptions::assume_ranges`], as asserted constraints).
///
/// # Errors
///
/// Returns [`ConvertError`] for unknown outputs, type mismatches, or
/// invalid nodes.
pub fn lustre_to_ab(
    node: &LustreNode,
    ranges: &HashMap<String, Interval>,
    options: &ConvertOptions,
) -> Result<AbProblem, ConvertError> {
    node.validate().map_err(ConvertError::new)?;
    let output_name = match &options.query {
        Query::Reachable(n) | Query::Falsifiable(n) => n.clone(),
    };
    if !node
        .outputs
        .iter()
        .any(|(n, t)| n == &output_name && *t == LustreType::Bool)
    {
        return Err(ConvertError::new(format!(
            "`{output_name}` is not a boolean output of node `{}`",
            node.name
        )));
    }

    // Allocate arithmetic variables for numeric inputs, circuit pins for
    // boolean inputs.
    let mut extractor = Extractor {
        node,
        circuit: Circuit::new(),
        arith_inputs: HashMap::new(),
        bool_inputs: HashMap::new(),
        memo: HashMap::new(),
        atoms: Vec::new(),
        atom_index: HashMap::new(),
    };
    let mut arith_order: Vec<(String, VarKind)> = Vec::new();
    for (name, ty) in &node.inputs {
        match ty {
            LustreType::Bool => {
                let pin = extractor.bool_inputs.len();
                extractor.bool_inputs.insert(name.clone(), pin);
            }
            LustreType::Int | LustreType::Real => {
                let id = arith_order.len();
                extractor.arith_inputs.insert(name.clone(), id);
                arith_order.push((
                    name.clone(),
                    if *ty == LustreType::Int {
                        VarKind::Int
                    } else {
                        VarKind::Real
                    },
                ));
            }
        }
    }

    // Build the circuit for the queried output.
    let out_node = match extractor.flow(&output_name)? {
        Inlined::Boolean(n) => n,
        Inlined::Arith(_) => {
            return Err(ConvertError::new(format!(
                "output `{output_name}` is numeric"
            )))
        }
    };
    let final_node = match options.query {
        Query::Reachable(_) => out_node,
        Query::Falsifiable(_) => extractor.circuit.not(out_node),
    };
    extractor.circuit.set_output(final_node);
    let tseitin = extractor
        .circuit
        .to_cnf()
        .map_err(|e| ConvertError::new(e.to_string()))?;

    // Assemble the AB-problem.
    let mut builder = AbProblem::builder();
    for (name, kind) in &arith_order {
        let v = builder.arith_var(name, *kind);
        if let Some(r) = ranges.get(name) {
            builder.set_range(v, *r);
        }
    }
    for clause in tseitin.cnf.clauses() {
        builder.add_clause(clause.iter().copied());
    }
    // Make sure the builder knows about every Tseitin variable.
    let total_vars = tseitin.cnf.num_vars();
    while builder.num_bool_vars() < total_vars {
        builder.bool_var();
    }
    for &(atom_idx, var) in &tseitin.atom_vars {
        builder.define(var, extractor.atoms[atom_idx].clone());
    }
    if options.assume_ranges {
        for (name, kind) in &arith_order {
            if let Some(r) = ranges.get(name) {
                if r.lo().is_finite() && r.hi().is_finite() {
                    let v = builder.arith_var(name, *kind);
                    let lo = Rational::from_f64(r.lo()).expect("finite");
                    let hi = Rational::from_f64(r.hi()).expect("finite");
                    let atom = builder.atom(Expr::var(v), CmpOp::Ge, lo);
                    builder.define(atom, NlConstraint::new(Expr::var(v), CmpOp::Le, hi));
                    builder.require(atom.positive());
                }
            }
        }
    }
    Ok(builder.build())
}

/// Runs the full pipeline: diagram → LUSTRE → AB-problem.
///
/// # Errors
///
/// Propagates [`ConvertError`] from the extraction step.
pub fn diagram_to_ab(
    diagram: &Diagram,
    options: &ConvertOptions,
) -> Result<AbProblem, ConvertError> {
    let (node, ranges) = diagram_to_lustre(diagram);
    lustre_to_ab(&node, &ranges, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::{Block, Diagram};
    use absolver_core::{ArithModel, Orchestrator};

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    /// x ∈ [0, 10] real; out := (x ≥ 5) ∧ (x·x ≤ 50).
    fn small_diagram() -> Diagram {
        let mut d = Diagram::new();
        let x = d
            .inport("x", VarKind::Real, Interval::new(0.0, 10.0))
            .unwrap();
        let five = d.constant(q(5)).unwrap();
        let fifty = d.constant(q(50)).unwrap();
        let ge = d.add(Block::RelOp(CmpOp::Ge), vec![x, five]).unwrap();
        let sq = d.mul(x, x).unwrap();
        let le = d.add(Block::RelOp(CmpOp::Le), vec![sq, fifty]).unwrap();
        let and = d
            .add(Block::Logic(crate::diagram::LogicOp::And), vec![ge, le])
            .unwrap();
        d.outport("ok", and).unwrap();
        d
    }

    #[test]
    fn diagram_to_lustre_structure() {
        let (node, ranges) = diagram_to_lustre(&small_diagram());
        assert_eq!(node.inputs, vec![("x".to_string(), LustreType::Real)]);
        assert_eq!(node.outputs, vec![("ok".to_string(), LustreType::Bool)]);
        assert!(node.validate().is_ok());
        assert_eq!(ranges["x"], Interval::new(0.0, 10.0));
        // The printed node re-parses.
        let reparsed = crate::lustre::parse(&node.to_string()).unwrap();
        assert_eq!(reparsed.inputs, node.inputs);
        assert_eq!(reparsed.equations.len(), node.equations.len());
    }

    #[test]
    fn reachable_query_finds_witness() {
        let problem = diagram_to_ab(&small_diagram(), &ConvertOptions::reachable("ok")).unwrap();
        assert!(problem.num_nonlinear() >= 1, "x·x should be nonlinear");
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().expect("x ∈ [5, √50] is a witness");
        let x = problem.arith_var("x").unwrap();
        let xv = model.arith.value_f64(x).unwrap();
        assert!((5.0..=50.0f64.sqrt() + 1e-6).contains(&xv), "witness {xv}");
        // The diagram itself agrees with the witness.
        assert_eq!(small_diagram().simulate(&[xv]), vec![true]);
    }

    #[test]
    fn falsifiable_query() {
        // "ok" is violated e.g. at x = 0 → SAT with a counterexample.
        let problem = diagram_to_ab(&small_diagram(), &ConvertOptions::falsifiable("ok")).unwrap();
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().expect("property is violable");
        let x = problem.arith_var("x").unwrap();
        let xv = model.arith.value_f64(x).unwrap();
        assert_eq!(small_diagram().simulate(&[xv]), vec![false]);
    }

    #[test]
    fn unreachable_output_is_unsat() {
        // out := (x ≥ 5) ∧ (x ≤ 3) can never fire.
        let mut d = Diagram::new();
        let x = d
            .inport("x", VarKind::Real, Interval::new(-100.0, 100.0))
            .unwrap();
        let five = d.constant(q(5)).unwrap();
        let three = d.constant(q(3)).unwrap();
        let ge = d.add(Block::RelOp(CmpOp::Ge), vec![x, five]).unwrap();
        let le = d.add(Block::RelOp(CmpOp::Le), vec![x, three]).unwrap();
        let and = d
            .add(Block::Logic(crate::diagram::LogicOp::And), vec![ge, le])
            .unwrap();
        d.outport("bad", and).unwrap();
        let problem = diagram_to_ab(&d, &ConvertOptions::reachable("bad")).unwrap();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&problem).unwrap().is_unsat());
    }

    #[test]
    fn property_that_always_holds() {
        // ok := x² ≥ 0 — falsification must be UNSAT (property proved).
        let mut d = Diagram::new();
        let x = d
            .inport("x", VarKind::Real, Interval::new(-50.0, 50.0))
            .unwrap();
        let sq = d.mul(x, x).unwrap();
        let zero = d.constant(q(0)).unwrap();
        let ge = d.add(Block::RelOp(CmpOp::Ge), vec![sq, zero]).unwrap();
        d.outport("ok", ge).unwrap();
        let problem = diagram_to_ab(&d, &ConvertOptions::falsifiable("ok")).unwrap();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&problem).unwrap().is_unsat(), "x² ≥ 0 is valid");
    }

    #[test]
    fn range_assumptions_constrain_witnesses() {
        // out := x ≥ 5 with x ∈ [0, 3] asserted: reachability is UNSAT.
        let mut d = Diagram::new();
        let x = d
            .inport("x", VarKind::Real, Interval::new(0.0, 3.0))
            .unwrap();
        let five = d.constant(q(5)).unwrap();
        let ge = d.add(Block::RelOp(CmpOp::Ge), vec![x, five]).unwrap();
        d.outport("out", ge).unwrap();
        let with = diagram_to_ab(&d, &ConvertOptions::reachable("out")).unwrap();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&with).unwrap().is_unsat());
        // Without range assumptions it is satisfiable (x = 5 allowed).
        let mut opts = ConvertOptions::reachable("out");
        opts.assume_ranges = false;
        let without = diagram_to_ab(&d, &opts).unwrap();
        assert!(orc.solve(&without).unwrap().is_sat());
    }

    #[test]
    fn unknown_output_errors() {
        let d = small_diagram();
        let err = diagram_to_ab(&d, &ConvertOptions::reachable("nope"));
        assert!(err.is_err());
    }

    #[test]
    fn boolean_inputs_become_free_cnf_vars() {
        let node = crate::lustre::parse(
            "node f(p: bool; x: real) returns (o: bool);\nlet o = p and x >= 1; tel",
        )
        .unwrap();
        let problem =
            lustre_to_ab(&node, &HashMap::new(), &ConvertOptions::reachable("o")).unwrap();
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().unwrap();
        match &model.arith {
            ArithModel::Exact(m) => assert!(m[0] >= q(1)),
            ArithModel::Numeric(m) => assert!(m[0] >= 1.0 - 1e-6),
        }
    }

    #[test]
    fn shared_atoms_are_not_duplicated() {
        // The same comparison used twice yields one definition.
        let node = crate::lustre::parse(
            "node f(x: real) returns (o: bool);\nvar a, b: bool;\nlet a = x >= 1; b = x >= 1; o = a and b; tel",
        )
        .unwrap();
        let problem =
            lustre_to_ab(&node, &HashMap::new(), &ConvertOptions::reachable("o")).unwrap();
        assert_eq!(problem.num_defs(), 1);
    }
}
