//! Model-level front end of the ABsolver reproduction: Simulink-like block
//! diagrams, a LUSTRE-like intermediate representation, and the automated
//! conversion work-flow of the paper's Fig. 3
//! (Simulink → SCADE/LUSTRE → AB-problem).
//!
//! * [`Diagram`] — combinational block diagrams with simulation.
//! * [`lustre`] — the textual IR with printer and parser.
//! * [`convert`] — [`diagram_to_lustre`], [`lustre_to_ab`],
//!   [`diagram_to_ab`], and the [`Query`]/[`ConvertOptions`] types.
//! * [`steering`] — the synthetic stand-in for the paper's industrial car
//!   steering case study (Sec. 3), matching its published statistics.
//!
//! ```
//! use absolver_core::{Orchestrator, VarKind};
//! use absolver_linear::CmpOp;
//! use absolver_model::{diagram_to_ab, Block, ConvertOptions, Diagram};
//! use absolver_num::{Interval, Rational};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // out := x² ≤ 2, x ∈ [-3, 3]: reachable (take x = 1).
//! let mut d = Diagram::new();
//! let x = d.inport("x", VarKind::Real, Interval::new(-3.0, 3.0))?;
//! let sq = d.mul(x, x)?;
//! let two = d.constant(Rational::from_int(2))?;
//! let le = d.add(Block::RelOp(CmpOp::Le), vec![sq, two])?;
//! d.outport("out", le)?;
//! let problem = diagram_to_ab(&d, &ConvertOptions::reachable("out"))?;
//! assert!(Orchestrator::with_defaults().solve(&problem)?.is_sat());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
mod diagram;
pub mod lustre;
pub mod steering;
pub mod testgen;

pub use convert::{
    diagram_to_ab, diagram_to_lustre, lustre_to_ab, ConvertError, ConvertOptions, Query,
};
pub use diagram::{
    Block, BlockId, Diagram, DiagramError, Factor, LogicOp, Sign, SignalType, UnaryFn,
};
pub use lustre::{LustreExpr, LustreNode, LustreType, ParseLustreError};
pub use steering::{steering_diagram, steering_options, steering_problem};
pub use testgen::{generate_tests, CoverageTarget, TestSuite, TestVector};
