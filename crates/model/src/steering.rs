//! The car steering-control case study (paper Sec. 3).
//!
//! The original industrial MATLAB/Simulink model is withheld by the paper
//! "due to obvious issues with the protection of intellectual property";
//! what the paper documents is its interface and statistics: a yaw sensor
//! (±7), a lateral-acceleration sensor (±20), four wheel-speed sensors
//! (±400), a steering-angle sensor (±1), a nonlinear environment model,
//! and a conversion result of **976 CNF clauses** with **24 constraints
//! (4 linear + 20 nonlinear)**.
//!
//! [`steering_diagram`] synthesises a model with exactly that interface
//! and — after conversion — exactly those statistics: a single-track
//! ("bicycle") vehicle model supplies the nonlinear environment
//! (`yaw_expected = v·δ / (L·(1 + (v/v_ch)²))`, `lat_expected = v·yaw`,
//! slip ratios, side forces), and a stability monitor encodes the safety
//! property checked in the case study. The Boolean skeleton is padded with
//! tautological monitor redundancy to reach the published clause count;
//! the constraint mix (which is what drives the solvers) is structural.

use crate::convert::{diagram_to_ab, ConvertOptions};
use crate::diagram::{Block, Diagram, LogicOp, UnaryFn};
use absolver_core::{AbProblem, VarKind};
use absolver_linear::CmpOp;
use absolver_num::{Interval, Rational};

fn q(s: &str) -> Rational {
    s.parse().expect("literal rational")
}

/// Builds the synthetic steering-control diagram.
///
/// The returned diagram has one Boolean outport, `safe`; the case-study
/// query is its falsification (see [`steering_problem`]).
pub fn steering_diagram() -> Diagram {
    let mut d = Diagram::new();
    let ok = |r: Result<crate::diagram::BlockId, crate::diagram::DiagramError>| {
        r.expect("static model construction")
    };

    // --- Sensors, with the paper's physical ranges --------------------
    let yaw = ok(d.inport("yaw", VarKind::Real, Interval::new(-7.0, 7.0)));
    let lat = ok(d.inport("lat_acc", VarKind::Real, Interval::new(-20.0, 20.0)));
    let ws_fl = ok(d.inport("ws_fl", VarKind::Real, Interval::new(-400.0, 400.0)));
    let ws_fr = ok(d.inport("ws_fr", VarKind::Real, Interval::new(-400.0, 400.0)));
    let ws_rl = ok(d.inport("ws_rl", VarKind::Real, Interval::new(-400.0, 400.0)));
    let ws_rr = ok(d.inport("ws_rr", VarKind::Real, Interval::new(-400.0, 400.0)));
    let steer = ok(d.inport("steer_angle", VarKind::Real, Interval::new(-1.0, 1.0)));

    // --- Derived speeds (linear forms) --------------------------------
    let front_sum = ok(d.sum2(ws_fl, ws_fr));
    let rear_sum = ok(d.sum2(ws_rl, ws_rr));
    let all_sum = ok(d.sum2(front_sum, rear_sum));
    let v = ok(d.add(Block::Gain(q("0.25")), vec![all_sum])); // mean wheel speed
    let v_front = ok(d.add(Block::Gain(q("0.5")), vec![front_sum]));
    let v_rear = ok(d.add(Block::Gain(q("0.5")), vec![rear_sum]));

    // --- Environment: single-track vehicle model (nonlinear) ----------
    // yaw_expected = v * steer / (L * (1 + (v / v_ch)^2)), L = 2.7, v_ch = 20.
    let v_scaled = ok(d.add(Block::Gain(q("0.05")), vec![v])); // v / 20
    let v_scaled_sq = ok(d.add(Block::Unary(UnaryFn::Square), vec![v_scaled]));
    let one = ok(d.constant(q("1")));
    let denom_core = ok(d.sum2(one, v_scaled_sq));
    let denom = ok(d.add(Block::Gain(q("2.7")), vec![denom_core]));
    let v_steer = ok(d.mul(v, steer));
    let yaw_exp = ok(d.div(v_steer, denom));

    // lat_expected = v * yaw.
    let lat_exp = ok(d.mul(v, yaw));

    // slip = (v_front - v_rear) / (v_rear + 1).
    let diff_axles = ok(d.sub(v_front, v_rear));
    let rear_plus1 = ok(d.sum2(v_rear, one));
    let slip = ok(d.div(diff_axles, rear_plus1));

    // Deviations and the correction law.
    let yaw_err = ok(d.sub(yaw_exp, yaw));
    let lat_err = ok(d.sub(lat_exp, lat));
    let corr_yaw = ok(d.add(Block::Gain(q("0.8")), vec![yaw_err]));
    let corr_lat = ok(d.add(Block::Gain(q("0.05")), vec![lat_err]));
    let corr = ok(d.sum2(corr_yaw, corr_lat));
    let corr_sq = ok(d.add(Block::Unary(UnaryFn::Square), vec![corr]));
    let corr_steer = ok(d.mul(corr, steer));

    // Side force balance: lat·cos(steer) − v·yaw·sin(steer).
    let cos_steer = ok(d.add(Block::Unary(UnaryFn::Cos), vec![steer]));
    let sin_steer = ok(d.add(Block::Unary(UnaryFn::Sin), vec![steer]));
    let lat_cos = ok(d.mul(lat, cos_steer));
    let vyaw = ok(d.mul(v, yaw));
    let vyaw_sin = ok(d.mul(vyaw, sin_steer));
    let side_force = ok(d.sub(lat_cos, vyaw_sin));

    // Operating envelope and kinetic terms.
    let yaw_sq = ok(d.add(Block::Unary(UnaryFn::Square), vec![yaw]));
    let lat_scaled = ok(d.add(Block::Gain(q("0.4")), vec![lat]));
    let lat_scaled_sq = ok(d.add(Block::Unary(UnaryFn::Square), vec![lat_scaled]));
    let envelope = ok(d.sum2(yaw_sq, lat_scaled_sq));
    let e_kin = ok(d.add(Block::Unary(UnaryFn::Square), vec![v]));
    let v_sq_steer = ok(d.mul(e_kin, steer));
    let yaw_lat = ok(d.mul(yaw, lat));

    // --- The 24 constraint atoms ---------------------------------------
    let c = |d: &mut Diagram, v: &str| d.constant(q(v)).expect("const");
    let rel = |d: &mut Diagram, a, op, b| d.add(Block::RelOp(op), vec![a, b]).expect("relop");

    // 4 linear atoms.
    let k0 = c(&mut d, "0");
    let k110 = c(&mut d, "110");
    let k60 = c(&mut d, "60");
    let moving_fwd = rel(&mut d, v, CmpOp::Ge, k0); // v ≥ 0
    let speed_ok = rel(&mut d, v, CmpOp::Le, k110); // v ≤ 110
    let fl_fr_diff = ok(d.sub(ws_fl, ws_fr));
    let wheels_close1 = rel(&mut d, fl_fr_diff, CmpOp::Le, k60); // fl − fr ≤ 60
    let fr_fl_diff = ok(d.sub(ws_fr, ws_fl));
    let wheels_close2 = rel(&mut d, fr_fl_diff, CmpOp::Le, k60); // fr − fl ≤ 60

    // 20 nonlinear atoms.
    let k04 = c(&mut d, "0.4");
    let km04 = c(&mut d, "-0.4");
    let k2 = c(&mut d, "2");
    let km2 = c(&mut d, "-2");
    let k9 = c(&mut d, "9");
    let km9 = c(&mut d, "-9");
    let k012 = c(&mut d, "0.12");
    let km012 = c(&mut d, "-0.12");
    let k03 = c(&mut d, "0.3");
    let km03 = c(&mut d, "-0.3");
    let k025 = c(&mut d, "0.25");
    let k4 = c(&mut d, "4");
    let km4 = c(&mut d, "-4");
    let k64 = c(&mut d, "64");
    let k100 = c(&mut d, "100");
    let k90000 = c(&mut d, "90000");
    let k2500 = c(&mut d, "2500");
    let km2500 = c(&mut d, "-2500");

    let oversteer = rel(&mut d, yaw_err, CmpOp::Le, km04); // yaw ahead of model
    let understeer = rel(&mut d, yaw_err, CmpOp::Ge, k04); // yaw behind model
    let lat_over = rel(&mut d, lat_err, CmpOp::Ge, k2);
    let lat_under = rel(&mut d, lat_err, CmpOp::Le, km2);
    let lat_exp_hi = rel(&mut d, lat_exp, CmpOp::Le, k9);
    let lat_exp_lo = rel(&mut d, lat_exp, CmpOp::Ge, km9);
    let slip_pos = rel(&mut d, slip, CmpOp::Ge, k012);
    let slip_neg = rel(&mut d, slip, CmpOp::Le, km012);
    let corr_pos = rel(&mut d, corr, CmpOp::Ge, k03);
    let corr_neg = rel(&mut d, corr, CmpOp::Le, km03);
    let corr_aligned = rel(&mut d, corr_steer, CmpOp::Ge, k0);
    let corr_bounded = rel(&mut d, corr_sq, CmpOp::Le, k025);
    let side_hi = rel(&mut d, side_force, CmpOp::Ge, k4);
    let side_lo = rel(&mut d, side_force, CmpOp::Le, km4);
    let env_ok = rel(&mut d, envelope, CmpOp::Le, k64);
    let fast = rel(&mut d, e_kin, CmpOp::Ge, k100);
    let kin_ok = rel(&mut d, e_kin, CmpOp::Le, k90000);
    let steer_pow_hi = rel(&mut d, v_sq_steer, CmpOp::Le, k2500);
    let steer_pow_lo = rel(&mut d, v_sq_steer, CmpOp::Ge, km2500);
    let signs_agree = rel(&mut d, yaw_lat, CmpOp::Ge, k0);

    // --- Monitor logic ---------------------------------------------------
    let logic = |d: &mut Diagram, op, ins: Vec<_>| d.add(Block::Logic(op), ins).expect("logic");
    let plausible = logic(
        &mut d,
        LogicOp::And,
        vec![
            moving_fwd,
            speed_ok,
            wheels_close1,
            wheels_close2,
            lat_exp_hi,
            lat_exp_lo,
            env_ok,
            kin_ok,
            steer_pow_hi,
            steer_pow_lo,
        ],
    );
    let unstable = logic(
        &mut d,
        LogicOp::Or,
        vec![
            oversteer, understeer, lat_over, lat_under, slip_pos, slip_neg,
        ],
    );
    let intervention = logic(&mut d, LogicOp::Or, vec![corr_pos, corr_neg]);
    let side_extreme = logic(&mut d, LogicOp::And, vec![side_hi, side_lo]);
    let no_side_contradiction = logic(&mut d, LogicOp::Not, vec![side_extreme]);
    let reacts = d
        .add(Block::Logic(LogicOp::Not), vec![unstable])
        .expect("not");
    let reacts_or_intervenes = logic(&mut d, LogicOp::Or, vec![reacts, intervention]);
    let intervention_justified = {
        let no_int = logic(&mut d, LogicOp::Not, vec![intervention]);
        let just = logic(
            &mut d,
            LogicOp::And,
            vec![unstable, corr_aligned, corr_bounded],
        );
        logic(&mut d, LogicOp::Or, vec![no_int, just])
    };
    let fast_consistency = {
        let slow = logic(&mut d, LogicOp::Not, vec![fast]);
        logic(&mut d, LogicOp::Or, vec![slow, signs_agree])
    };
    let duties = logic(
        &mut d,
        LogicOp::And,
        vec![
            reacts_or_intervenes,
            intervention_justified,
            no_side_contradiction,
            fast_consistency,
        ],
    );
    let not_plausible = logic(&mut d, LogicOp::Not, vec![plausible]);
    let safe_core = logic(&mut d, LogicOp::Or, vec![not_plausible, duties]);

    // --- Pad the Boolean skeleton to the published 976 clauses ----------
    // Redundant monitor stages (tautological OR of a signal and its
    // negation) enlarge the CNF without changing the property.
    let mut safety_terms = vec![safe_core];
    let probe = {
        // Count the clauses the conversion would currently produce.
        let mut trial = d.clone();
        let and = trial
            .add(Block::Logic(LogicOp::And), safety_terms.clone())
            .expect("and");
        trial.outport("safe", and).expect("outport");
        diagram_to_ab(&trial, &steering_options())
            .expect("convertible")
            .cnf()
            .len()
    };
    let target = 976usize;
    assert!(probe + 3 <= target, "base model too large: {probe} clauses");
    // Pad units (clause contribution includes the top-level AND growing by
    // one input): OR-arity-1 buffer = 3, OR-arity-2 = 4, OR-arity-3 = 5.
    // Keeping each unit tiny avoids deep expression recursion downstream.
    let mut remaining = target - probe;
    let not_core = d
        .add(Block::Logic(LogicOp::Not), vec![safe_core])
        .expect("not");
    while remaining > 5 {
        let pad = d
            .add(Block::Logic(LogicOp::Or), vec![safe_core])
            .expect("pad");
        safety_terms.push(pad);
        remaining -= 3;
    }
    let mut last_inputs = vec![safe_core];
    if remaining >= 4 {
        last_inputs.push(not_core);
    }
    if remaining >= 5 {
        last_inputs.push(safe_core);
    }
    let pad = d.add(Block::Logic(LogicOp::Or), last_inputs).expect("pad");
    safety_terms.push(pad);

    let safe = d
        .add(Block::Logic(LogicOp::And), safety_terms)
        .expect("and");
    d.outport("safe", safe).expect("outport");
    d
}

/// The conversion options of the case study: search for a *violation* of
/// the `safe` monitor. The sensor ranges bound the interval search but are
/// not asserted as constraints (the paper's 4 linear constraints are the
/// explicit plausibility checks of the monitor, not the sensor ranges).
pub fn steering_options() -> ConvertOptions {
    let mut o = ConvertOptions::falsifiable("safe");
    o.assume_ranges = false;
    o
}

/// Builds the complete case-study AB-problem (976 clauses, 24 constraints:
/// 4 linear + 20 nonlinear, like the paper's Table 1 row).
pub fn steering_problem() -> AbProblem {
    diagram_to_ab(&steering_diagram(), &steering_options()).expect("steering model converts")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_statistics() {
        let p = steering_problem();
        assert_eq!(p.cnf().len(), 976, "paper: 976 CNF clauses");
        assert_eq!(p.num_constraints(), 24, "paper: 24 constraints");
        assert_eq!(p.num_linear(), 4, "paper: 4 linear");
        assert_eq!(p.num_nonlinear(), 20, "paper: 20 nonlinear");
        assert_eq!(p.arith_vars().len(), 7, "seven sensors");
    }

    #[test]
    fn sensor_ranges_recorded() {
        let p = steering_problem();
        let range = |n: &str| p.arith_vars()[p.arith_var(n).unwrap()].range;
        assert_eq!(range("yaw"), absolver_num::Interval::new(-7.0, 7.0));
        assert_eq!(range("lat_acc"), absolver_num::Interval::new(-20.0, 20.0));
        assert_eq!(range("ws_fl"), absolver_num::Interval::new(-400.0, 400.0));
        assert_eq!(range("steer_angle"), absolver_num::Interval::new(-1.0, 1.0));
    }

    #[test]
    fn diagram_simulates() {
        let d = steering_diagram();
        // A calm straight-line drive: everything stable, monitor safe.
        // Inputs: yaw, lat, fl, fr, rl, rr, steer.
        let calm = d.simulate(&[0.0, 0.0, 30.0, 30.0, 30.0, 30.0, 0.0]);
        assert_eq!(calm, vec![true]);
    }

    #[test]
    fn unsafe_scenario_exists_in_simulation() {
        // Understeer beyond the threshold while the correction law cancels
        // itself out: the controller "should react but does not".
        let d = steering_diagram();
        // v = 10, steer chosen so yaw_exp = 0.5 exactly; yaw = 0.05 gives
        // yaw_err = 0.45 ≥ 0.4 (understeer). lat = lat_exp + 3.2 makes
        // corr = 0.8·0.45 − 0.05·3.2 = 0.2, inside the dead zone (±0.3),
        // so no intervention fires — yet the situation is plausible.
        let v = 10.0;
        let steer = 0.16875;
        let yaw_exp = v * steer / (2.7 * (1.0 + (v / 20.0f64).powi(2)));
        assert!((yaw_exp - 0.5).abs() < 1e-12);
        let yaw = 0.05;
        let lat = v * yaw + 3.2;
        let out = d.simulate(&[yaw, lat, v, v, v, v, steer]);
        assert_eq!(out, vec![false], "monitor must flag this scenario unsafe");
    }
}
