//! Simulink-like block diagrams.
//!
//! The paper's input models are MATLAB/Simulink designs (Fig. 1): data-flow
//! diagrams mixing arithmetic blocks (sums, products, gains, nonlinear
//! functions), relational blocks producing Boolean signals, and logic
//! blocks combining them. [`Diagram`] reproduces the *combinational* subset
//! relevant to the paper's analysis work-flow — the snapshot semantics the
//! case study's constraint extraction uses.
//!
//! Diagrams are acyclic by construction: a block's inputs must reference
//! previously added blocks.

use absolver_core::VarKind;
use absolver_linear::CmpOp;
use absolver_num::{Interval, Rational};
use std::fmt;

/// Identifier of a block within a diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

/// Signal type flowing on a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalType {
    /// Numeric (int or real) signal.
    Arith,
    /// Boolean signal.
    Bool,
}

/// Sign of a summand in a [`Block::Sum`] block (Simulink's `++-` strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Added.
    Plus,
    /// Subtracted.
    Minus,
}

/// Factor role in a [`Block::Product`] block (Simulink's `**/` strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Factor {
    /// Multiplied.
    Mul,
    /// Divided by.
    Div,
}

/// Logic operator of a [`Block::Logic`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// n-ary conjunction.
    And,
    /// n-ary disjunction.
    Or,
    /// Unary negation.
    Not,
    /// Binary exclusive or.
    Xor,
}

/// Unary arithmetic function blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryFn {
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Square (`u²`; Simulink's `Math Function: square`).
    Square,
}

/// A diagram block.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// External numeric input with a declared kind and physical range.
    Inport {
        /// Signal name.
        name: String,
        /// Integer or real.
        kind: VarKind,
        /// Physical range of the sensor/signal.
        range: Interval,
    },
    /// Numeric constant source.
    Constant(Rational),
    /// n-ary signed sum (inputs must match `signs.len()`).
    Sum(Vec<Sign>),
    /// n-ary product/quotient (inputs must match `factors.len()`).
    Product(Vec<Factor>),
    /// Multiplication by a constant.
    Gain(Rational),
    /// Unary arithmetic function.
    Unary(UnaryFn),
    /// Relational operator: two numeric inputs, Boolean output.
    RelOp(CmpOp),
    /// Logic block: Boolean inputs, Boolean output.
    Logic(LogicOp),
    /// Named Boolean output of the diagram.
    Outport {
        /// Port name.
        name: String,
    },
}

impl Block {
    /// The output signal type of the block.
    pub fn output_type(&self) -> SignalType {
        match self {
            Block::Inport { .. }
            | Block::Constant(_)
            | Block::Sum(_)
            | Block::Product(_)
            | Block::Gain(_)
            | Block::Unary(_) => SignalType::Arith,
            Block::RelOp(_) | Block::Logic(_) | Block::Outport { .. } => SignalType::Bool,
        }
    }

    /// Expected number of inputs, or `None` when variadic bounds apply.
    fn arity(&self) -> Option<usize> {
        match self {
            Block::Inport { .. } | Block::Constant(_) => Some(0),
            Block::Sum(signs) => Some(signs.len()),
            Block::Product(factors) => Some(factors.len()),
            Block::Gain(_) | Block::Unary(_) => Some(1),
            Block::RelOp(_) => Some(2),
            Block::Logic(LogicOp::Not) => Some(1),
            Block::Logic(LogicOp::Xor) => Some(2),
            Block::Logic(_) => None, // n-ary, ≥ 1
            Block::Outport { .. } => Some(1),
        }
    }

    fn input_type(&self) -> SignalType {
        match self {
            Block::Logic(_) | Block::Outport { .. } => SignalType::Bool,
            _ => SignalType::Arith,
        }
    }
}

/// Error raised while constructing or validating a diagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagramError {
    message: String,
}

impl DiagramError {
    fn new(message: impl Into<String>) -> DiagramError {
        DiagramError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DiagramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "diagram error: {}", self.message)
    }
}

impl std::error::Error for DiagramError {}

/// A combinational block diagram.
///
/// ```
/// use absolver_core::VarKind;
/// use absolver_linear::CmpOp;
/// use absolver_model::{Block, Diagram};
/// use absolver_num::{Interval, Rational};
///
/// # fn main() -> Result<(), absolver_model::DiagramError> {
/// let mut d = Diagram::new();
/// let x = d.inport("x", VarKind::Real, Interval::new(-10.0, 10.0))?;
/// let zero = d.constant(Rational::zero())?;
/// let ge = d.add(Block::RelOp(CmpOp::Ge), vec![x, zero])?;
/// d.outport("nonneg", ge)?;
/// assert_eq!(d.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Diagram {
    blocks: Vec<Block>,
    inputs: Vec<Vec<BlockId>>,
}

impl Diagram {
    /// Creates an empty diagram.
    pub fn new() -> Diagram {
        Diagram::default()
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the diagram has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block behind an id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// The input wires of a block.
    pub fn inputs(&self, id: BlockId) -> &[BlockId] {
        &self.inputs[id.0]
    }

    /// Iterates over `(id, block)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// Adds a block wired to `inputs`.
    ///
    /// # Errors
    ///
    /// Rejects wrong arity, forward references, and signal-type mismatches.
    pub fn add(&mut self, block: Block, inputs: Vec<BlockId>) -> Result<BlockId, DiagramError> {
        if let Some(expected) = block.arity() {
            if inputs.len() != expected {
                return Err(DiagramError::new(format!(
                    "{block:?} expects {expected} inputs, got {}",
                    inputs.len()
                )));
            }
        } else if inputs.is_empty() {
            return Err(DiagramError::new(format!(
                "{block:?} needs at least one input"
            )));
        }
        for &src in &inputs {
            if src.0 >= self.blocks.len() {
                return Err(DiagramError::new(format!(
                    "input {src:?} does not exist yet (diagrams are acyclic by construction)"
                )));
            }
            let got = self.blocks[src.0].output_type();
            let want = block.input_type();
            if got != want {
                return Err(DiagramError::new(format!(
                    "type mismatch: {block:?} expects {want:?} input, {src:?} produces {got:?}"
                )));
            }
        }
        if let Block::Inport { name, .. } = &block {
            if self
                .iter()
                .any(|(_, b)| matches!(b, Block::Inport { name: n, .. } if n == name))
            {
                return Err(DiagramError::new(format!("duplicate inport `{name}`")));
            }
        }
        if let Block::Outport { name } = &block {
            if self
                .iter()
                .any(|(_, b)| matches!(b, Block::Outport { name: n } if n == name))
            {
                return Err(DiagramError::new(format!("duplicate outport `{name}`")));
            }
        }
        self.blocks.push(block);
        self.inputs.push(inputs);
        Ok(BlockId(self.blocks.len() - 1))
    }

    /// Convenience: adds an [`Block::Inport`].
    pub fn inport(
        &mut self,
        name: &str,
        kind: VarKind,
        range: Interval,
    ) -> Result<BlockId, DiagramError> {
        self.add(
            Block::Inport {
                name: name.to_string(),
                kind,
                range,
            },
            Vec::new(),
        )
    }

    /// Convenience: adds a [`Block::Constant`].
    pub fn constant(&mut self, value: Rational) -> Result<BlockId, DiagramError> {
        self.add(Block::Constant(value), Vec::new())
    }

    /// Convenience: adds `a - b`.
    pub fn sub(&mut self, a: BlockId, b: BlockId) -> Result<BlockId, DiagramError> {
        self.add(Block::Sum(vec![Sign::Plus, Sign::Minus]), vec![a, b])
    }

    /// Convenience: adds `a + b`.
    pub fn sum2(&mut self, a: BlockId, b: BlockId) -> Result<BlockId, DiagramError> {
        self.add(Block::Sum(vec![Sign::Plus, Sign::Plus]), vec![a, b])
    }

    /// Convenience: adds `a * b`.
    pub fn mul(&mut self, a: BlockId, b: BlockId) -> Result<BlockId, DiagramError> {
        self.add(Block::Product(vec![Factor::Mul, Factor::Mul]), vec![a, b])
    }

    /// Convenience: adds `a / b`.
    pub fn div(&mut self, a: BlockId, b: BlockId) -> Result<BlockId, DiagramError> {
        self.add(Block::Product(vec![Factor::Mul, Factor::Div]), vec![a, b])
    }

    /// Convenience: adds an [`Block::Outport`] watching `src`.
    pub fn outport(&mut self, name: &str, src: BlockId) -> Result<BlockId, DiagramError> {
        self.add(
            Block::Outport {
                name: name.to_string(),
            },
            vec![src],
        )
    }

    /// The inports, in declaration order.
    pub fn inports(&self) -> Vec<(BlockId, &str, VarKind, Interval)> {
        self.iter()
            .filter_map(|(id, b)| match b {
                Block::Inport { name, kind, range } => Some((id, name.as_str(), *kind, *range)),
                _ => None,
            })
            .collect()
    }

    /// The outports, in declaration order.
    pub fn outports(&self) -> Vec<(BlockId, &str)> {
        self.iter()
            .filter_map(|(id, b)| match b {
                Block::Outport { name } => Some((id, name.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Simulates the diagram on concrete input values (by inport order).
    /// Returns each outport's Boolean value, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not cover all inports.
    pub fn simulate(&self, values: &[f64]) -> Vec<bool> {
        #[derive(Clone, Copy)]
        enum V {
            A(f64),
            B(bool),
        }
        let mut out: Vec<V> = Vec::with_capacity(self.blocks.len());
        let mut next_input = 0usize;
        let mut ports = Vec::new();
        for (i, block) in self.blocks.iter().enumerate() {
            let arg = |k: usize| out[self.inputs[i][k].0];
            let num = |k: usize| match arg(k) {
                V::A(v) => v,
                V::B(_) => unreachable!("type-checked"),
            };
            let boolean = |k: usize| match arg(k) {
                V::B(v) => v,
                V::A(_) => unreachable!("type-checked"),
            };
            let v = match block {
                Block::Inport { .. } => {
                    let v = values[next_input];
                    next_input += 1;
                    V::A(v)
                }
                Block::Constant(c) => V::A(c.to_f64()),
                Block::Sum(signs) => V::A(
                    signs
                        .iter()
                        .enumerate()
                        .map(|(k, s)| match s {
                            Sign::Plus => num(k),
                            Sign::Minus => -num(k),
                        })
                        .sum(),
                ),
                Block::Product(factors) => {
                    V::A(factors.iter().enumerate().fold(1.0, |acc, (k, f)| match f {
                        Factor::Mul => acc * num(k),
                        Factor::Div => acc / num(k),
                    }))
                }
                Block::Gain(g) => V::A(g.to_f64() * num(0)),
                Block::Unary(f) => V::A(match f {
                    UnaryFn::Abs => num(0).abs(),
                    UnaryFn::Sqrt => num(0).sqrt(),
                    UnaryFn::Sin => num(0).sin(),
                    UnaryFn::Cos => num(0).cos(),
                    UnaryFn::Exp => num(0).exp(),
                    UnaryFn::Square => num(0) * num(0),
                }),
                Block::RelOp(op) => V::B(match op {
                    CmpOp::Lt => num(0) < num(1),
                    CmpOp::Le => num(0) <= num(1),
                    CmpOp::Gt => num(0) > num(1),
                    CmpOp::Ge => num(0) >= num(1),
                    CmpOp::Eq => num(0) == num(1),
                }),
                Block::Logic(op) => V::B(match op {
                    LogicOp::And => (0..self.inputs[i].len()).all(boolean),
                    LogicOp::Or => (0..self.inputs[i].len()).any(boolean),
                    LogicOp::Not => !boolean(0),
                    LogicOp::Xor => boolean(0) ^ boolean(1),
                }),
                Block::Outport { .. } => {
                    let v = boolean(0);
                    ports.push(v);
                    V::B(v)
                }
            };
            out.push(v);
        }
        ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    /// The paper's Fig. 1 model: Out1 = AND( OR( AND(i≥0, j≥0),
    /// NOT(2i+j<10) ), i+j<5 handled via OR, a·x + 3.5/(4−y) + 2y ≥ 7.1 ).
    fn fig1() -> Diagram {
        let mut d = Diagram::new();
        let a = d.inport("a", VarKind::Real, Interval::ENTIRE).unwrap();
        let x = d.inport("x", VarKind::Real, Interval::ENTIRE).unwrap();
        let y = d.inport("y", VarKind::Real, Interval::ENTIRE).unwrap();
        let i = d.inport("i", VarKind::Int, Interval::ENTIRE).unwrap();
        let j = d.inport("j", VarKind::Int, Interval::ENTIRE).unwrap();
        let zero = d.constant(q(0)).unwrap();
        let five = d.constant(q(5)).unwrap();
        let ten = d.constant(q(10)).unwrap();
        let c35 = d.constant("3.5".parse().unwrap()).unwrap();
        let four = d.constant(q(4)).unwrap();
        let c71 = d.constant("7.1".parse().unwrap()).unwrap();

        let i_ge0 = d.add(Block::RelOp(CmpOp::Ge), vec![i, zero]).unwrap();
        let j_ge0 = d.add(Block::RelOp(CmpOp::Ge), vec![j, zero]).unwrap();
        let both = d
            .add(Block::Logic(LogicOp::And), vec![i_ge0, j_ge0])
            .unwrap();

        let two_i = d.add(Block::Gain(q(2)), vec![i]).unwrap();
        let lhs2 = d.sum2(two_i, j).unwrap();
        let lt10 = d.add(Block::RelOp(CmpOp::Lt), vec![lhs2, ten]).unwrap();
        let not10 = d.add(Block::Logic(LogicOp::Not), vec![lt10]).unwrap();

        let ij = d.sum2(i, j).unwrap();
        let lt5 = d.add(Block::RelOp(CmpOp::Lt), vec![ij, five]).unwrap();
        let or = d.add(Block::Logic(LogicOp::Or), vec![not10, lt5]).unwrap();

        let ax = d.mul(a, x).unwrap();
        let denom = d.sub(four, y).unwrap();
        let frac = d.div(c35, denom).unwrap();
        let two_y = d.add(Block::Gain(q(2)), vec![y]).unwrap();
        let s1 = d.sum2(ax, frac).unwrap();
        let lhs = d.sum2(s1, two_y).unwrap();
        let ge71 = d.add(Block::RelOp(CmpOp::Ge), vec![lhs, c71]).unwrap();

        let and = d
            .add(Block::Logic(LogicOp::And), vec![both, or, ge71])
            .unwrap();
        d.outport("Out1", and).unwrap();
        d
    }

    #[test]
    fn fig1_structure() {
        let d = fig1();
        assert_eq!(d.inports().len(), 5);
        assert_eq!(d.outports().len(), 1);
        assert!(d.len() > 20);
    }

    #[test]
    fn fig1_simulation() {
        let d = fig1();
        // a=10, x=1, y=0, i=1, j=1: i,j ≥ 0 ✓; 2i+j=3<10 so NOT fails, but
        // i+j=2<5 ✓ → OR ✓; 10·1 + 3.5/4 + 0 = 10.875 ≥ 7.1 ✓ → Out1 true.
        assert_eq!(d.simulate(&[10.0, 1.0, 0.0, 1.0, 1.0]), vec![true]);
        // a=0, x=0, y=0: 0 + 0.875 + 0 < 7.1 → Out1 false.
        assert_eq!(d.simulate(&[0.0, 0.0, 0.0, 1.0, 1.0]), vec![false]);
        // i negative → first AND false → Out1 false.
        assert_eq!(d.simulate(&[10.0, 1.0, 0.0, -1.0, 1.0]), vec![false]);
    }

    #[test]
    fn arity_and_type_errors() {
        let mut d = Diagram::new();
        let x = d.inport("x", VarKind::Real, Interval::ENTIRE).unwrap();
        // Gain needs exactly one input.
        assert!(d.add(Block::Gain(q(2)), vec![x, x]).is_err());
        // RelOp needs numeric inputs.
        let zero = d.constant(q(0)).unwrap();
        let b = d.add(Block::RelOp(CmpOp::Ge), vec![x, zero]).unwrap();
        assert!(d.add(Block::Gain(q(2)), vec![b]).is_err());
        // Logic needs Boolean inputs.
        assert!(d.add(Block::Logic(LogicOp::And), vec![x]).is_err());
        // Logic And needs ≥ 1 input.
        assert!(d.add(Block::Logic(LogicOp::And), vec![]).is_err());
        // Dangling reference.
        assert!(d.add(Block::Gain(q(2)), vec![BlockId(999)]).is_err());
        // Outport takes a Boolean.
        assert!(d.outport("bad", x).is_err());
        // Duplicate names.
        assert!(d.inport("x", VarKind::Real, Interval::ENTIRE).is_err());
        d.outport("o", b).unwrap();
        let b2 = d.add(Block::RelOp(CmpOp::Le), vec![x, zero]).unwrap();
        assert!(d.outport("o", b2).is_err());
    }

    #[test]
    fn simulate_all_blocks() {
        let mut d = Diagram::new();
        let x = d.inport("x", VarKind::Real, Interval::ENTIRE).unwrap();
        let sq = d.add(Block::Unary(UnaryFn::Square), vec![x]).unwrap();
        let ab = d.add(Block::Unary(UnaryFn::Abs), vec![x]).unwrap();
        let diff = d.sub(sq, ab).unwrap();
        let zero = d.constant(q(0)).unwrap();
        let ge = d.add(Block::RelOp(CmpOp::Ge), vec![diff, zero]).unwrap();
        d.outport("sq_dominates", ge).unwrap();
        // x² ≥ |x| ⇔ |x| ≥ 1 or x = 0.
        assert_eq!(d.simulate(&[2.0]), vec![true]);
        assert_eq!(d.simulate(&[0.5]), vec![false]);
        assert_eq!(d.simulate(&[0.0]), vec![true]);
        assert_eq!(d.simulate(&[-3.0]), vec![true]);
    }

    #[test]
    fn xor_and_division() {
        let mut d = Diagram::new();
        let x = d.inport("x", VarKind::Real, Interval::ENTIRE).unwrap();
        let one = d.constant(q(1)).unwrap();
        let inv = d.div(one, x).unwrap();
        let half = d.constant("0.5".parse().unwrap()).unwrap();
        let small = d.add(Block::RelOp(CmpOp::Lt), vec![inv, half]).unwrap();
        let pos = d.add(Block::RelOp(CmpOp::Gt), vec![x, one]).unwrap();
        let xor = d.add(Block::Logic(LogicOp::Xor), vec![small, pos]).unwrap();
        d.outport("o", xor).unwrap();
        // x = 3: 1/3 < 0.5 ✓, 3 > 1 ✓ → xor false.
        assert_eq!(d.simulate(&[3.0]), vec![false]);
        // x = 1.5: 1/1.5 ≈ 0.67 ≥ 0.5 ✗, 1.5 > 1 ✓ → xor true.
        assert_eq!(d.simulate(&[1.5]), vec![true]);
    }
}
