//! A LUSTRE-like textual intermediate representation.
//!
//! The paper's conversion work-flow (Fig. 3) goes MATLAB/Simulink →
//! SCADE — "internally, SCADE uses a textual representation of the model
//! in terms of the programming language LUSTRE, from which we could then
//! extract the multi-domain constraint satisfaction problems". This module
//! provides that middle layer: a single-node, combinational LUSTRE dialect
//! with a printer and parser, so the pipeline can be driven from either a
//! [`crate::Diagram`] or a textual `.lus` file.

use absolver_num::Rational;
use std::collections::HashMap;
use std::fmt;

/// A LUSTRE flow type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LustreType {
    /// Boolean flow.
    Bool,
    /// Integer flow.
    Int,
    /// Real flow.
    Real,
}

impl fmt::Display for LustreType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LustreType::Bool => "bool",
            LustreType::Int => "int",
            LustreType::Real => "real",
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Absolute value (SCADE's `abs`).
    Abs,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `and`
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
    /// `=>`
    Implies,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` (on numeric flows: arithmetic atom; on bool flows: equivalence)
    Eq,
}

/// A LUSTRE expression.
#[derive(Debug, Clone, PartialEq)]
pub enum LustreExpr {
    /// Numeric literal.
    Num(Rational),
    /// Boolean literal.
    Bool(bool),
    /// Flow reference.
    Ident(String),
    /// Unary application.
    Unary(UnOp, Box<LustreExpr>),
    /// Binary application.
    Binary(BinOp, Box<LustreExpr>, Box<LustreExpr>),
}

impl LustreExpr {
    /// Builds `op(self)`.
    pub fn unary(op: UnOp, a: LustreExpr) -> LustreExpr {
        LustreExpr::Unary(op, Box::new(a))
    }

    /// Builds `a op b`.
    pub fn binary(op: BinOp, a: LustreExpr, b: LustreExpr) -> LustreExpr {
        LustreExpr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Builds an identifier reference.
    pub fn ident(name: &str) -> LustreExpr {
        LustreExpr::Ident(name.to_string())
    }

    fn precedence(&self) -> u8 {
        match self {
            LustreExpr::Binary(BinOp::Implies, ..) => 1,
            LustreExpr::Binary(BinOp::Or | BinOp::Xor, ..) => 2,
            LustreExpr::Binary(BinOp::And, ..) => 3,
            LustreExpr::Binary(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq, ..) => 4,
            LustreExpr::Binary(BinOp::Add | BinOp::Sub, ..) => 5,
            LustreExpr::Binary(BinOp::Mul | BinOp::Div, ..) => 6,
            LustreExpr::Unary(..) => 7,
            _ => 8,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let p = self.precedence();
        let paren = p < min;
        if paren {
            f.write_str("(")?;
        }
        match self {
            LustreExpr::Num(q) => {
                if q.is_integer() {
                    write!(f, "{q}")?;
                } else {
                    // LUSTRE reals: print as division of integers, always
                    // re-parseable.
                    write!(f, "({} / {})", q.numer(), q.denom())?;
                }
            }
            LustreExpr::Bool(b) => f.write_str(if *b { "true" } else { "false" })?,
            LustreExpr::Ident(n) => f.write_str(n)?,
            LustreExpr::Unary(op, a) => match op {
                UnOp::Neg => {
                    f.write_str("-")?;
                    a.fmt_prec(f, 8)?;
                }
                UnOp::Not => {
                    f.write_str("not ")?;
                    a.fmt_prec(f, 8)?;
                }
                UnOp::Abs | UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp => {
                    let name = match op {
                        UnOp::Abs => "abs",
                        UnOp::Sqrt => "sqrt",
                        UnOp::Sin => "sin",
                        UnOp::Cos => "cos",
                        UnOp::Exp => "exp",
                        _ => unreachable!(),
                    };
                    write!(f, "{name}(")?;
                    a.fmt_prec(f, 0)?;
                    f.write_str(")")?;
                }
            },
            LustreExpr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::And => "and",
                    BinOp::Or => "or",
                    BinOp::Xor => "xor",
                    BinOp::Implies => "=>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "=",
                };
                a.fmt_prec(f, p)?;
                write!(f, " {sym} ")?;
                b.fmt_prec(f, p + 1)?;
            }
        }
        if paren {
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for LustreExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// A single combinational LUSTRE node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LustreNode {
    /// Node name.
    pub name: String,
    /// Input flows.
    pub inputs: Vec<(String, LustreType)>,
    /// Output flows.
    pub outputs: Vec<(String, LustreType)>,
    /// Local flows.
    pub locals: Vec<(String, LustreType)>,
    /// Equations `flow = expr`, in dependency order.
    pub equations: Vec<(String, LustreExpr)>,
}

impl LustreNode {
    /// Looks up the type of a flow (input, output or local).
    pub fn flow_type(&self, name: &str) -> Option<LustreType> {
        self.inputs
            .iter()
            .chain(&self.outputs)
            .chain(&self.locals)
            .find(|(n, _)| n == name)
            .map(|&(_, t)| t)
    }

    /// The defining equation of a flow, if any.
    pub fn equation(&self, name: &str) -> Option<&LustreExpr> {
        self.equations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
    }

    /// Basic sanity checks: every output and local has exactly one
    /// equation, inputs have none, and every identifier is declared.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined: HashMap<&str, usize> = HashMap::new();
        for (n, _) in &self.equations {
            *defined.entry(n.as_str()).or_insert(0) += 1;
        }
        for (n, _) in self.outputs.iter().chain(&self.locals) {
            match defined.get(n.as_str()) {
                Some(1) => {}
                Some(_) => return Err(format!("flow `{n}` defined more than once")),
                None => return Err(format!("flow `{n}` has no defining equation")),
            }
        }
        for (n, _) in &self.inputs {
            if defined.contains_key(n.as_str()) {
                return Err(format!("input `{n}` must not be defined"));
            }
        }
        for (_, e) in &self.equations {
            self.check_idents(e)?;
        }
        Ok(())
    }

    fn check_idents(&self, e: &LustreExpr) -> Result<(), String> {
        match e {
            LustreExpr::Ident(n) => {
                if self.flow_type(n).is_none() {
                    return Err(format!("undeclared flow `{n}`"));
                }
                Ok(())
            }
            LustreExpr::Unary(_, a) => self.check_idents(a),
            LustreExpr::Binary(_, a, b) => {
                self.check_idents(a)?;
                self.check_idents(b)
            }
            _ => Ok(()),
        }
    }
}

impl fmt::Display for LustreNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let decl = |list: &[(String, LustreType)]| {
            list.iter()
                .map(|(n, t)| format!("{n}: {t}"))
                .collect::<Vec<_>>()
                .join("; ")
        };
        writeln!(
            f,
            "node {}({}) returns ({});",
            self.name,
            decl(&self.inputs),
            decl(&self.outputs)
        )?;
        if !self.locals.is_empty() {
            writeln!(f, "var {};", decl(&self.locals))?;
        }
        writeln!(f, "let")?;
        for (n, e) in &self.equations {
            writeln!(f, "  {n} = {e};")?;
        }
        write!(f, "tel")
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Error parsing LUSTRE text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLustreError {
    message: String,
}

impl ParseLustreError {
    fn new(m: impl Into<String>) -> ParseLustreError {
        ParseLustreError { message: m.into() }
    }
}

impl fmt::Display for ParseLustreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LUSTRE parse error: {}", self.message)
    }
}

impl std::error::Error for ParseLustreError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(Rational),
    Sym(&'static str),
}

fn lex(text: &str) -> Result<Vec<Tok>, ParseLustreError> {
    let mut out = Vec::new();
    let b = text.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if b.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ';' | ':' | ',' | '+' | '*' | '/' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ';' => ";",
                    ':' => ":",
                    ',' => ",",
                    '+' => "+",
                    '*' => "*",
                    _ => "/",
                }));
                i += 1;
            }
            '-' => {
                out.push(Tok::Sym("-"));
                i += 1;
            }
            '=' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Sym("=>"));
                    i += 2;
                } else {
                    out.push(Tok::Sym("="));
                    i += 1;
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym("<="));
                    i += 2;
                } else {
                    out.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    out.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let t = &text[start..i];
                out.push(Tok::Num(t.parse().map_err(|_| {
                    ParseLustreError::new(format!("bad number `{t}`"))
                })?));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(text[start..i].to_string()));
            }
            other => return Err(ParseLustreError::new(format!("unexpected `{other}`"))),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn sym(&mut self, s: &str) -> Result<(), ParseLustreError> {
        match self.bump() {
            Some(Tok::Sym(got)) if got == s => Ok(()),
            other => Err(ParseLustreError::new(format!(
                "expected `{s}`, got {other:?}"
            ))),
        }
    }

    fn keyword(&mut self, k: &str) -> Result<(), ParseLustreError> {
        match self.bump() {
            Some(Tok::Ident(got)) if got == k => Ok(()),
            other => Err(ParseLustreError::new(format!(
                "expected `{k}`, got {other:?}"
            ))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseLustreError> {
        match self.bump() {
            Some(Tok::Ident(n)) => Ok(n),
            other => Err(ParseLustreError::new(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn ty(&mut self) -> Result<LustreType, ParseLustreError> {
        match self.ident()?.as_str() {
            "bool" => Ok(LustreType::Bool),
            "int" => Ok(LustreType::Int),
            "real" => Ok(LustreType::Real),
            other => Err(ParseLustreError::new(format!("unknown type `{other}`"))),
        }
    }

    /// `name1, name2: type; name3: type` until `)` — LUSTRE declaration list.
    fn decls(&mut self) -> Result<Vec<(String, LustreType)>, ParseLustreError> {
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::Sym(")")) {
            return Ok(out);
        }
        loop {
            let mut group = vec![self.ident()?];
            while self.peek() == Some(&Tok::Sym(",")) {
                self.bump();
                group.push(self.ident()?);
            }
            self.sym(":")?;
            let t = self.ty()?;
            for n in group {
                out.push((n, t));
            }
            match self.peek() {
                Some(Tok::Sym(";")) => {
                    self.bump();
                    if self.peek() == Some(&Tok::Sym(")")) {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(out)
    }

    // Expression grammar, lowest to highest precedence:
    // implies → or/xor → and → not → comparison → additive → multiplicative
    // → unary → primary
    fn expr(&mut self) -> Result<LustreExpr, ParseLustreError> {
        let lhs = self.or_level()?;
        if self.peek() == Some(&Tok::Sym("=>")) {
            self.bump();
            let rhs = self.expr()?; // right-assoc
            Ok(LustreExpr::binary(BinOp::Implies, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_level(&mut self) -> Result<LustreExpr, ParseLustreError> {
        let mut acc = self.and_level()?;
        loop {
            match self.peek() {
                Some(Tok::Ident(k)) if k == "or" => {
                    self.bump();
                    acc = LustreExpr::binary(BinOp::Or, acc, self.and_level()?);
                }
                Some(Tok::Ident(k)) if k == "xor" => {
                    self.bump();
                    acc = LustreExpr::binary(BinOp::Xor, acc, self.and_level()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn and_level(&mut self) -> Result<LustreExpr, ParseLustreError> {
        let mut acc = self.cmp_level()?;
        while matches!(self.peek(), Some(Tok::Ident(k)) if k == "and") {
            self.bump();
            acc = LustreExpr::binary(BinOp::And, acc, self.cmp_level()?);
        }
        Ok(acc)
    }

    fn cmp_level(&mut self) -> Result<LustreExpr, ParseLustreError> {
        let lhs = self.add_level()?;
        let op = match self.peek() {
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            Some(Tok::Sym("=")) => Some(BinOp::Eq),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.add_level()?;
                Ok(LustreExpr::binary(op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn add_level(&mut self) -> Result<LustreExpr, ParseLustreError> {
        let mut acc = self.mul_level()?;
        loop {
            match self.peek() {
                Some(Tok::Sym("+")) => {
                    self.bump();
                    acc = LustreExpr::binary(BinOp::Add, acc, self.mul_level()?);
                }
                Some(Tok::Sym("-")) => {
                    self.bump();
                    acc = LustreExpr::binary(BinOp::Sub, acc, self.mul_level()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn mul_level(&mut self) -> Result<LustreExpr, ParseLustreError> {
        let mut acc = self.unary_level()?;
        loop {
            match self.peek() {
                Some(Tok::Sym("*")) => {
                    self.bump();
                    acc = LustreExpr::binary(BinOp::Mul, acc, self.unary_level()?);
                }
                Some(Tok::Sym("/")) => {
                    self.bump();
                    acc = LustreExpr::binary(BinOp::Div, acc, self.unary_level()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn unary_level(&mut self) -> Result<LustreExpr, ParseLustreError> {
        match self.peek() {
            Some(Tok::Sym("-")) => {
                self.bump();
                Ok(LustreExpr::unary(UnOp::Neg, self.unary_level()?))
            }
            Some(Tok::Ident(k)) if k == "not" => {
                self.bump();
                Ok(LustreExpr::unary(UnOp::Not, self.unary_level()?))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<LustreExpr, ParseLustreError> {
        match self.bump() {
            Some(Tok::Num(q)) => Ok(LustreExpr::Num(q)),
            Some(Tok::Sym("(")) => {
                let e = self.expr()?;
                self.sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(n)) => match n.as_str() {
                "true" => Ok(LustreExpr::Bool(true)),
                "false" => Ok(LustreExpr::Bool(false)),
                "abs" | "sqrt" | "sin" | "cos" | "exp" => {
                    self.sym("(")?;
                    let a = self.expr()?;
                    self.sym(")")?;
                    let op = match n.as_str() {
                        "abs" => UnOp::Abs,
                        "sqrt" => UnOp::Sqrt,
                        "sin" => UnOp::Sin,
                        "cos" => UnOp::Cos,
                        _ => UnOp::Exp,
                    };
                    Ok(LustreExpr::unary(op, a))
                }
                _ => Ok(LustreExpr::Ident(n)),
            },
            other => Err(ParseLustreError::new(format!(
                "expected expression, got {other:?}"
            ))),
        }
    }
}

/// Parses a single combinational LUSTRE node.
///
/// # Errors
///
/// Returns [`ParseLustreError`] on lexical or syntactic problems, or when
/// [`LustreNode::validate`] rejects the parsed node.
pub fn parse(text: &str) -> Result<LustreNode, ParseLustreError> {
    let toks = lex(text)?;
    let mut p = P { toks, pos: 0 };
    p.keyword("node")?;
    let name = p.ident()?;
    p.sym("(")?;
    let inputs = p.decls()?;
    p.sym(")")?;
    p.keyword("returns")?;
    p.sym("(")?;
    let outputs = p.decls()?;
    p.sym(")")?;
    p.sym(";")?;
    let mut locals = Vec::new();
    if matches!(p.peek(), Some(Tok::Ident(k)) if k == "var") {
        p.bump();
        // declarations terminated by `;` before `let`
        loop {
            let mut group = vec![p.ident()?];
            while p.peek() == Some(&Tok::Sym(",")) {
                p.bump();
                group.push(p.ident()?);
            }
            p.sym(":")?;
            let t = p.ty()?;
            for n in group {
                locals.push((n, t));
            }
            p.sym(";")?;
            if matches!(p.peek(), Some(Tok::Ident(k)) if k == "let") {
                break;
            }
        }
    }
    p.keyword("let")?;
    let mut equations = Vec::new();
    loop {
        if matches!(p.peek(), Some(Tok::Ident(k)) if k == "tel") {
            p.bump();
            break;
        }
        let n = p.ident()?;
        p.sym("=")?;
        let e = p.expr()?;
        p.sym(";")?;
        equations.push((n, e));
    }
    let node = LustreNode {
        name,
        inputs,
        outputs,
        locals,
        equations,
    };
    node.validate().map_err(ParseLustreError::new)?;
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
node monitor(speed: real; angle: real; enable: bool) returns (ok: bool);
var expected: real; dev: real;
let
  -- expected yaw from the bicycle model
  expected = speed * angle / (1 + speed * speed / 400);
  dev = abs(expected - angle);
  ok = enable => dev <= (1 / 2);
tel";

    #[test]
    fn parses_sample() {
        let n = parse(SAMPLE).unwrap();
        assert_eq!(n.name, "monitor");
        assert_eq!(n.inputs.len(), 3);
        assert_eq!(n.outputs, vec![("ok".to_string(), LustreType::Bool)]);
        assert_eq!(n.locals.len(), 2);
        assert_eq!(n.equations.len(), 3);
        assert_eq!(n.flow_type("speed"), Some(LustreType::Real));
        assert_eq!(n.flow_type("ok"), Some(LustreType::Bool));
        assert_eq!(n.flow_type("nope"), None);
        assert!(n.equation("dev").is_some());
    }

    #[test]
    fn print_parse_round_trip() {
        let n1 = parse(SAMPLE).unwrap();
        let text = n1.to_string();
        let n2 = parse(&text).unwrap();
        assert_eq!(n1, n2);
    }

    #[test]
    fn grouped_declarations() {
        let n = parse("node f(a, b: real; c: bool) returns (o: bool);\nlet o = c; tel").unwrap();
        assert_eq!(n.inputs.len(), 3);
        assert_eq!(n.inputs[0].1, LustreType::Real);
        assert_eq!(n.inputs[1].1, LustreType::Real);
        assert_eq!(n.inputs[2].1, LustreType::Bool);
    }

    #[test]
    fn operator_precedence() {
        let n = parse(
            "node f(a: real; p, q: bool) returns (o: bool);\nlet o = p and a + 1 * 2 >= 3 or q; tel",
        )
        .unwrap();
        // ((p and ((a + (1*2)) >= 3)) or q)
        let e = n.equation("o").unwrap();
        match e {
            LustreExpr::Binary(BinOp::Or, lhs, _) => match &**lhs {
                LustreExpr::Binary(BinOp::And, _, cmp) => {
                    assert!(matches!(&**cmp, LustreExpr::Binary(BinOp::Ge, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn implies_is_right_associative() {
        let n =
            parse("node f(p, q, r: bool) returns (o: bool);\nlet o = p => q => r; tel").unwrap();
        match n.equation("o").unwrap() {
            LustreExpr::Binary(BinOp::Implies, _, rhs) => {
                assert!(matches!(&**rhs, LustreExpr::Binary(BinOp::Implies, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validation_errors() {
        // Output without an equation.
        assert!(parse("node f(a: real) returns (o: bool);\nlet tel").is_err());
        // Undeclared identifier.
        assert!(parse("node f(a: real) returns (o: bool);\nlet o = zz > 1; tel").is_err());
        // Double definition.
        assert!(
            parse("node f(a: real) returns (o: bool);\nlet o = a > 1; o = a < 1; tel").is_err()
        );
        // Input defined.
        assert!(parse("node f(a: bool) returns (o: bool);\nlet o = a; a = o; tel").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let n =
            parse("node f(a: bool) returns (o: bool); -- hi\nlet -- there\no = a;\ntel").unwrap();
        assert_eq!(n.equations.len(), 1);
    }

    #[test]
    fn display_expressions() {
        let e = LustreExpr::binary(
            BinOp::Mul,
            LustreExpr::binary(BinOp::Add, LustreExpr::ident("a"), LustreExpr::ident("b")),
            LustreExpr::Num(Rational::from_int(2)),
        );
        assert_eq!(e.to_string(), "(a + b) * 2");
        let half = LustreExpr::Num(Rational::new(1, 2));
        assert_eq!(half.to_string(), "(1 / 2)");
    }
}
