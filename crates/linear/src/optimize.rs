//! Linear optimisation over the simplex tableau.
//!
//! The paper plugs COIN — a full LP solver — into ABsolver's linear
//! domain; feasibility checking is all the control loop needs, but the
//! underlying engine should be able to *optimise* too (e.g. for the
//! test-case generation use-case of Sec. 6, where extreme witnesses make
//! better tests). This module adds a primal optimisation phase on top of
//! [`Simplex`]: after a feasibility check, the objective is repeatedly
//! improved by moving eligible nonbasic variables to their binding limits
//! (Bland's smallest-index rule prevents cycling).

use crate::constraint::{LinExpr, VarId};
use crate::qdelta::QDelta;
use crate::simplex::{CheckResult, ConstraintId, Simplex};
use absolver_num::Rational;

/// Outcome of [`Simplex::optimize`].
#[derive(Debug, Clone, PartialEq)]
pub enum OptOutcome {
    /// An optimum was reached; the payload is the objective value (in the
    /// infinitesimal-extended rationals — a `δ` component appears when the
    /// optimum approaches a strict bound) and a witness for the problem
    /// variables evaluated at a concrete small `δ`.
    Optimal {
        /// Objective value, exact in `Q_δ`.
        value: QDelta,
        /// Witness assignment for the problem variables.
        model: Vec<Rational>,
    },
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// The constraints are infeasible; conflicting constraint ids.
    Infeasible(Vec<ConstraintId>),
    /// The pivot budget was exhausted (pathological instances only).
    Budget,
}

impl OptOutcome {
    /// Returns the optimal value, if any.
    pub fn value(&self) -> Option<&QDelta> {
        match self {
            OptOutcome::Optimal { value, .. } => Some(value),
            _ => None,
        }
    }
}

impl Simplex {
    /// Maximises `objective` subject to the asserted constraints.
    pub fn maximize(&mut self, objective: &LinExpr) -> OptOutcome {
        self.optimize(objective, true)
    }

    /// Minimises `objective` subject to the asserted constraints.
    pub fn minimize(&mut self, objective: &LinExpr) -> OptOutcome {
        self.optimize(objective, false)
    }

    /// Optimises the objective in the given direction.
    pub fn optimize(&mut self, objective: &LinExpr, maximize: bool) -> OptOutcome {
        match self.check() {
            CheckResult::Unsat(core) => return OptOutcome::Infeasible(core),
            CheckResult::Sat => {}
        }
        let mut budget = 100_000usize;
        loop {
            if budget == 0 {
                return OptOutcome::Budget;
            }
            budget -= 1;

            // The objective over nonbasic variables only.
            let reduced = self.substitute_basics(objective);

            // Bland: the eligible nonbasic variable with the smallest id.
            let mut entering: Option<(VarId, bool)> = None; // (var, increase)
            for (v, k) in reduced.terms() {
                let want_increase = k.is_positive() == maximize;
                let movable = if want_increase {
                    self.upper_of(*v).is_none_or(|u| self.value_of(*v) < u)
                } else {
                    self.lower_of(*v).is_none_or(|l| self.value_of(*v) > l)
                };
                if !k.is_zero() && movable {
                    entering = Some((*v, want_increase));
                    break;
                }
            }
            let Some((xj, increase)) = entering else {
                // No improving direction: optimal.
                let model = self.model();
                let value = self.eval_qdelta(objective);
                return OptOutcome::Optimal { value, model };
            };

            // Ratio test: how far xj can move before a bound binds.
            match self.push_toward(xj, increase) {
                PushResult::Unbounded => return OptOutcome::Unbounded,
                PushResult::Moved => {}
            }
        }
    }
}

pub(crate) enum PushResult {
    Moved,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{CmpOp, LinearConstraint};

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn c(terms: &[(usize, i64)], op: CmpOp, rhs: i64) -> LinearConstraint {
        LinearConstraint::new(
            LinExpr::from_terms(terms.iter().map(|&(v, k)| (v, q(k)))),
            op,
            q(rhs),
        )
    }

    fn expr(terms: &[(usize, i64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().map(|&(v, k)| (v, q(k))))
    }

    #[test]
    fn maximize_simple_box() {
        // max x subject to 0 ≤ x ≤ 7.
        let mut s = Simplex::with_vars(1);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Ge, 0)).unwrap();
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Le, 7)).unwrap();
        match s.maximize(&expr(&[(0, 1)])) {
            OptOutcome::Optimal { value, model } => {
                assert_eq!(value, QDelta::real(q(7)));
                assert_eq!(model[0], q(7));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn minimize_simple_box() {
        let mut s = Simplex::with_vars(1);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Ge, -3)).unwrap();
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Le, 7)).unwrap();
        match s.minimize(&expr(&[(0, 1)])) {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, QDelta::real(q(-3))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lp_textbook_vertex() {
        // max x + y s.t. x + 2y ≤ 14, 3x − y ≥ 0, x − y ≤ 2 → optimum at
        // (6, 4) with value 10.
        let mut s = Simplex::with_vars(2);
        s.assert_constraint(&c(&[(0, 1), (1, 2)], CmpOp::Le, 14))
            .unwrap();
        s.assert_constraint(&c(&[(0, 3), (1, -1)], CmpOp::Ge, 0))
            .unwrap();
        s.assert_constraint(&c(&[(0, 1), (1, -1)], CmpOp::Le, 2))
            .unwrap();
        match s.maximize(&expr(&[(0, 1), (1, 1)])) {
            OptOutcome::Optimal { value, model } => {
                assert_eq!(value, QDelta::real(q(10)));
                assert_eq!(model[0], q(6));
                assert_eq!(model[1], q(4));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_detection() {
        // max x s.t. x ≥ 0 is unbounded; min x is 0.
        let mut s = Simplex::with_vars(1);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Ge, 0)).unwrap();
        assert_eq!(s.maximize(&expr(&[(0, 1)])), OptOutcome::Unbounded);
        match s.minimize(&expr(&[(0, 1)])) {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, QDelta::real(q(0))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_through_combination() {
        // max x + y s.t. x − y = 0: the ray x = y → ∞ is feasible.
        let mut s = Simplex::with_vars(2);
        s.assert_constraint(&c(&[(0, 1), (1, -1)], CmpOp::Eq, 0))
            .unwrap();
        assert_eq!(s.maximize(&expr(&[(0, 1), (1, 1)])), OptOutcome::Unbounded);
    }

    #[test]
    fn infeasible_reports_core() {
        // The conflict is only discoverable by pivoting (distinct forms).
        let mut s = Simplex::with_vars(2);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Ge, 2)).unwrap();
        s.assert_constraint(&c(&[(1, 1)], CmpOp::Ge, 2)).unwrap();
        s.assert_constraint(&c(&[(0, 1), (1, 1)], CmpOp::Le, 3))
            .unwrap();
        match s.maximize(&expr(&[(0, 1)])) {
            OptOutcome::Infeasible(core) => assert_eq!(core, vec![0, 1, 2]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strict_bound_supremum() {
        // max x s.t. x < 5: supremum 5 is not attained; optimum is 5 − δ.
        let mut s = Simplex::with_vars(1);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Lt, 5)).unwrap();
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Ge, 0)).unwrap();
        match s.maximize(&expr(&[(0, 1)])) {
            OptOutcome::Optimal { value, model } => {
                assert_eq!(value, QDelta::just_below(q(5)));
                assert!(model[0] < q(5) && model[0] >= q(0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn objective_with_negative_coefficients() {
        // min 2x − 3y s.t. 0 ≤ x ≤ 4, 0 ≤ y ≤ 4, x + y ≤ 6 → x=0, y=4.
        let mut s = Simplex::with_vars(2);
        for v in 0..2 {
            s.assert_constraint(&c(&[(v, 1)], CmpOp::Ge, 0)).unwrap();
            s.assert_constraint(&c(&[(v, 1)], CmpOp::Le, 4)).unwrap();
        }
        s.assert_constraint(&c(&[(0, 1), (1, 1)], CmpOp::Le, 6))
            .unwrap();
        match s.minimize(&expr(&[(0, 2), (1, -3)])) {
            OptOutcome::Optimal { value, model } => {
                assert_eq!(value, QDelta::real(q(-12)));
                assert_eq!(model[0], q(0));
                assert_eq!(model[1], q(4));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn optimize_after_push_pop() {
        let mut s = Simplex::with_vars(1);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Ge, 0)).unwrap();
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Le, 10)).unwrap();
        s.push();
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Le, 4)).unwrap();
        match s.maximize(&expr(&[(0, 1)])) {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, QDelta::real(q(4))),
            other => panic!("{other:?}"),
        }
        s.pop();
        match s.maximize(&expr(&[(0, 1)])) {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, QDelta::real(q(10))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_vertices_terminate() {
        // Highly degenerate: many constraints intersect at the origin.
        let mut s = Simplex::with_vars(3);
        for v in 0..3 {
            s.assert_constraint(&c(&[(v, 1)], CmpOp::Ge, 0)).unwrap();
        }
        s.assert_constraint(&c(&[(0, 1), (1, 1)], CmpOp::Le, 0))
            .unwrap();
        s.assert_constraint(&c(&[(1, 1), (2, 1)], CmpOp::Le, 0))
            .unwrap();
        s.assert_constraint(&c(&[(0, 1), (2, 1)], CmpOp::Le, 0))
            .unwrap();
        match s.maximize(&expr(&[(0, 1), (1, 1), (2, 1)])) {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, QDelta::real(q(0))),
            other => panic!("{other:?}"),
        }
    }
}
