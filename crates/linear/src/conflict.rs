//! Minimal infeasible subset (IIS) extraction.
//!
//! The simplex certificate returned by [`check_conjunction`] is already a
//! small conflicting subset, but not necessarily *minimal*. ABsolver's
//! control loop feeds conflicts back to the SAT solver as blocking hints,
//! and the smaller the hint, the more Boolean candidates it prunes — the
//! paper calls this "the smallest conflicting subset" (Sec. 4). This module
//! minimises the certificate with a standard deletion filter: drop each
//! member in turn and keep the drop whenever the remainder is still
//! infeasible.

use crate::constraint::LinearConstraint;
use crate::simplex::{check_conjunction, Feasibility};

/// Returns a *minimal* infeasible subset of `constraints` (as indices into
/// the input slice), or `None` if the conjunction is feasible.
///
/// Minimality is irredundancy: removing any single returned constraint
/// makes the remaining ones satisfiable. The result is not necessarily a
/// globally smallest core (that problem is NP-hard); it matches what
/// practical IIS tools — and the paper's refinement loop — compute.
///
/// ```
/// use absolver_linear::{minimal_infeasible_subset, CmpOp, LinExpr, LinearConstraint};
/// use absolver_num::Rational;
///
/// let c = |v, op, rhs: i64| LinearConstraint::new(LinExpr::var(v), op, Rational::from_int(rhs));
/// // y ≥ 0 is irrelevant; {x ≥ 5, x ≤ 3} is the minimal core.
/// let cs = vec![c(1, CmpOp::Ge, 0), c(0, CmpOp::Ge, 5), c(0, CmpOp::Le, 3)];
/// let core = minimal_infeasible_subset(&cs).unwrap();
/// assert_eq!(core, vec![1, 2]);
/// ```
pub fn minimal_infeasible_subset(constraints: &[LinearConstraint]) -> Option<Vec<usize>> {
    minimal_infeasible_subset_counted(constraints).map(|(core, _)| core)
}

/// Like [`minimal_infeasible_subset`], but also reports how many
/// feasibility checks the deletion filter performed (including the
/// initial full-set check) — the cost metric pinned by the regression
/// tests.
pub fn minimal_infeasible_subset_counted(
    constraints: &[LinearConstraint],
) -> Option<(Vec<usize>, u64)> {
    let core: Vec<usize> = match check_conjunction(constraints) {
        Feasibility::Feasible(_) => return None,
        Feasibility::Infeasible(core) => core,
    };
    let (core, filter_checks) = deletion_filter(constraints, core);
    Some((core, filter_checks + 1))
}

/// Deletion filter over an infeasible `core` (indices into
/// `constraints`); returns the irredundant sub-core and the number of
/// feasibility checks performed.
///
/// Positions below the scan index `i` have been proven necessary:
/// dropping them left a feasible remainder. A successful shrink keeps
/// that proof intact — the sub-certificate preserves order, and a
/// constraint whose removal makes the rest feasible belongs to *every*
/// infeasible subset of the rest — so the scan resumes from `i` instead
/// of restarting at 0.
fn deletion_filter(constraints: &[LinearConstraint], mut core: Vec<usize>) -> (Vec<usize>, u64) {
    let mut checks = 0u64;
    let mut i = 0;
    while i < core.len() {
        let candidate: Vec<LinearConstraint> = core
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &idx)| constraints[idx].clone())
            .collect();
        checks += 1;
        match check_conjunction(&candidate) {
            Feasibility::Infeasible(sub) => {
                // Still infeasible without core[i]; shrink to the sub-core.
                // Candidate position j maps back to core position j (+1 past i).
                // Necessary members survive (see above), so positions < i
                // keep their indices and `i` stays valid.
                debug_assert!(
                    sub.windows(2).all(|w| w[0] < w[1]),
                    "certificate not sorted"
                );
                core = sub
                    .into_iter()
                    .map(|j| core[if j < i { j } else { j + 1 }])
                    .collect();
            }
            Feasibility::Feasible(_) => i += 1,
        }
    }
    core.sort_unstable();
    (core, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{CmpOp, LinExpr};
    use absolver_num::Rational;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn c(terms: &[(usize, i64)], op: CmpOp, rhs: i64) -> LinearConstraint {
        LinearConstraint::new(
            LinExpr::from_terms(terms.iter().map(|&(v, k)| (v, q(k)))),
            op,
            q(rhs),
        )
    }

    #[test]
    fn feasible_returns_none() {
        let cs = [c(&[(0, 1)], CmpOp::Ge, 0), c(&[(0, 1)], CmpOp::Le, 5)];
        assert_eq!(minimal_infeasible_subset(&cs), None);
    }

    #[test]
    fn filters_irrelevant_constraints() {
        let cs = [
            c(&[(1, 1)], CmpOp::Ge, 0),   // irrelevant
            c(&[(0, 1)], CmpOp::Ge, 5),   // core
            c(&[(1, 1)], CmpOp::Le, 100), // irrelevant
            c(&[(0, 1)], CmpOp::Le, 3),   // core
        ];
        assert_eq!(minimal_infeasible_subset(&cs), Some(vec![1, 3]));
    }

    #[test]
    fn core_is_irredundant() {
        let cs = [
            c(&[(0, 1), (1, 1)], CmpOp::Le, 2),
            c(&[(0, 1)], CmpOp::Ge, 2),
            c(&[(1, 1)], CmpOp::Ge, 1),
            c(&[(0, 1), (1, 1)], CmpOp::Le, 10), // dominated by the first
        ];
        let core = minimal_infeasible_subset(&cs).unwrap();
        // Every proper subset must be feasible.
        for skip in 0..core.len() {
            let without: Vec<LinearConstraint> = core
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != skip)
                .map(|(_, &i)| cs[i].clone())
                .collect();
            assert!(
                crate::simplex::check_conjunction(&without).is_feasible(),
                "core {core:?} not minimal: still infeasible without position {skip}"
            );
        }
        // And the full core must be infeasible.
        let full: Vec<LinearConstraint> = core.iter().map(|&i| cs[i].clone()).collect();
        assert!(!crate::simplex::check_conjunction(&full).is_feasible());
    }

    /// The old filter restarted the scan (`i = 0`) after every successful
    /// shrink, re-testing members already proven necessary. The fix
    /// resumes from the current position; this pins the saved checks on a
    /// deliberately redundant seed core.
    #[test]
    fn deletion_filter_resumes_instead_of_restarting() {
        // The infeasible triangle {0, 1, 2} plus two irrelevant members.
        let cs = [
            c(&[(0, 1), (1, 1)], CmpOp::Le, 2),
            c(&[(0, 1)], CmpOp::Ge, 2),
            c(&[(1, 1)], CmpOp::Ge, 1),
            c(&[(2, 1)], CmpOp::Ge, 0),
            c(&[(2, 1)], CmpOp::Le, 9),
        ];
        let seed: Vec<usize> = (0..cs.len()).collect();
        let (core, checks) = deletion_filter(&cs, seed.clone());
        assert_eq!(core, vec![0, 1, 2]);

        // Reference implementation with the historical restart policy.
        let restart_checks = {
            let mut core = seed;
            let mut checks = 0u64;
            let mut i = 0;
            while i < core.len() {
                let candidate: Vec<LinearConstraint> = core
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &idx)| cs[idx].clone())
                    .collect();
                checks += 1;
                match check_conjunction(&candidate) {
                    Feasibility::Infeasible(sub) => {
                        core = sub
                            .into_iter()
                            .map(|j| core[if j < i { j } else { j + 1 }])
                            .collect();
                        i = 0;
                    }
                    Feasibility::Feasible(_) => i += 1,
                }
            }
            checks
        };
        // Resume visits each member at most once: 3 keeps + the drops the
        // shrinks leave behind. The restart policy re-tests the proven
        // prefix after every shrink.
        assert!(
            checks < restart_checks,
            "resume ({checks}) must beat restart ({restart_checks})"
        );
        assert_eq!(checks, 4, "3 necessary members kept + 1 shrink");
    }

    #[test]
    fn single_constraint_core() {
        // 0 ≥ 1 is infeasible alone.
        let cs = [
            c(&[(0, 1)], CmpOp::Ge, 0),
            LinearConstraint::new(LinExpr::zero(), CmpOp::Ge, q(1)),
        ];
        assert_eq!(minimal_infeasible_subset(&cs), Some(vec![1]));
    }
}
