//! Exact linear-arithmetic solving for the ABsolver constraint-solving
//! library.
//!
//! This crate is the reproduction's stand-in for the COIN LP solver the
//! paper plugs into ABsolver's linear domain:
//!
//! * [`LinExpr`] / [`LinearConstraint`] — sparse rational linear forms and
//!   comparisons (`<`, `≤`, `>`, `≥`, `=`).
//! * [`Simplex`] — an incremental Dutertre–de-Moura general simplex over
//!   the infinitesimal-extended rationals [`QDelta`], with
//!   `push`/`pop` backtracking for tight DPLL(T) integration.
//! * [`check_conjunction`] — one-shot feasibility with witness or conflict
//!   certificate, the entry point of ABsolver's loose control loop.
//! * [`AssertionStack`] — a persistent, backtrackable assertion stack over
//!   one simplex instance: `push`/`pop_to`/`check` with warm-started
//!   re-checks, the engine behind the orchestrator's incremental theory
//!   checks.
//! * [`minimal_infeasible_subset`] — deletion-filter IIS extraction, the
//!   paper's "smallest conflicting subset" refinement hint.
//!
//! All arithmetic is exact ([`absolver_num::Rational`]); verdicts are never
//! subject to floating-point error.
//!
//! ```
//! use absolver_linear::{check_conjunction, CmpOp, Feasibility, LinExpr, LinearConstraint};
//! use absolver_num::Rational;
//!
//! // i ≥ 0 ∧ j ≥ 0 ∧ i + j < 5 (from the paper's running example).
//! let ge0 = |v| LinearConstraint::new(LinExpr::var(v), CmpOp::Ge, Rational::zero());
//! let sum = LinearConstraint::new(
//!     LinExpr::from_terms([(0, Rational::one()), (1, Rational::one())]),
//!     CmpOp::Lt,
//!     Rational::from_int(5),
//! );
//! match check_conjunction(&[ge0(0), ge0(1), sum]) {
//!     Feasibility::Feasible(model) => assert!(&model[0] + &model[1] < Rational::from_int(5)),
//!     Feasibility::Infeasible(core) => panic!("unexpected conflict {core:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conflict;
mod constraint;
mod optimize;
mod qdelta;
mod simplex;
mod stack;

pub use conflict::{minimal_infeasible_subset, minimal_infeasible_subset_counted};
pub use constraint::{CmpOp, LinExpr, LinearConstraint, VarId};
pub use optimize::OptOutcome;
pub use qdelta::QDelta;
pub use simplex::{
    check_conjunction, check_conjunction_counted, CheckResult, ConstraintId, Feasibility, Simplex,
};
pub use stack::{AssertionStack, RowId, StackResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use absolver_num::Rational;
    use absolver_testkit::{gen, property, Gen};

    fn constraint_gen(num_vars: usize) -> Gen<LinearConstraint> {
        let var = gen::ints(0..num_vars);
        let coeff = gen::ints(-4i64..=4);
        let term =
            Gen::new(move |src| (var.generate(src), Rational::from_int(coeff.generate(src))));
        let terms = gen::vec_of(term, 1..4);
        let op = gen::from_slice(&[CmpOp::Le, CmpOp::Ge, CmpOp::Lt, CmpOp::Gt, CmpOp::Eq]);
        let rhs = gen::ints(-6i64..=6);
        Gen::new(move |src| {
            LinearConstraint::new(
                LinExpr::from_terms(terms.generate(src)),
                op.generate(src),
                Rational::from_int(rhs.generate(src)),
            )
        })
    }

    /// Historical counterexample (from the proptest era): a single
    /// strict constraint `-2*x0 < -1` whose supremum of the objective
    /// `-x0` is approached but never attained; the Q_delta optimum must
    /// still dominate every feasible grid point.
    #[test]
    fn regression_strict_bound_supremum() {
        let cs = vec![LinearConstraint::new(
            LinExpr::from_terms([(0usize, Rational::from_int(-2))]),
            CmpOp::Lt,
            Rational::from_int(-1),
        )];
        check_optimum_dominates_grid(&cs, -1, 0);
    }

    /// Body of `optimum_dominates_grid`, shared with its regression test.
    fn check_optimum_dominates_grid(cs: &[LinearConstraint], c0: i64, c1: i64) {
        // Box the variables so the LP is bounded.
        let mut all = cs.to_vec();
        for v in 0..2 {
            all.push(LinearConstraint::new(
                LinExpr::var(v),
                CmpOp::Ge,
                Rational::from_int(-8),
            ));
            all.push(LinearConstraint::new(
                LinExpr::var(v),
                CmpOp::Le,
                Rational::from_int(8),
            ));
        }
        let objective = LinExpr::from_terms([
            (0usize, Rational::from_int(c0)),
            (1usize, Rational::from_int(c1)),
        ]);
        let mut s = Simplex::with_vars(2);
        let mut feasible_input = true;
        for c in &all {
            if s.assert_constraint(c).is_err() {
                feasible_input = false;
                break;
            }
        }
        absolver_testkit::assume!(feasible_input);
        match s.maximize(&objective) {
            OptOutcome::Optimal { value, model } => {
                // The witness is feasible.
                for c in &all {
                    assert!(c.eval(&model), "witness violates {c}");
                }
                // The optimum (in Q_δ — a supremum may only be
                // approached when a strict bound binds) dominates every
                // feasible grid point.
                for x in -8..=8i64 {
                    for y in -8..=8i64 {
                        let point = vec![Rational::from_int(x), Rational::from_int(y)];
                        if all.iter().all(|c| c.eval(&point)) {
                            let at_point = QDelta::real(objective.eval(&point));
                            assert!(
                                at_point <= value,
                                "grid point ({x},{y}) beats the optimum: {at_point} > {value}"
                            );
                        }
                    }
                }
            }
            OptOutcome::Infeasible(_) => {
                // Then no grid point may be feasible... only sound if the
                // region truly is empty; check a coarse grid.
                for x in -8..=8i64 {
                    for y in -8..=8i64 {
                        let point = vec![Rational::from_int(x), Rational::from_int(y)];
                        assert!(
                            !all.iter().all(|c| c.eval(&point)),
                            "infeasible verdict but ({x},{y}) is feasible"
                        );
                    }
                }
            }
            OptOutcome::Unbounded => panic!("boxed LP cannot be unbounded"),
            OptOutcome::Budget => panic!("tiny LP cannot exhaust the budget"),
        }
    }

    property! {
        #![cases = 128]

        /// Feasible verdicts must come with a genuinely satisfying witness.
        fn witnesses_are_sound(cs in gen::vec_of(constraint_gen(3), 1..8)) {
            if let Feasibility::Feasible(model) = check_conjunction(&cs) {
                for c in &cs {
                    assert!(c.eval(&model), "constraint {c} violated by witness {model:?}");
                }
            }
        }

        /// Conflict certificates must themselves be infeasible sets.
        fn conflicts_are_sound(cs in gen::vec_of(constraint_gen(3), 1..8)) {
            if let Feasibility::Infeasible(core) = check_conjunction(&cs) {
                assert!(!core.is_empty());
                let subset: Vec<LinearConstraint> =
                    core.iter().map(|&i| cs[i].clone()).collect();
                assert!(
                    !check_conjunction(&subset).is_feasible(),
                    "certificate {core:?} is feasible on its own"
                );
            }
        }

        /// The deletion filter agrees with the base check and is irredundant.
        fn minimal_cores_are_minimal(cs in gen::vec_of(constraint_gen(2), 1..6)) {
            match (check_conjunction(&cs).is_feasible(), minimal_infeasible_subset(&cs)) {
                (true, found) => assert_eq!(found, None),
                (false, None) => panic!("verdicts disagree"),
                (false, Some(core)) => {
                    for skip in 0..core.len() {
                        let without: Vec<LinearConstraint> = core
                            .iter()
                            .enumerate()
                            .filter(|&(k, _)| k != skip)
                            .map(|(_, &i)| cs[i].clone())
                            .collect();
                        assert!(check_conjunction(&without).is_feasible());
                    }
                }
            }
        }


        /// LP optimisation dominates every feasible grid point, and the
        /// optimum is itself attained by a feasible witness.
        fn optimum_dominates_grid(
            cs in gen::vec_of(constraint_gen(2), 0..5),
            c0 in gen::ints(-3i64..=3),
            c1 in gen::ints(-3i64..=3),
        ) {
            check_optimum_dominates_grid(&cs, c0, c1);
        }

        /// Rational-grid ground truth: brute-force a small grid; if any grid
        /// point satisfies everything, the solver must say feasible.
        fn grid_completeness(cs in gen::vec_of(constraint_gen(2), 1..6)) {
            let mut grid_sat = false;
            'outer: for x in -8..=8i64 {
                for y in -8..=8i64 {
                    let point = vec![Rational::from_int(x), Rational::from_int(y)];
                    if cs.iter().all(|c| c.eval(&point)) {
                        grid_sat = true;
                        break 'outer;
                    }
                }
            }
            if grid_sat {
                assert!(check_conjunction(&cs).is_feasible());
            }
        }
    }
}
