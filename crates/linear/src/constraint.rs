//! Linear expressions and constraints over rational coefficients.

use absolver_num::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a theory variable (dense 0-based index).
pub type VarId = usize;

/// A comparison operator `⋈ ∈ {<, ≤, >, ≥, =}` (the paper's Sec. 1 set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
}

impl CmpOp {
    /// Evaluates `lhs ⋈ rhs`.
    pub fn eval(self, lhs: &Rational, rhs: &Rational) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
        }
    }

    /// The operator for the *negated* comparison, when it is again a single
    /// comparison. `¬(a = b)` is not expressible as one comparison — the
    /// paper splits it into `< ∨ >` — so `Eq` returns `None`.
    pub fn negate(self) -> Option<CmpOp> {
        match self {
            CmpOp::Lt => Some(CmpOp::Ge),
            CmpOp::Le => Some(CmpOp::Gt),
            CmpOp::Gt => Some(CmpOp::Le),
            CmpOp::Ge => Some(CmpOp::Lt),
            CmpOp::Eq => None,
        }
    }

    /// The operator with operand sides swapped (`a ⋈ b` ⇔ `b ⋈' a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
        }
    }

    /// Returns `true` for `<` and `>`.
    pub fn is_strict(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Gt)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        })
    }
}

/// A sparse linear expression `Σ aᵢ·xᵢ` with rational coefficients.
///
/// Terms are kept sorted by variable with no zero coefficients, so equality
/// of expressions is structural.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    terms: Vec<(VarId, Rational)>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The expression `1·x`.
    pub fn var(x: VarId) -> LinExpr {
        LinExpr {
            terms: vec![(x, Rational::one())],
        }
    }

    /// Builds an expression from `(variable, coefficient)` pairs, combining
    /// duplicates and dropping zeros.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, Rational)>) -> LinExpr {
        let mut map: BTreeMap<VarId, Rational> = BTreeMap::new();
        for (v, c) in terms {
            let entry = map.entry(v).or_default();
            *entry += &c;
        }
        LinExpr {
            terms: map.into_iter().filter(|(_, c)| !c.is_zero()).collect(),
        }
    }

    /// The `(variable, coefficient)` pairs, sorted by variable.
    pub fn terms(&self) -> &[(VarId, Rational)] {
        &self.terms
    }

    /// Returns `true` if the expression has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The coefficient of `x` (zero if absent).
    pub fn coeff(&self, x: VarId) -> Rational {
        self.terms
            .binary_search_by_key(&x, |&(v, _)| v)
            .map(|i| self.terms[i].1.clone())
            .unwrap_or_default()
    }

    /// Adds `k·x` to the expression.
    pub fn add_term(&mut self, x: VarId, k: &Rational) {
        match self.terms.binary_search_by_key(&x, |&(v, _)| v) {
            Ok(i) => {
                self.terms[i].1 += k;
                if self.terms[i].1.is_zero() {
                    self.terms.remove(i);
                }
            }
            Err(i) => {
                if !k.is_zero() {
                    self.terms.insert(i, (x, k.clone()));
                }
            }
        }
    }

    /// Adds `k · other` to the expression.
    pub fn add_scaled(&mut self, other: &LinExpr, k: &Rational) {
        for (v, c) in &other.terms {
            self.add_term(*v, &(c * k));
        }
    }

    /// Scales every coefficient by `k`.
    pub fn scale(&mut self, k: &Rational) {
        if k.is_zero() {
            self.terms.clear();
        } else {
            for (_, c) in &mut self.terms {
                *c *= k;
            }
        }
    }

    /// Evaluates under a dense assignment (missing variables read as 0).
    pub fn eval(&self, values: &[Rational]) -> Rational {
        let mut acc = Rational::zero();
        for (v, c) in &self.terms {
            if let Some(x) = values.get(*v) {
                acc += &(c * x);
            }
        }
        acc
    }

    /// Largest variable id mentioned, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.terms.last().map(|&(v, _)| v)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        for (i, (v, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            write!(f, "{c}*v{v}")?;
        }
        Ok(())
    }
}

/// A linear constraint `Σ aᵢ·xᵢ ⋈ c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearConstraint {
    /// Left-hand side linear expression.
    pub expr: LinExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side constant.
    pub rhs: Rational,
}

impl LinearConstraint {
    /// Creates `expr ⋈ rhs`.
    pub fn new(expr: LinExpr, op: CmpOp, rhs: Rational) -> LinearConstraint {
        LinearConstraint { expr, op, rhs }
    }

    /// Evaluates the constraint under a dense assignment.
    pub fn eval(&self, values: &[Rational]) -> bool {
        self.op.eval(&self.expr.eval(values), &self.rhs)
    }

    /// Returns `true` if the constraint mentions no variables (and is thus
    /// decided by constant comparison).
    pub fn is_trivial(&self) -> bool {
        self.expr.is_zero()
    }

    /// The negated constraint as a disjunction of constraints (one element
    /// for `<, ≤, >, ≥`, two — `< ∨ >` — for `=`, following Sec. 1).
    pub fn negate(&self) -> Vec<LinearConstraint> {
        match self.op.negate() {
            Some(op) => vec![LinearConstraint::new(
                self.expr.clone(),
                op,
                self.rhs.clone(),
            )],
            None => vec![
                LinearConstraint::new(self.expr.clone(), CmpOp::Lt, self.rhs.clone()),
                LinearConstraint::new(self.expr.clone(), CmpOp::Gt, self.rhs.clone()),
            ],
        }
    }

    /// Largest variable id mentioned, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.expr.max_var()
    }
}

impl fmt::Display for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn expr_normalisation() {
        let e = LinExpr::from_terms(vec![(1, q(2, 1)), (0, q(1, 1)), (1, q(-2, 1))]);
        assert_eq!(e.terms().len(), 1);
        assert_eq!(e.coeff(0), q(1, 1));
        assert_eq!(e.coeff(1), q(0, 1));
        assert_eq!(e.coeff(42), q(0, 1));
    }

    #[test]
    fn expr_arithmetic() {
        let mut e = LinExpr::var(0);
        e.add_term(1, &q(3, 1));
        e.add_scaled(&LinExpr::var(1), &q(-3, 1));
        assert_eq!(e, LinExpr::var(0));
        e.scale(&q(2, 1));
        assert_eq!(e.coeff(0), q(2, 1));
        e.scale(&q(0, 1));
        assert!(e.is_zero());
    }

    #[test]
    fn expr_eval() {
        let e = LinExpr::from_terms(vec![(0, q(2, 1)), (1, q(1, 1))]);
        let vals = vec![q(3, 1), q(4, 1)];
        assert_eq!(e.eval(&vals), q(10, 1));
        // Out-of-range variables read as zero.
        let e2 = LinExpr::var(5);
        assert_eq!(e2.eval(&vals), q(0, 1));
    }

    #[test]
    fn op_semantics() {
        assert!(CmpOp::Lt.eval(&q(1, 2), &q(1, 1)));
        assert!(!CmpOp::Lt.eval(&q(1, 1), &q(1, 1)));
        assert!(CmpOp::Le.eval(&q(1, 1), &q(1, 1)));
        assert!(CmpOp::Eq.eval(&q(2, 4), &q(1, 2)));
        assert!(CmpOp::Ge.eval(&q(3, 1), &q(1, 1)));
        assert!(CmpOp::Gt.eval(&q(3, 1), &q(1, 1)));
    }

    #[test]
    fn op_negate_and_flip() {
        assert_eq!(CmpOp::Lt.negate(), Some(CmpOp::Ge));
        assert_eq!(CmpOp::Ge.negate(), Some(CmpOp::Lt));
        assert_eq!(CmpOp::Eq.negate(), None);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert!(CmpOp::Lt.is_strict() && CmpOp::Gt.is_strict());
        assert!(!CmpOp::Le.is_strict() && !CmpOp::Eq.is_strict());
    }

    #[test]
    fn constraint_negation_splits_equality() {
        let c = LinearConstraint::new(LinExpr::var(0), CmpOp::Eq, q(5, 1));
        let neg = c.negate();
        assert_eq!(neg.len(), 2);
        assert_eq!(neg[0].op, CmpOp::Lt);
        assert_eq!(neg[1].op, CmpOp::Gt);
        // For any value, exactly one of {c, neg[0], neg[1]} holds.
        for v in [q(4, 1), q(5, 1), q(6, 1)] {
            let vals = vec![v];
            let holds = [c.eval(&vals), neg[0].eval(&vals), neg[1].eval(&vals)];
            assert_eq!(holds.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn constraint_eval_and_display() {
        let c = LinearConstraint::new(
            LinExpr::from_terms(vec![(0, q(2, 1)), (1, q(1, 1))]),
            CmpOp::Lt,
            q(10, 1),
        );
        assert!(c.eval(&[q(3, 1), q(3, 1)]));
        assert!(!c.eval(&[q(5, 1), q(0, 1)]));
        assert_eq!(c.to_string(), "2*v0 + 1*v1 < 10");
        assert!(!c.is_trivial());
        assert_eq!(c.max_var(), Some(1));
    }
}
