//! A persistent, backtrackable assertion stack over the incremental
//! simplex.
//!
//! The loose control loop of the paper re-solves the linear system from
//! scratch on every theory check; consecutive Boolean models, however,
//! usually differ in only a handful of theory literals. [`AssertionStack`]
//! keeps one [`Simplex`] alive across checks: constraints are `push`ed,
//! suffixes are removed with `pop_to`, and every [`AssertionStack::check`]
//! after the first warm-starts from the previous basis — popping restores
//! *bounds* only, so the tableau rows and the β assignment survive and
//! re-checking costs a few pivots instead of a full solve.
//!
//! Conflicts are reported as **stack positions** ([`RowId`]s), which the
//! caller can map straight back to theory literals. When built with
//! `minimize = true` the stack also minimises each conflict with an
//! in-place deletion filter: a candidate drop re-asserts the remaining
//! bounds onto the *same* tableau (rows and basis are reused), so each
//! filter step costs bound updates plus a warm check rather than a fresh
//! tableau construction as in [`crate::minimal_infeasible_subset`].

use crate::constraint::LinearConstraint;
use crate::simplex::{CheckResult, Simplex};
use absolver_num::Rational;
use std::time::{Duration, Instant};

/// Position of a pushed constraint on the stack: dense, 0-based,
/// assigned in push order and compacted by [`AssertionStack::pop_to`].
pub type RowId = usize;

/// Verdict of [`AssertionStack::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackResult {
    /// The pushed constraints are simultaneously satisfiable.
    Sat,
    /// They are not; the payload holds stack positions of a conflicting
    /// subset, minimised when the stack was created with `minimize`.
    Unsat(Vec<RowId>),
}

impl StackResult {
    /// Returns `true` for [`StackResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, StackResult::Sat)
    }
}

/// Backtrackable assertion stack with warm-started feasibility checks.
///
/// ```
/// use absolver_linear::{AssertionStack, CmpOp, LinExpr, LinearConstraint, StackResult};
/// use absolver_num::Rational;
///
/// let c = |v, op, rhs: i64| LinearConstraint::new(LinExpr::var(v), op, Rational::from_int(rhs));
/// let mut stack = AssertionStack::new(1, true);
/// stack.push(&c(0, CmpOp::Ge, 0)).unwrap();
/// let mark = stack.len();
/// stack.push(&c(0, CmpOp::Le, -1)).unwrap_err(); // conflicts with row 0
/// stack.pop_to(mark);
/// assert!(stack.check().is_sat()); // x ≥ 0 alone is fine again
/// ```
#[derive(Debug)]
pub struct AssertionStack {
    simplex: Simplex,
    /// Pushed constraints in stack order; `RowId` indexes this.
    entries: Vec<LinearConstraint>,
    /// Undo-log mark taken immediately before each entry was asserted.
    marks: Vec<usize>,
    /// Simplex constraint id → stack position of the entry that asserted
    /// it. One id is consumed per assertion attempt, and re-assertion
    /// after pops allocates fresh ids, so this table only ever grows; it
    /// is never truncated because restored bounds may still carry old
    /// ids as their reasons.
    owner: Vec<RowId>,
    minimize: bool,
    checks: u64,
    warm_starts: u64,
    min_time: Duration,
}

impl AssertionStack {
    /// Creates an empty stack over `num_vars` problem variables. With
    /// `minimize`, every [`AssertionStack::check`] conflict is reduced to
    /// an irredundant core by the in-place deletion filter.
    pub fn new(num_vars: usize, minimize: bool) -> AssertionStack {
        AssertionStack {
            simplex: Simplex::with_vars(num_vars),
            entries: Vec::new(),
            marks: Vec::new(),
            owner: Vec::new(),
            minimize,
            checks: 0,
            warm_starts: 0,
            min_time: Duration::ZERO,
        }
    }

    /// Number of constraints currently on the stack. Doubles as the mark
    /// to hand to [`AssertionStack::pop_to`] for restoring this state.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no constraints are pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of problem variables the stack was created over.
    pub fn num_vars(&self) -> usize {
        self.simplex.num_vars()
    }

    /// Total simplex pivots performed over the stack's lifetime.
    pub fn pivots(&self) -> u64 {
        self.simplex.pivots()
    }

    /// Number of [`AssertionStack::check`] calls so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Checks that reused the basis of an earlier check (all but the
    /// first).
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    /// Wall-clock time spent minimising conflicts.
    pub fn min_time(&self) -> Duration {
        self.min_time
    }

    /// Pushes a constraint; returns its stack position.
    ///
    /// # Errors
    ///
    /// If the new bound immediately contradicts existing ones, the stack
    /// is left unchanged and the payload lists the positions of the
    /// previously pushed constraints involved; the rejected constraint
    /// itself is part of every such conflict and is *not* listed. An
    /// empty payload means the constraint is contradictory on its own
    /// (e.g. `0 ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if the constraint mentions a variable `>= num_vars()`.
    pub fn push(&mut self, c: &LinearConstraint) -> Result<RowId, Vec<RowId>> {
        let mark = self.simplex.undo_mark();
        let rid = self.entries.len();
        match Self::assert_recording(&mut self.simplex, &mut self.owner, c, rid) {
            Ok(()) => {
                self.entries.push(c.clone());
                self.marks.push(mark);
                Ok(rid)
            }
            Err(core) => {
                self.simplex.undo_to(mark);
                Err(core)
            }
        }
    }

    /// Removes every constraint at position `mark` and above. Bounds are
    /// restored; the tableau and β assignment are kept for warm restarts.
    pub fn pop_to(&mut self, mark: usize) {
        if mark >= self.entries.len() {
            return;
        }
        self.simplex.undo_to(self.marks[mark]);
        self.entries.truncate(mark);
        self.marks.truncate(mark);
    }

    /// Decides feasibility of the pushed constraints, warm-starting from
    /// the basis the previous check left behind.
    pub fn check(&mut self) -> StackResult {
        self.checks += 1;
        if self.checks > 1 {
            self.warm_starts += 1;
        }
        match self.simplex.check() {
            CheckResult::Sat => StackResult::Sat,
            CheckResult::Unsat(cids) => {
                let mut core: Vec<RowId> = cids.iter().map(|&cid| self.owner[cid]).collect();
                core.sort_unstable();
                core.dedup();
                if self.minimize && core.len() > 1 {
                    let start = Instant::now();
                    core = self.minimize_core(core);
                    self.min_time += start.elapsed();
                }
                StackResult::Unsat(core)
            }
        }
    }

    /// Extracts a rational witness after a [`StackResult::Sat`] verdict.
    pub fn model(&self) -> Vec<Rational> {
        self.simplex.model()
    }

    /// Asserts `c` into the simplex, recording the freshly allocated
    /// constraint id as owned by stack position `rid`. Exactly one id is
    /// consumed per call (also on failure), keeping `owner` aligned with
    /// the simplex id counter. Conflicts are mapped to stack positions
    /// with the rejected constraint's own id filtered out.
    fn assert_recording(
        simplex: &mut Simplex,
        owner: &mut Vec<RowId>,
        c: &LinearConstraint,
        rid: RowId,
    ) -> Result<(), Vec<RowId>> {
        let result = simplex.assert_constraint(c);
        owner.push(rid);
        let rejected = owner.len() - 1;
        match result {
            Ok(cid) => {
                debug_assert_eq!(cid, rejected, "owner table out of sync with simplex ids");
                Ok(())
            }
            Err(cids) => {
                let mut core: Vec<RowId> = cids
                    .into_iter()
                    .filter(|&cid| cid != rejected)
                    .map(|cid| owner[cid])
                    .collect();
                core.sort_unstable();
                core.dedup();
                Err(core)
            }
        }
    }

    /// Deletion filter run entirely on the stack's own tableau: each
    /// trial pops *all* bounds and re-asserts the candidate subset, so a
    /// step costs bound updates plus a warm check. A successful shrink
    /// resumes from the current position — members already proven
    /// necessary stay proven (a constraint whose removal makes the rest
    /// feasible belongs to every infeasible subset of the remainder).
    fn minimize_core(&mut self, mut core: Vec<RowId>) -> Vec<RowId> {
        let mut i = 0;
        while core.len() > 1 && i < core.len() {
            match self.try_without(&core, i) {
                Some(sub) => core = sub,
                None => i += 1,
            }
        }
        self.replay();
        core.sort_unstable();
        core
    }

    /// Re-asserts `core` minus position `skip` from a clean bound state;
    /// returns the sub-conflict (as stack positions) if still infeasible.
    fn try_without(&mut self, core: &[RowId], skip: usize) -> Option<Vec<RowId>> {
        self.simplex.undo_to(0);
        for (j, &rid) in core.iter().enumerate() {
            if j == skip {
                continue;
            }
            let result =
                Self::assert_recording(&mut self.simplex, &mut self.owner, &self.entries[rid], rid);
            if let Err(mut sub) = result {
                sub.push(rid);
                sub.sort_unstable();
                sub.dedup();
                return Some(sub);
            }
        }
        match self.simplex.check() {
            CheckResult::Sat => None,
            CheckResult::Unsat(cids) => {
                let mut sub: Vec<RowId> = cids.iter().map(|&cid| self.owner[cid]).collect();
                sub.sort_unstable();
                sub.dedup();
                Some(sub)
            }
        }
    }

    /// Restores the full assertion state after minimisation trials. The
    /// surviving entries were each accepted from exactly this prefix
    /// state when originally pushed (LIFO discipline), so re-assertion
    /// cannot conflict.
    fn replay(&mut self) {
        self.simplex.undo_to(0);
        self.marks.clear();
        for rid in 0..self.entries.len() {
            self.marks.push(self.simplex.undo_mark());
            Self::assert_recording(&mut self.simplex, &mut self.owner, &self.entries[rid], rid)
                .expect("replaying previously accepted constraints cannot conflict");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{CmpOp, LinExpr};
    use crate::simplex::check_conjunction;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn c(terms: &[(usize, i64)], op: CmpOp, rhs: i64) -> LinearConstraint {
        LinearConstraint::new(
            LinExpr::from_terms(terms.iter().map(|&(v, k)| (v, q(k)))),
            op,
            q(rhs),
        )
    }

    #[test]
    fn push_check_pop_roundtrip() {
        let mut s = AssertionStack::new(2, true);
        s.push(&c(&[(0, 1)], CmpOp::Ge, 0)).unwrap();
        s.push(&c(&[(1, 1)], CmpOp::Ge, 0)).unwrap();
        assert_eq!(s.check(), StackResult::Sat);
        let mark = s.len();
        s.push(&c(&[(0, 1), (1, 1)], CmpOp::Lt, 0)).unwrap();
        match s.check() {
            StackResult::Unsat(core) => assert_eq!(core, vec![0, 1, 2]),
            StackResult::Sat => panic!("expected conflict"),
        }
        s.pop_to(mark);
        assert_eq!(s.check(), StackResult::Sat);
        assert!(s.warm_starts() >= 2);
    }

    #[test]
    fn push_conflict_reports_positions_and_leaves_stack_intact() {
        let mut s = AssertionStack::new(1, true);
        s.push(&c(&[(0, 1)], CmpOp::Le, 3)).unwrap();
        let err = s.push(&c(&[(0, 1)], CmpOp::Gt, 3)).unwrap_err();
        assert_eq!(err, vec![0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.check(), StackResult::Sat);
        // A self-contradictory constraint reports an empty external core.
        let err = s
            .push(&LinearConstraint::new(LinExpr::zero(), CmpOp::Ge, q(1)))
            .unwrap_err();
        assert!(err.is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn minimized_core_filters_irrelevant_rows() {
        let mut s = AssertionStack::new(2, true);
        s.push(&c(&[(1, 1)], CmpOp::Ge, 0)).unwrap(); // irrelevant
        s.push(&c(&[(0, 1), (1, 1)], CmpOp::Le, 2)).unwrap();
        s.push(&c(&[(0, 1)], CmpOp::Ge, 2)).unwrap();
        s.push(&c(&[(1, 1)], CmpOp::Ge, 1)).unwrap();
        s.push(&c(&[(0, 1), (1, 1)], CmpOp::Le, 10)).unwrap(); // dominated
        match s.check() {
            StackResult::Unsat(core) => {
                assert_eq!(core, vec![1, 2, 3], "expected the irredundant triangle");
            }
            StackResult::Sat => panic!("expected conflict"),
        }
        // The stack is fully restored after minimisation: popping the
        // middle of the core makes the rest feasible again.
        s.pop_to(2);
        assert_eq!(s.check(), StackResult::Sat);
        let model = s.model();
        assert!(&model[0] + &model[1] <= q(2));
    }

    #[test]
    fn repeated_pop_push_cycles_agree_with_scratch() {
        // Alternate between two bound sets many times; verdicts must
        // match one-shot checks throughout.
        let base = vec![
            c(&[(0, 1), (1, 1)], CmpOp::Le, 4),
            c(&[(0, 1)], CmpOp::Ge, 0),
        ];
        let tight = c(&[(1, 1)], CmpOp::Ge, 5); // makes it infeasible
        let loose = c(&[(1, 1)], CmpOp::Ge, 1);
        let mut s = AssertionStack::new(2, true);
        for cst in &base {
            s.push(cst).unwrap();
        }
        let mark = s.len();
        for round in 0..10 {
            let extra = if round % 2 == 0 { &tight } else { &loose };
            let mut scratch: Vec<LinearConstraint> = base.clone();
            scratch.push(extra.clone());
            let expect = check_conjunction(&scratch).is_feasible();
            if s.push(extra).is_ok() {
                assert_eq!(s.check().is_sat(), expect, "round {round}");
            } else {
                assert!(
                    !expect,
                    "round {round}: assert-time conflict on feasible set"
                );
            }
            s.pop_to(mark);
        }
        assert_eq!(s.check(), StackResult::Sat);
    }

    #[test]
    fn equality_bounds_pop_cleanly() {
        let mut s = AssertionStack::new(2, false);
        s.push(&c(&[(0, 1), (1, 1)], CmpOp::Eq, 5)).unwrap();
        let mark = s.len();
        s.push(&c(&[(0, 1), (1, 1)], CmpOp::Eq, 6)).unwrap_err();
        s.pop_to(mark);
        s.push(&c(&[(0, 1), (1, -1)], CmpOp::Eq, 1)).unwrap();
        assert_eq!(s.check(), StackResult::Sat);
        let m = s.model();
        assert_eq!(m[0], q(3));
        assert_eq!(m[1], q(2));
    }

    /// Differential: random push/pop/check interleavings agree with
    /// from-scratch `check_conjunction` on the live prefix.
    #[test]
    fn random_interleavings_agree_with_scratch() {
        use absolver_testkit::{Rng, TestRng};
        let mut rng = TestRng::seed_from_u64(0x57AC_D1FF);
        for case in 0..200 {
            let num_vars = rng.gen_range(1..=3usize);
            let mut stack = AssertionStack::new(num_vars, case % 2 == 0);
            let mut live: Vec<LinearConstraint> = Vec::new();
            for _step in 0..24 {
                match rng.gen_range(0..4u32) {
                    0 | 1 => {
                        // Push a random constraint (possibly rejected).
                        let cst = random_constraint(&mut rng, num_vars);
                        match stack.push(&cst) {
                            Ok(rid) => {
                                assert_eq!(rid, live.len());
                                live.push(cst);
                            }
                            Err(core) => {
                                // The rejected constraint plus the cited
                                // rows must be jointly infeasible.
                                let mut subset: Vec<LinearConstraint> =
                                    core.iter().map(|&r| live[r].clone()).collect();
                                subset.push(cst);
                                assert!(
                                    !check_conjunction(&subset).is_feasible(),
                                    "case {case}: push conflict certificate is feasible"
                                );
                            }
                        }
                    }
                    2 => {
                        let mark = rng.gen_range(0..=live.len());
                        stack.pop_to(mark);
                        live.truncate(mark);
                    }
                    _ => {
                        let expect = check_conjunction(&live).is_feasible();
                        match stack.check() {
                            StackResult::Sat => {
                                assert!(expect, "case {case}: stack sat, scratch unsat");
                                let model = stack.model();
                                for cst in &live {
                                    assert!(
                                        cst.eval(&model),
                                        "case {case}: witness violates {cst}"
                                    );
                                }
                            }
                            StackResult::Unsat(core) => {
                                assert!(!expect, "case {case}: stack unsat, scratch sat");
                                let subset: Vec<LinearConstraint> =
                                    core.iter().map(|&r| live[r].clone()).collect();
                                assert!(
                                    !check_conjunction(&subset).is_feasible(),
                                    "case {case}: unsat core {core:?} is feasible"
                                );
                            }
                        }
                    }
                }
            }
        }

        fn random_constraint(
            rng: &mut impl absolver_testkit::Rng,
            num_vars: usize,
        ) -> LinearConstraint {
            let nterms = rng.gen_range(1..=3usize);
            let terms: Vec<(usize, Rational)> = (0..nterms)
                .map(|_| {
                    (
                        rng.gen_range(0..num_vars),
                        Rational::from_int(rng.gen_range(-4i64..=4)),
                    )
                })
                .collect();
            let op = match rng.gen_range(0..5u32) {
                0 => CmpOp::Le,
                1 => CmpOp::Ge,
                2 => CmpOp::Lt,
                3 => CmpOp::Gt,
                _ => CmpOp::Eq,
            };
            LinearConstraint::new(
                LinExpr::from_terms(terms),
                op,
                Rational::from_int(rng.gen_range(-6i64..=6)),
            )
        }
    }
}
