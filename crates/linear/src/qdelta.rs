//! Rationals extended with an infinitesimal: `Q_δ = { a + b·δ }`.
//!
//! Strict inequalities such as `x < 5` cannot be expressed as simplex
//! bounds directly; following the standard DPLL(T) simplex construction
//! they are rewritten as `x ≤ 5 − δ` for a symbolic infinitesimal `δ > 0`.
//! [`QDelta`] implements that extended number field (ordering is
//! lexicographic), and at model-extraction time a concrete positive value
//! for `δ` is computed that satisfies every asserted strict bound.

use absolver_num::Rational;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A value `real + delta·δ` in the infinitesimal extension of the rationals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QDelta {
    /// Standard (real) part.
    pub real: Rational,
    /// Coefficient of the infinitesimal `δ`.
    pub delta: Rational,
}

impl QDelta {
    /// The value `0`.
    pub fn zero() -> QDelta {
        QDelta::default()
    }

    /// A purely real value.
    pub fn real(r: Rational) -> QDelta {
        QDelta {
            real: r,
            delta: Rational::zero(),
        }
    }

    /// `r - δ` (used for strict upper bounds `x < r`).
    pub fn just_below(r: Rational) -> QDelta {
        QDelta {
            real: r,
            delta: -Rational::one(),
        }
    }

    /// `r + δ` (used for strict lower bounds `x > r`).
    pub fn just_above(r: Rational) -> QDelta {
        QDelta {
            real: r,
            delta: Rational::one(),
        }
    }

    /// Returns `true` if both parts are zero.
    pub fn is_zero(&self) -> bool {
        self.real.is_zero() && self.delta.is_zero()
    }

    /// Evaluates at a concrete `δ = eps`.
    pub fn eval(&self, eps: &Rational) -> Rational {
        &self.real + &self.delta * eps
    }

    /// Scales by a rational factor.
    pub fn scale(&self, k: &Rational) -> QDelta {
        QDelta {
            real: &self.real * k,
            delta: &self.delta * k,
        }
    }
}

impl From<Rational> for QDelta {
    fn from(r: Rational) -> QDelta {
        QDelta::real(r)
    }
}

impl From<i64> for QDelta {
    fn from(v: i64) -> QDelta {
        QDelta::real(Rational::from_int(v))
    }
}

impl PartialOrd for QDelta {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QDelta {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic: δ is positive but smaller than any positive rational.
        self.real
            .cmp(&other.real)
            .then_with(|| self.delta.cmp(&other.delta))
    }
}

impl Add for &QDelta {
    type Output = QDelta;
    fn add(self, rhs: &QDelta) -> QDelta {
        QDelta {
            real: &self.real + &rhs.real,
            delta: &self.delta + &rhs.delta,
        }
    }
}

impl Sub for &QDelta {
    type Output = QDelta;
    fn sub(self, rhs: &QDelta) -> QDelta {
        QDelta {
            real: &self.real - &rhs.real,
            delta: &self.delta - &rhs.delta,
        }
    }
}

impl Neg for &QDelta {
    type Output = QDelta;
    fn neg(self) -> QDelta {
        QDelta {
            real: -&self.real,
            delta: -&self.delta,
        }
    }
}

impl Mul<&Rational> for &QDelta {
    type Output = QDelta;
    fn mul(self, rhs: &Rational) -> QDelta {
        self.scale(rhs)
    }
}

macro_rules! forward_binop {
    ($($tr:ident :: $m:ident),*) => {$(
        impl $tr for QDelta {
            type Output = QDelta;
            fn $m(self, rhs: QDelta) -> QDelta { (&self).$m(&rhs) }
        }
    )*};
}
forward_binop!(Add::add, Sub::sub);

impl Neg for QDelta {
    type Output = QDelta;
    fn neg(self) -> QDelta {
        -&self
    }
}

impl fmt::Display for QDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta.is_zero() {
            write!(f, "{}", self.real)
        } else if self.delta.is_positive() {
            write!(f, "{} + {}δ", self.real, self.delta)
        } else {
            write!(f, "{} - {}δ", self.real, self.delta.abs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn ordering_respects_infinitesimal() {
        let five = QDelta::real(q(5, 1));
        let below = QDelta::just_below(q(5, 1));
        let above = QDelta::just_above(q(5, 1));
        assert!(below < five);
        assert!(five < above);
        assert!(below < above);
        // δ is smaller than any positive rational distance.
        let four_nine = QDelta::real(q(49999, 10000));
        assert!(four_nine < below);
    }

    #[test]
    fn arithmetic() {
        let a = QDelta::just_above(q(1, 1)); // 1 + δ
        let b = QDelta::just_below(q(2, 1)); // 2 - δ
        let s = &a + &b;
        assert_eq!(s, QDelta::real(q(3, 1))); // δs cancel
        let d = &b - &a;
        assert_eq!(
            d,
            QDelta {
                real: q(1, 1),
                delta: q(-2, 1)
            }
        );
        assert_eq!(
            -&a,
            QDelta {
                real: q(-1, 1),
                delta: q(-1, 1)
            }
        );
        assert_eq!(
            a.scale(&q(2, 1)),
            QDelta {
                real: q(2, 1),
                delta: q(2, 1)
            }
        );
    }

    #[test]
    fn eval_at_concrete_epsilon() {
        let v = QDelta::just_below(q(5, 1));
        assert_eq!(v.eval(&q(1, 100)), q(499, 100));
    }

    #[test]
    fn display() {
        assert_eq!(QDelta::real(q(3, 2)).to_string(), "3/2");
        assert_eq!(QDelta::just_above(q(0, 1)).to_string(), "0 + 1δ");
        assert_eq!(QDelta::just_below(q(1, 1)).to_string(), "1 - 1δ");
    }
}
