//! An incremental simplex solver for conjunctions of linear constraints.
//!
//! This module plays the role COIN LP plays in the paper: deciding
//! feasibility of the linear constraint system implied by a Boolean model,
//! and producing either a rational witness or a conflicting subset of
//! constraints ("the smallest conflicting subset is computed and returned
//! as a hint for further queries to the SAT-solver", Sec. 4).
//!
//! The algorithm is the general simplex of Dutertre & de Moura ("A fast
//! linear-arithmetic solver for DPLL(T)"): each distinct linear form gets a
//! slack variable, constraints become bounds in the infinitesimal-extended
//! rationals [`QDelta`], and a Bland-rule pivot loop restores bound
//! consistency or yields an infeasibility certificate. Exact [`Rational`]
//! arithmetic makes every verdict sound. The same engine serves both
//! ABsolver's loosely-coupled control loop (one-shot checks) and the
//! tightly-integrated baseline (incremental `push`/`pop`).

use crate::constraint::{CmpOp, LinExpr, LinearConstraint, VarId};
use crate::qdelta::QDelta;
use absolver_num::Rational;
use std::collections::HashMap;

/// Identifier of an asserted constraint, in assertion order.
pub type ConstraintId = usize;

/// Result of a feasibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The asserted constraints are simultaneously satisfiable.
    Sat,
    /// They are not; the payload is a conflicting subset of constraint ids.
    Unsat(Vec<ConstraintId>),
}

impl CheckResult {
    /// Returns `true` for [`CheckResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat)
    }
}

#[derive(Debug, Clone)]
struct Bound {
    value: QDelta,
    reason: ConstraintId,
}

#[derive(Debug, Clone)]
struct Row {
    basic: VarId,
    /// The basic variable expressed over nonbasic variables.
    expr: LinExpr,
}

#[derive(Debug)]
enum Undo {
    SetLower(VarId, Option<Bound>),
    SetUpper(VarId, Option<Bound>),
}

/// Incremental simplex over `Q_δ` with backtracking scopes.
///
/// ```
/// use absolver_linear::{CheckResult, CmpOp, LinExpr, LinearConstraint, Simplex};
/// use absolver_num::Rational;
///
/// // x + y <= 2  ∧  x - y >= 3  ∧  y >= 0 is infeasible.
/// let c = |terms: Vec<(usize, i64)>, op, rhs: i64| {
///     LinearConstraint::new(
///         LinExpr::from_terms(terms.into_iter().map(|(v, k)| (v, Rational::from_int(k)))),
///         op,
///         Rational::from_int(rhs),
///     )
/// };
/// let mut s = Simplex::with_vars(2);
/// s.assert_constraint(&c(vec![(0, 1), (1, 1)], CmpOp::Le, 2)).unwrap();
/// s.assert_constraint(&c(vec![(0, 1), (1, -1)], CmpOp::Ge, 3)).unwrap();
/// s.assert_constraint(&c(vec![(1, 1)], CmpOp::Ge, 0)).unwrap();
/// assert!(!s.check().is_sat());
/// ```
#[derive(Debug)]
pub struct Simplex {
    /// Number of problem (non-slack) variables.
    num_problem_vars: usize,
    /// Current value of every variable (problem + slack).
    value: Vec<QDelta>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    /// Row index of each basic variable.
    basic_row: Vec<Option<usize>>,
    rows: Vec<Row>,
    /// Canonical linear form → slack variable.
    slack_of: HashMap<LinExpr, VarId>,
    next_constraint: ConstraintId,
    undo: Vec<Undo>,
    scopes: Vec<usize>,
    /// Statistics: pivot operations performed.
    pivots: u64,
}

impl Default for Simplex {
    fn default() -> Self {
        Simplex::with_vars(0)
    }
}

impl Simplex {
    /// Creates a solver over `num_vars` problem variables (`0..num_vars`).
    pub fn with_vars(num_vars: usize) -> Simplex {
        let mut s = Simplex {
            num_problem_vars: num_vars,
            value: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            basic_row: Vec::new(),
            rows: Vec::new(),
            slack_of: HashMap::new(),
            next_constraint: 0,
            undo: Vec::new(),
            scopes: Vec::new(),
            pivots: 0,
        };
        s.grow_to(num_vars);
        s
    }

    /// Number of problem variables.
    pub fn num_vars(&self) -> usize {
        self.num_problem_vars
    }

    /// Total pivot operations performed so far.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    fn grow_to(&mut self, n: usize) {
        while self.value.len() < n {
            self.value.push(QDelta::zero());
            self.lower.push(None);
            self.upper.push(None);
            self.basic_row.push(None);
        }
    }

    /// Opens a backtracking scope.
    pub fn push(&mut self) {
        self.scopes.push(self.undo.len());
    }

    /// Reverts all bound assertions since the matching [`Simplex::push`].
    ///
    /// # Panics
    ///
    /// Panics if there is no open scope.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        self.undo_to(mark);
    }

    /// Current position in the undo log; pass to [`Simplex::undo_to`] to
    /// revert everything asserted after this point. Unlike the
    /// `push`/`pop` scope pair this imposes no nesting discipline — it is
    /// the raw primitive the [`crate::AssertionStack`] builds on.
    pub(crate) fn undo_mark(&self) -> usize {
        self.undo.len()
    }

    /// Reverts bound assertions down to a mark from [`Simplex::undo_mark`].
    /// Only bounds are undone: tableau rows, slack variables and the
    /// current β assignment persist, which is what makes a subsequent
    /// [`Simplex::check`] a warm start.
    pub(crate) fn undo_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            match self.undo.pop().unwrap() {
                Undo::SetLower(v, old) => self.lower[v] = old,
                Undo::SetUpper(v, old) => self.upper[v] = old,
            }
        }
    }

    /// Returns the slack variable representing `expr`, creating a tableau
    /// row if this linear form is new. The expression is canonicalised by
    /// dividing through the leading coefficient; the returned factor `k`
    /// satisfies `expr = k · canonical`.
    fn slack_for(&mut self, expr: &LinExpr) -> (VarId, Rational) {
        debug_assert!(!expr.is_zero());
        let lead = expr.terms()[0].1.clone();
        let mut canon = expr.clone();
        canon.scale(&lead.recip());
        // A canonical single variable needs no slack: bound it directly.
        if canon.terms().len() == 1 {
            return (canon.terms()[0].0, lead);
        }
        if let Some(&s) = self.slack_of.get(&canon) {
            return (s, lead);
        }
        // New slack variable s = canon; substitute current basic variables.
        let s = self.value.len();
        self.grow_to(s + 1);
        let mut row_expr = LinExpr::zero();
        for (v, c) in canon.terms() {
            match self.basic_row[*v] {
                Some(r) => {
                    let sub = self.rows[r].expr.clone();
                    row_expr.add_scaled(&sub, c);
                }
                None => row_expr.add_term(*v, c),
            }
        }
        // β(s) := row value under current β.
        let mut beta = QDelta::zero();
        for (v, c) in row_expr.terms() {
            beta = &beta + &self.value[*v].scale(c);
        }
        self.value[s] = beta;
        self.basic_row[s] = Some(self.rows.len());
        self.rows.push(Row {
            basic: s,
            expr: row_expr,
        });
        self.slack_of.insert(canon, s);
        (s, lead)
    }

    /// Asserts a constraint; returns its id, or an immediate conflict when
    /// the new bound contradicts an existing one on the same linear form.
    ///
    /// # Errors
    ///
    /// The error payload is a conflicting subset of constraint ids
    /// (including the new constraint's own id).
    ///
    /// # Panics
    ///
    /// Panics if the constraint mentions a variable `>= num_vars()`.
    pub fn assert_constraint(
        &mut self,
        c: &LinearConstraint,
    ) -> Result<ConstraintId, Vec<ConstraintId>> {
        let cid = self.next_constraint;
        self.next_constraint += 1;

        if let Some(max) = c.max_var() {
            assert!(
                max < self.num_problem_vars,
                "constraint mentions unregistered variable v{max}"
            );
        }
        if c.is_trivial() {
            // 0 ⋈ rhs
            return if c.op.eval(&Rational::zero(), &c.rhs) {
                Ok(cid)
            } else {
                Err(vec![cid])
            };
        }

        let (var, k) = self.slack_for(&c.expr);
        // expr ⋈ rhs  ⇔  k·s ⋈ rhs  ⇔  s ⋈' rhs/k  (⋈' flipped if k < 0).
        let rhs = &c.rhs / &k;
        let op = if k.is_negative() { c.op.flip() } else { c.op };
        let result = match op {
            CmpOp::Le => self.assert_bound(var, false, QDelta::real(rhs), cid),
            CmpOp::Lt => self.assert_bound(var, false, QDelta::just_below(rhs), cid),
            CmpOp::Ge => self.assert_bound(var, true, QDelta::real(rhs), cid),
            CmpOp::Gt => self.assert_bound(var, true, QDelta::just_above(rhs), cid),
            CmpOp::Eq => self
                .assert_bound(var, true, QDelta::real(rhs.clone()), cid)
                .and_then(|_| self.assert_bound(var, false, QDelta::real(rhs), cid)),
        };
        result.map(|_| cid)
    }

    fn assert_bound(
        &mut self,
        var: VarId,
        is_lower: bool,
        bound: QDelta,
        reason: ConstraintId,
    ) -> Result<(), Vec<ConstraintId>> {
        if is_lower {
            if let Some(l) = &self.lower[var] {
                if bound <= l.value {
                    return Ok(()); // weaker than the existing bound
                }
            }
            if let Some(u) = &self.upper[var] {
                if bound > u.value {
                    let mut conflict = vec![reason, u.reason];
                    conflict.sort_unstable();
                    conflict.dedup();
                    return Err(conflict);
                }
            }
            self.undo.push(Undo::SetLower(var, self.lower[var].take()));
            self.lower[var] = Some(Bound {
                value: bound.clone(),
                reason,
            });
            if self.basic_row[var].is_none() && self.value[var] < bound {
                self.update_nonbasic(var, bound);
            }
        } else {
            if let Some(u) = &self.upper[var] {
                if bound >= u.value {
                    return Ok(());
                }
            }
            if let Some(l) = &self.lower[var] {
                if bound < l.value {
                    let mut conflict = vec![reason, l.reason];
                    conflict.sort_unstable();
                    conflict.dedup();
                    return Err(conflict);
                }
            }
            self.undo.push(Undo::SetUpper(var, self.upper[var].take()));
            self.upper[var] = Some(Bound {
                value: bound.clone(),
                reason,
            });
            if self.basic_row[var].is_none() && self.value[var] > bound {
                self.update_nonbasic(var, bound);
            }
        }
        Ok(())
    }

    /// Moves a nonbasic variable to `v`, adjusting all dependent basics.
    fn update_nonbasic(&mut self, var: VarId, v: QDelta) {
        let diff = &v - &self.value[var];
        for row in &self.rows {
            let c = row.expr.coeff(var);
            if !c.is_zero() {
                let adj = diff.scale(&c);
                self.value[row.basic] = &self.value[row.basic] + &adj;
            }
        }
        self.value[var] = v;
    }

    /// Restores bound consistency; returns a conflict certificate on
    /// infeasibility. Uses Bland's rule, so it always terminates.
    pub fn check(&mut self) -> CheckResult {
        loop {
            // Find the violating basic variable with the smallest id.
            let mut violating: Option<(VarId, bool)> = None; // (var, below_lower)
            for row in &self.rows {
                let x = row.basic;
                if let Some(l) = &self.lower[x] {
                    if self.value[x] < l.value {
                        if violating.is_none_or(|(v, _)| x < v) {
                            violating = Some((x, true));
                        }
                        continue;
                    }
                }
                if let Some(u) = &self.upper[x] {
                    if self.value[x] > u.value && violating.is_none_or(|(v, _)| x < v) {
                        violating = Some((x, false));
                    }
                }
            }
            let Some((xi, below)) = violating else {
                return CheckResult::Sat;
            };
            let row_idx = self.basic_row[xi].expect("violating var must be basic");
            let row_expr = self.rows[row_idx].expr.clone();

            // Select the entering variable (smallest id, Bland's rule).
            let mut entering: Option<(VarId, Rational)> = None;
            for (xj, a) in row_expr.terms() {
                let can_increase = self.upper[*xj]
                    .as_ref()
                    .is_none_or(|u| self.value[*xj] < u.value);
                let can_decrease = self.lower[*xj]
                    .as_ref()
                    .is_none_or(|l| self.value[*xj] > l.value);
                // To raise xi (below lower): need a>0 and xj can increase, or
                // a<0 and xj can decrease. Mirror-image to lower xi.
                let ok = if below {
                    (a.is_positive() && can_increase) || (a.is_negative() && can_decrease)
                } else {
                    (a.is_positive() && can_decrease) || (a.is_negative() && can_increase)
                };
                if ok {
                    entering = Some((*xj, a.clone()));
                    break; // terms are sorted by var id
                }
            }

            match entering {
                None => {
                    // Infeasible: build the certificate from the row.
                    let mut conflict = Vec::new();
                    if below {
                        conflict.push(self.lower[xi].as_ref().unwrap().reason);
                        for (xj, a) in row_expr.terms() {
                            let b = if a.is_positive() {
                                self.upper[*xj].as_ref()
                            } else {
                                self.lower[*xj].as_ref()
                            };
                            conflict.push(b.expect("blocking bound must exist").reason);
                        }
                    } else {
                        conflict.push(self.upper[xi].as_ref().unwrap().reason);
                        for (xj, a) in row_expr.terms() {
                            let b = if a.is_positive() {
                                self.lower[*xj].as_ref()
                            } else {
                                self.upper[*xj].as_ref()
                            };
                            conflict.push(b.expect("blocking bound must exist").reason);
                        }
                    }
                    conflict.sort_unstable();
                    conflict.dedup();
                    return CheckResult::Unsat(conflict);
                }
                Some((xj, a)) => {
                    let target = if below {
                        self.lower[xi].as_ref().unwrap().value.clone()
                    } else {
                        self.upper[xi].as_ref().unwrap().value.clone()
                    };
                    self.pivot_and_update(xi, xj, &a, target);
                }
            }
        }
    }

    /// Pivots `xj` into the basis replacing `xi`, and moves `xi` to `v`.
    fn pivot_and_update(&mut self, xi: VarId, xj: VarId, aij: &Rational, v: QDelta) {
        self.pivots += 1;
        let row_idx = self.basic_row[xi].unwrap();

        // Adjust β first: θ = (v − β(xi)) / aij.
        let theta = (&v - &self.value[xi]).scale(&aij.recip());
        self.value[xi] = v;
        self.value[xj] = &self.value[xj] + &theta;
        for (r, row) in self.rows.iter().enumerate() {
            if r == row_idx {
                continue;
            }
            let c = row.expr.coeff(xj);
            if !c.is_zero() {
                self.value[row.basic] = &self.value[row.basic] + &theta.scale(&c);
            }
        }

        // Rewrite the pivot row: xi = expr  ⇒  xj = (xi − (expr − aij·xj)) / aij.
        let mut rest = self.rows[row_idx].expr.clone();
        rest.add_term(xj, &-aij.clone());
        let mut new_expr = LinExpr::var(xi);
        new_expr.add_scaled(&rest, &-Rational::one());
        new_expr.scale(&aij.recip());
        self.rows[row_idx] = Row {
            basic: xj,
            expr: new_expr.clone(),
        };
        self.basic_row[xi] = None;
        self.basic_row[xj] = Some(row_idx);

        // Substitute xj in every other row.
        for r in 0..self.rows.len() {
            if r == row_idx {
                continue;
            }
            let c = self.rows[r].expr.coeff(xj);
            if !c.is_zero() {
                let mut e = std::mem::take(&mut self.rows[r].expr);
                e.add_term(xj, &-c.clone());
                e.add_scaled(&new_expr, &c);
                self.rows[r].expr = e;
            }
        }
    }

    // ---- optimisation support (see `crate::optimize`) -------------------

    /// Current β value of a variable.
    pub(crate) fn value_of(&self, v: VarId) -> QDelta {
        self.value[v].clone()
    }

    /// Current lower bound of a variable, if any.
    pub(crate) fn lower_of(&self, v: VarId) -> Option<QDelta> {
        self.lower[v].as_ref().map(|b| b.value.clone())
    }

    /// Current upper bound of a variable, if any.
    pub(crate) fn upper_of(&self, v: VarId) -> Option<QDelta> {
        self.upper[v].as_ref().map(|b| b.value.clone())
    }

    /// Rewrites a linear form over the current nonbasic variables by
    /// substituting every basic variable with its defining row.
    pub(crate) fn substitute_basics(&self, e: &LinExpr) -> LinExpr {
        let mut out = LinExpr::zero();
        for (v, k) in e.terms() {
            match self.basic_row[*v] {
                Some(r) => out.add_scaled(&self.rows[r].expr, k),
                None => out.add_term(*v, k),
            }
        }
        out
    }

    /// Evaluates a linear form at the current β assignment.
    pub(crate) fn eval_qdelta(&self, e: &LinExpr) -> QDelta {
        let mut acc = QDelta::zero();
        for (v, k) in e.terms() {
            acc = &acc + &self.value[*v].scale(k);
        }
        acc
    }

    /// Moves nonbasic `xj` as far as possible in the chosen direction
    /// (`increase` = toward +∞). Stops at the first binding bound: either
    /// `xj`'s own (the variable stays nonbasic at its bound) or a basic
    /// variable's (pivot). Ties break toward the smallest basic id
    /// (Bland's rule).
    pub(crate) fn push_toward(&mut self, xj: VarId, increase: bool) -> crate::optimize::PushResult {
        use crate::optimize::PushResult;
        // Candidate step sizes δ ≥ 0 (movement magnitude along the
        // direction), with the blocking entity.
        #[derive(Clone)]
        enum Blocker {
            Own,
            Basic(VarId, Rational),
        }
        let mut best: Option<(QDelta, Blocker)> = None;
        let consider = |delta: QDelta, blocker: Blocker, best: &mut Option<(QDelta, Blocker)>| {
            let replace = match best {
                None => true,
                Some((cur, cur_blocker)) => {
                    delta < *cur
                        || (delta == *cur
                            && match (&blocker, cur_blocker) {
                                (Blocker::Basic(b, _), Blocker::Basic(cb, _)) => b < cb,
                                (Blocker::Own, Blocker::Basic(..)) => true,
                                _ => false,
                            })
                }
            };
            if replace {
                *best = Some((delta, blocker));
            }
        };

        // xj's own bound.
        let own_bound = if increase {
            self.upper_of(xj)
        } else {
            self.lower_of(xj)
        };
        if let Some(b) = own_bound {
            let slack = if increase {
                &b - &self.value[xj]
            } else {
                &self.value[xj] - &b
            };
            consider(slack, Blocker::Own, &mut best);
        }
        // Basic variables through the rows.
        for row in &self.rows {
            let a = row.expr.coeff(xj);
            if a.is_zero() {
                continue;
            }
            // β(basic) changes by a·(±δ); the binding bound depends on the
            // sign of the movement of the basic variable.
            let movement_sign = if increase { a.clone() } else { -a.clone() };
            let bound = if movement_sign.is_positive() {
                self.upper_of(row.basic)
            } else {
                self.lower_of(row.basic)
            };
            if let Some(b) = bound {
                let room = if movement_sign.is_positive() {
                    &b - &self.value[row.basic]
                } else {
                    &self.value[row.basic] - &b
                };
                let delta = room.scale(&movement_sign.abs().recip());
                consider(delta, Blocker::Basic(row.basic, a.clone()), &mut best);
            }
        }

        match best {
            None => PushResult::Unbounded,
            Some((delta, Blocker::Own)) => {
                let target = if increase {
                    &self.value[xj] + &delta
                } else {
                    &self.value[xj] - &delta
                };
                self.update_nonbasic(xj, target);
                PushResult::Moved
            }
            Some((delta, Blocker::Basic(b, a))) => {
                // The basic variable hits its bound; pivot xj in.
                let signed = if increase { delta } else { -&delta };
                let target = &self.value[b] + &signed.scale(&a);
                self.pivot_and_update(b, xj, &a, target);
                PushResult::Moved
            }
        }
    }

    /// Extracts a rational model for the problem variables. Must be called
    /// after a [`CheckResult::Sat`] verdict; the witness is exact and
    /// satisfies every asserted constraint, including strict ones (a
    /// concrete positive value is substituted for `δ`).
    pub fn model(&self) -> Vec<Rational> {
        // Find ε > 0 keeping every bound satisfied.
        let mut eps = Rational::one();
        for v in 0..self.value.len() {
            let beta = &self.value[v];
            if let Some(l) = &self.lower[v] {
                // l.real + l.delta·ε ≤ beta.real + beta.delta·ε
                let dr = &beta.real - &l.value.real; // ≥ 0 when beta ≥ l
                let dd = &l.value.delta - &beta.delta;
                if dd.is_positive() && dr.is_positive() {
                    eps = eps.min(&dr / &dd);
                }
            }
            if let Some(u) = &self.upper[v] {
                let dr = &u.value.real - &beta.real;
                let dd = &beta.delta - &u.value.delta;
                if dd.is_positive() && dr.is_positive() {
                    eps = eps.min(&dr / &dd);
                }
            }
        }
        (0..self.num_problem_vars)
            .map(|v| self.value[v].eval(&eps))
            .collect()
    }
}

/// Feasibility verdict of [`check_conjunction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feasibility {
    /// Satisfiable; the witness assigns every problem variable.
    Feasible(Vec<Rational>),
    /// Unsatisfiable; the payload indexes a conflicting subset of the input
    /// slice.
    Infeasible(Vec<usize>),
}

impl Feasibility {
    /// Returns `true` for [`Feasibility::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }
}

/// One-shot feasibility check of a conjunction of constraints — the entry
/// point used by ABsolver's loosely-coupled control loop.
pub fn check_conjunction(constraints: &[LinearConstraint]) -> Feasibility {
    check_conjunction_counted(constraints).0
}

/// Like [`check_conjunction`], but also reports the number of simplex
/// pivots the check performed — the cost metric the observability layer
/// attributes to the linear phase.
pub fn check_conjunction_counted(constraints: &[LinearConstraint]) -> (Feasibility, u64) {
    let num_vars = constraints
        .iter()
        .filter_map(LinearConstraint::max_var)
        .map(|v| v + 1)
        .max()
        .unwrap_or(0);
    let mut s = Simplex::with_vars(num_vars);
    for c in constraints {
        if let Err(conflict) = s.assert_constraint(c) {
            return (Feasibility::Infeasible(conflict), s.pivots());
        }
    }
    let feasibility = match s.check() {
        CheckResult::Sat => Feasibility::Feasible(s.model()),
        CheckResult::Unsat(conflict) => Feasibility::Infeasible(conflict),
    };
    (feasibility, s.pivots())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn c(terms: &[(usize, i64)], op: CmpOp, rhs: i64) -> LinearConstraint {
        LinearConstraint::new(
            LinExpr::from_terms(terms.iter().map(|&(v, k)| (v, q(k)))),
            op,
            q(rhs),
        )
    }

    fn assert_model_satisfies(constraints: &[LinearConstraint]) {
        match check_conjunction(constraints) {
            Feasibility::Feasible(model) => {
                for (i, cst) in constraints.iter().enumerate() {
                    assert!(
                        cst.eval(&model),
                        "constraint {i} `{cst}` violated by model {model:?}"
                    );
                }
            }
            Feasibility::Infeasible(core) => {
                panic!("expected feasible, got conflict {core:?}")
            }
        }
    }

    #[test]
    fn single_bounds() {
        assert_model_satisfies(&[c(&[(0, 1)], CmpOp::Ge, 3), c(&[(0, 1)], CmpOp::Le, 5)]);
        assert_model_satisfies(&[c(&[(0, 1)], CmpOp::Gt, 3), c(&[(0, 1)], CmpOp::Lt, 4)]);
    }

    #[test]
    fn contradictory_bounds() {
        let cs = [c(&[(0, 1)], CmpOp::Ge, 5), c(&[(0, 1)], CmpOp::Le, 3)];
        match check_conjunction(&cs) {
            Feasibility::Infeasible(core) => assert_eq!(core, vec![0, 1]),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn strict_empty_interval() {
        // x > 3 ∧ x < 3 is infeasible; x ≥ 3 ∧ x ≤ 3 is feasible (x = 3).
        let strict = [c(&[(0, 1)], CmpOp::Gt, 3), c(&[(0, 1)], CmpOp::Lt, 3)];
        assert!(!check_conjunction(&strict).is_feasible());
        assert_model_satisfies(&[c(&[(0, 1)], CmpOp::Ge, 3), c(&[(0, 1)], CmpOp::Le, 3)]);
    }

    #[test]
    fn strict_open_interval_needs_epsilon() {
        // 3 < x < 3 + 1/1000000 — feasible only with careful δ handling.
        let cs = [
            c(&[(0, 1_000_000)], CmpOp::Gt, 3_000_000),
            c(&[(0, 1_000_000)], CmpOp::Lt, 3_000_001),
        ];
        assert_model_satisfies(&cs);
    }

    #[test]
    fn two_var_system() {
        // x + y ≤ 10, x − y ≥ 2, y ≥ 1 feasible.
        assert_model_satisfies(&[
            c(&[(0, 1), (1, 1)], CmpOp::Le, 10),
            c(&[(0, 1), (1, -1)], CmpOp::Ge, 2),
            c(&[(1, 1)], CmpOp::Ge, 1),
        ]);
    }

    #[test]
    fn infeasible_triangle() {
        // x + y ≤ 2 ∧ x ≥ 2 ∧ y ≥ 1 infeasible.
        let cs = [
            c(&[(0, 1), (1, 1)], CmpOp::Le, 2),
            c(&[(0, 1)], CmpOp::Ge, 2),
            c(&[(1, 1)], CmpOp::Ge, 1),
        ];
        match check_conjunction(&cs) {
            Feasibility::Infeasible(core) => {
                assert_eq!(core, vec![0, 1, 2], "whole set is the minimal core");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn equalities() {
        // x + y = 5 ∧ x − y = 1 → x = 3, y = 2.
        let cs = [
            c(&[(0, 1), (1, 1)], CmpOp::Eq, 5),
            c(&[(0, 1), (1, -1)], CmpOp::Eq, 1),
        ];
        match check_conjunction(&cs) {
            Feasibility::Feasible(m) => {
                assert_eq!(m[0], q(3));
                assert_eq!(m[1], q(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shared_linear_form_reuses_slack() {
        // Both constraints are bounds on the same form x + y.
        let mut s = Simplex::with_vars(2);
        s.assert_constraint(&c(&[(0, 1), (1, 1)], CmpOp::Le, 10))
            .unwrap();
        s.assert_constraint(&c(&[(0, 2), (1, 2)], CmpOp::Ge, 4))
            .unwrap();
        assert!(s.check().is_sat());
        let m = s.model();
        let sum = &m[0] + &m[1];
        assert!(sum >= q(2) && sum <= q(10));
        // Contradictory bound on the shared form is detected at assert time.
        let conflict = s.assert_constraint(&c(&[(0, 3), (1, 3)], CmpOp::Lt, 6));
        assert_eq!(conflict, Err(vec![1, 2]));
    }

    #[test]
    fn negative_leading_coefficient() {
        // −x ≤ −3  ⇔  x ≥ 3.
        let cs = [c(&[(0, -1)], CmpOp::Le, -3), c(&[(0, 1)], CmpOp::Le, 10)];
        match check_conjunction(&cs) {
            Feasibility::Feasible(m) => assert!(m[0] >= q(3) && m[0] <= q(10)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trivial_constraints() {
        // 0 ≤ 1 holds; 0 ≥ 1 conflicts alone.
        let ok = LinearConstraint::new(LinExpr::zero(), CmpOp::Le, q(1));
        let bad = LinearConstraint::new(LinExpr::zero(), CmpOp::Ge, q(1));
        assert!(check_conjunction(std::slice::from_ref(&ok)).is_feasible());
        assert_eq!(
            check_conjunction(&[ok, bad]),
            Feasibility::Infeasible(vec![1])
        );
    }

    #[test]
    fn push_pop_restores_feasibility() {
        let mut s = Simplex::with_vars(2);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Ge, 0)).unwrap();
        s.assert_constraint(&c(&[(1, 1)], CmpOp::Ge, 0)).unwrap();
        assert!(s.check().is_sat());
        s.push();
        // Conflict is only discoverable by pivoting, not at assert time.
        s.assert_constraint(&c(&[(0, 1), (1, 1)], CmpOp::Lt, 0))
            .unwrap();
        assert!(!s.check().is_sat());
        s.pop();
        assert!(s.check().is_sat());
        // And the solver can keep going after the pop.
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Le, 7)).unwrap();
        assert!(s.check().is_sat());
        assert!(s.model()[0] >= q(0) && s.model()[0] <= q(7));
    }

    #[test]
    fn pop_after_assert_time_conflict() {
        let mut s = Simplex::with_vars(1);
        s.assert_constraint(&c(&[(0, 1)], CmpOp::Le, 3)).unwrap();
        s.push();
        assert!(s.assert_constraint(&c(&[(0, 1)], CmpOp::Gt, 3)).is_err());
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        Simplex::with_vars(0).pop();
    }

    #[test]
    fn chained_equalities_force_unique_solution() {
        // x0 = 1, x_{i+1} = x_i + 1 → x4 = 5; adding x4 ≤ 4 is infeasible.
        let mut cs = vec![c(&[(0, 1)], CmpOp::Eq, 1)];
        for i in 0..4 {
            cs.push(c(&[(i + 1, 1), (i, -1)], CmpOp::Eq, 1));
        }
        match check_conjunction(&cs) {
            Feasibility::Feasible(m) => assert_eq!(m[4], q(5)),
            other => panic!("{other:?}"),
        }
        cs.push(c(&[(4, 1)], CmpOp::Le, 4));
        assert!(!check_conjunction(&cs).is_feasible());
    }

    #[test]
    fn degenerate_pivoting_terminates() {
        // A system known to make naive pivot rules cycle; Bland must cope.
        let cs = [
            c(&[(0, 1), (1, -1)], CmpOp::Le, 0),
            c(&[(1, 1), (2, -1)], CmpOp::Le, 0),
            c(&[(2, 1), (0, -1)], CmpOp::Le, 0),
            c(&[(0, 1), (1, 1), (2, 1)], CmpOp::Eq, 0),
            c(&[(0, 1)], CmpOp::Ge, 0),
            c(&[(1, 1)], CmpOp::Ge, 0),
            c(&[(2, 1)], CmpOp::Ge, 0),
        ];
        assert_model_satisfies(&cs);
    }

    #[test]
    fn fractional_solution() {
        // 2x = 1 → x = 1/2.
        let cs = [c(&[(0, 2)], CmpOp::Eq, 1)];
        match check_conjunction(&cs) {
            Feasibility::Feasible(m) => assert_eq!(m[0], Rational::new(1, 2)),
            other => panic!("{other:?}"),
        }
    }
}
