//! The `absolverd` solve service: a long-running daemon that accepts
//! AB-problems over a line protocol and answers them from a bounded
//! worker pool with cross-request warm state.
//!
//! # Architecture
//!
//! ```text
//! stdin / unix socket ──► RequestDecoder ──► Server::submit
//!                                                │
//!                                     JobQueue (3 priority bands,
//!                                      bounded, reject-on-full)
//!                                                │
//!                                          worker pool
//!                                       (catch_unwind each)
//!                                                │
//!                    ┌──────────────┬──────────────┼──────────────────┐
//!              VerdictCache   AnalysisCache   SessionPool         LemmaStore
//!            (same problem ⇒ (static-unsat ⇒ (same decls ⇒       (same decls ⇒
//!             cached answer)  no solve/worker) warm Session)      seeded lemmas)
//! ```
//!
//! Statically unsatisfiable bodies — refuted by the interval-dataflow
//! analysis of `absolver-analyze` — are answered with the distinct
//! `static-unsat` verdict before any session is built; on resubmission
//! the cached analysis answers at submission, without occupying a
//! worker.
//!
//! * [`protocol`] — the wire format: request decoding and response
//!   rendering, total over arbitrary input.
//! * [`queue`] — the bounded three-band priority queue; a full queue is
//!   backpressure (`overload` + retry hint), never a stall.
//! * [`cache`] — the three warm-state layers and their soundness
//!   arguments.
//! * [`server`] — the worker pool tying it together: per-request
//!   deadlines, cooperative cancellation, and panic containment (a
//!   worker panic becomes an `internal` error response and an `aborts`
//!   counter tick; the daemon lives on).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{
    decl_key, problem_key, AnalysisCache, DeclKey, LemmaStore, ProblemKey, SessionPool,
    VerdictCache,
};
pub use protocol::{
    CacheTier, ClientFrame, ErrCode, Priority, ProtoError, RequestDecoder, Response, SolveFrame,
    MAX_BODY_BYTES,
};
pub use queue::JobQueue;
pub use server::{Server, ServerOptions, ServerStats, Submission};
