//! The `absolverd` solve service: a long-running daemon that accepts
//! AB-problems over a line protocol and answers them from a bounded
//! worker pool with cross-request warm state.
//!
//! # Architecture
//!
//! ```text
//! stdin / unix socket ──► RequestDecoder ──► Server::submit
//!                                                │
//!                                     JobQueue (3 priority bands,
//!                                      bounded, reject-on-full)
//!                                                │
//!                                          worker pool
//!                                       (catch_unwind each)
//!                                                │
//!                              ┌─────────────────┼──────────────────┐
//!                        VerdictCache      SessionPool         LemmaStore
//!                      (same problem ⇒   (same decls ⇒       (same decls ⇒
//!                       cached answer)    warm Session)       seeded lemmas)
//! ```
//!
//! * [`protocol`] — the wire format: request decoding and response
//!   rendering, total over arbitrary input.
//! * [`queue`] — the bounded three-band priority queue; a full queue is
//!   backpressure (`overload` + retry hint), never a stall.
//! * [`cache`] — the three warm-state layers and their soundness
//!   arguments.
//! * [`server`] — the worker pool tying it together: per-request
//!   deadlines, cooperative cancellation, and panic containment (a
//!   worker panic becomes an `internal` error response and an `aborts`
//!   counter tick; the daemon lives on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{
    decl_key, problem_key, DeclKey, LemmaStore, ProblemKey, SessionPool, VerdictCache,
};
pub use protocol::{
    CacheTier, ClientFrame, ErrCode, Priority, ProtoError, RequestDecoder, Response, SolveFrame,
    MAX_BODY_BYTES,
};
pub use queue::JobQueue;
pub use server::{Server, ServerOptions, ServerStats, Submission};
