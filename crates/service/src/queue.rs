//! A bounded, three-band priority queue for solve jobs.
//!
//! `try_push` never blocks: when the queue is at capacity the job is
//! handed back to the caller, which turns it into an `overload` response
//! with a retry hint — backpressure is part of the protocol, not an
//! internal stall. `pop` blocks until a job or shutdown; within a band
//! the order is FIFO, and higher bands always win.

use crate::protocol::Priority;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// The bounded priority queue. `T` is the job type; the queue itself is
/// scheduling policy only.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct State<T> {
    bands: [VecDeque<T>; 3],
    capacity: usize,
    closed: bool,
}

impl<T> State<T> {
    fn len(&self) -> usize {
        self.bands.iter().map(VecDeque::len).sum()
    }
}

fn band(priority: Priority) -> usize {
    match priority {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

/// Recovers the guard from a poisoned mutex: every queue operation leaves
/// the state consistent at each step, so a panicking thread elsewhere
/// must not wedge the daemon.
fn lock<T>(m: &Mutex<State<T>>) -> MutexGuard<'_, State<T>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> JobQueue<T> {
    /// Creates an open queue holding at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State {
                bands: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                capacity: capacity.max(1),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item`, returning the new queue depth — or hands the item
    /// back when the queue is full or closed (the caller owes the client
    /// an `overload` response).
    pub fn try_push(&self, priority: Priority, item: T) -> Result<usize, T> {
        let mut state = lock(&self.state);
        if state.closed || state.len() >= state.capacity {
            return Err(item);
        }
        state.bands[band(priority)].push_back(item);
        let depth = state.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available (highest band first) or the queue
    /// is closed and drained, which yields `None` — the worker's signal
    /// to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            for band in &mut state.bands {
                if let Some(item) = band.pop_front() {
                    return Some(item);
                }
            }
            if state.closed {
                return None;
            }
            state = match self.available.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        lock(&self.state).len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending jobs still drain, further pushes fail,
    /// and blocked workers wake to observe the shutdown.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_band_priority_across() {
        let q = JobQueue::new(8);
        q.try_push(Priority::Low, "l1").unwrap();
        q.try_push(Priority::Normal, "n1").unwrap();
        q.try_push(Priority::High, "h1").unwrap();
        q.try_push(Priority::Normal, "n2").unwrap();
        assert_eq!(q.pop(), Some("h1"));
        assert_eq!(q.pop(), Some("n1"));
        assert_eq!(q.pop(), Some("n2"));
        assert_eq!(q.pop(), Some("l1"));
    }

    #[test]
    fn full_queue_rejects() {
        let q = JobQueue::new(2);
        assert!(q.try_push(Priority::Normal, 1).is_ok());
        assert!(q.try_push(Priority::Normal, 2).is_ok());
        assert_eq!(q.try_push(Priority::Normal, 3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(Priority::Normal, 4).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(Priority::Normal, 1).unwrap();
        q.close();
        assert_eq!(q.try_push(Priority::Normal, 2), Err(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }
}
