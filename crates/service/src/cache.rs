//! Cross-request warm state: the structural problem cache, the warm
//! session pool, and the persistent lemma store.
//!
//! # Soundness
//!
//! Three layers, three different validity arguments:
//!
//! * **Problem cache** — keyed on [`ProblemKey`]: the exact clause list
//!   plus the [`DeclKey`] declarations, so two requests share an entry
//!   only when they denote structurally identical problems (same
//!   clauses, definitions, variables, and ranges — whitespace and comment
//!   differences do not matter, literal order does). A cached verdict and
//!   model are then simply the memoized answer. `Unknown` is never
//!   cached: it reflects a budget, not a fact.
//! * **Session pool** — a warm [`Session`] is reusable for a request iff
//!   the request's *declarations* (arithmetic variables with kinds and
//!   ranges, plus every atom definition) are structurally identical to
//!   the session's frame-0 state, which [`decl_key`] captures exactly.
//!   Request clauses are asserted inside a pushed frame and popped
//!   afterwards, so nothing request-specific leaks into the pooled state;
//!   the session's retained lemmas and theory-verdict cache legitimately
//!   carry over because their premises (definitions, ranges) are exactly
//!   the shared declarations.
//! * **Lemma store** — lemmas harvested from an evicted session, keyed on
//!   the same [`decl_key`]. Seeding them into a fresh session over an
//!   *equal* key is sound for the same reason; the keys are exact values
//!   (not lossy hashes), so collisions are impossible.
//!
//! Both key types lean on the hash-consed term arena: a constraint is
//! represented by its interned [`absolver_nonlinear::ConstraintId`],
//! whose `u32` *is* the constraint up to structural equality. Building a
//! key therefore costs O(1) per constraint — no expression rendering —
//! and comparing keys compares ids, not trees. (Ids are process-local,
//! which is exactly the scope of these in-process caches.)

use absolver_core::{AbProblem, Outcome, Session, VarKind};
use absolver_logic::{Clause, Lit};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Exact structural key of a problem's *declarations* (arithmetic
/// variables with kind and range, definitions sorted by Boolean
/// variable): the equality key for warm-session reuse and the lemma
/// store. Ranges are compared by bit pattern; constraints by interned
/// constraint id.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeclKey {
    /// `(name, kind, range-lo bits, range-hi bits)` per arithmetic var.
    vars: Vec<(String, VarKind, u64, u64)>,
    /// `(boolean var index, interned constraint ids)` per definition.
    defs: Vec<(usize, Vec<u32>)>,
}

/// Builds the [`DeclKey`] of a problem.
pub fn decl_key(problem: &AbProblem) -> DeclKey {
    let vars = problem
        .arith_vars()
        .iter()
        .map(|v| {
            (
                v.name.clone(),
                v.kind,
                v.range.lo().to_bits(),
                v.range.hi().to_bits(),
            )
        })
        .collect();
    let mut defs: Vec<_> = problem.defs().collect();
    defs.sort_by_key(|(var, _)| var.index());
    let defs = defs
        .into_iter()
        .map(|(var, def)| {
            (
                var.index(),
                def.constraints.iter().map(|c| c.cid().raw()).collect(),
            )
        })
        .collect();
    DeclKey { vars, defs }
}

/// Exact structural key of a whole problem: the CNF skeleton (variable
/// count and clause list, literal order preserved) plus the [`DeclKey`]
/// declarations. This is the problem-cache key: equal keys denote
/// identical problems, so a cached verdict transfers soundly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProblemKey {
    num_vars: usize,
    clauses: Vec<Clause>,
    decls: DeclKey,
}

/// Builds the [`ProblemKey`] of a problem.
pub fn problem_key(problem: &AbProblem) -> ProblemKey {
    ProblemKey {
        num_vars: problem.cnf().num_vars(),
        clauses: problem.cnf().clauses().to_vec(),
        decls: decl_key(problem),
    }
}

/// Bounded map from [`ProblemKey`] to the cached [`Outcome`]. Eviction
/// is FIFO by insertion — the cache is a memo table, not a working set,
/// and FIFO keeps it allocation-cheap and predictable.
#[derive(Debug)]
pub struct VerdictCache {
    map: HashMap<ProblemKey, Outcome>,
    order: VecDeque<ProblemKey>,
    capacity: usize,
}

impl VerdictCache {
    /// Creates a cache holding at most `capacity` verdicts (min 1).
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Looks up the verdict for a problem key.
    pub fn get(&self, key: &ProblemKey) -> Option<&Outcome> {
        self.map.get(key)
    }

    /// Inserts a verdict. `Unknown` outcomes are ignored — re-solving
    /// with a fresh budget may well decide them.
    pub fn insert(&mut self, key: ProblemKey, outcome: Outcome) {
        if matches!(outcome, Outcome::Unknown) || self.map.contains_key(&key) {
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, outcome);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Bounded map from [`ProblemKey`] to the static-analysis verdict: `true`
/// when the interval-dataflow fixpoint refuted the problem (statically
/// unsatisfiable), `false` when the analysis passed it through to the
/// solver. Both polarities are cached so a resubmission skips the
/// analysis entirely; a `true` hit is answered at submission without
/// occupying a worker. Eviction is FIFO, like [`VerdictCache`].
#[derive(Debug)]
pub struct AnalysisCache {
    map: HashMap<ProblemKey, bool>,
    order: VecDeque<ProblemKey>,
    capacity: usize,
}

impl AnalysisCache {
    /// Creates a cache holding at most `capacity` analysis results
    /// (min 1).
    pub fn new(capacity: usize) -> AnalysisCache {
        AnalysisCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// The cached analysis verdict for a problem key, if any.
    pub fn get(&self, key: &ProblemKey) -> Option<bool> {
        self.map.get(key).copied()
    }

    /// Records the analysis verdict for a problem key.
    pub fn insert(&mut self, key: ProblemKey, statically_unsat: bool) {
        if self.map.contains_key(&key) {
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, statically_unsat);
    }

    /// Number of cached analysis verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Cap on lemmas kept per declaration key in the [`LemmaStore`].
const MAX_LEMMAS_PER_KEY: usize = 256;

/// Persistent store of theory lemmas harvested from evicted sessions,
/// keyed on [`decl_key`]. Bounded in keys (FIFO) and in lemmas per key.
#[derive(Debug)]
pub struct LemmaStore {
    map: HashMap<DeclKey, Vec<Vec<Lit>>>,
    order: VecDeque<DeclKey>,
    capacity: usize,
}

impl LemmaStore {
    /// Creates a store holding lemmas for at most `capacity` declaration
    /// keys (min 1).
    pub fn new(capacity: usize) -> LemmaStore {
        LemmaStore {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// The stored lemmas for a declaration key, if any.
    pub fn get(&self, key: &DeclKey) -> Option<&[Vec<Lit>]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Merges `lemmas` into the entry for `key`, dropping duplicates and
    /// truncating at the per-key cap.
    pub fn absorb(&mut self, key: &DeclKey, lemmas: Vec<Vec<Lit>>) {
        if lemmas.is_empty() {
            return;
        }
        if !self.map.contains_key(key) {
            while self.map.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.map.remove(&old);
                    }
                    None => break,
                }
            }
            self.order.push_back(key.clone());
            self.map.insert(key.clone(), Vec::new());
        }
        let entry = self.map.get_mut(key).expect("inserted above");
        for lemma in lemmas {
            if entry.len() >= MAX_LEMMAS_PER_KEY {
                break;
            }
            if !entry.contains(&lemma) {
                entry.push(lemma);
            }
        }
    }

    /// Number of declaration keys with stored lemmas.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A pooled warm session and the declaration key it serves.
#[derive(Debug)]
struct PooledSession {
    key: DeclKey,
    session: Session,
    /// Monotone use stamp for LRU eviction.
    stamp: u64,
}

/// Bounded pool of warm sessions, one per declaration key, LRU-evicted.
/// Eviction hands the retiring session back so the server can harvest
/// its lemmas into the [`LemmaStore`].
#[derive(Debug)]
pub struct SessionPool {
    slots: Vec<PooledSession>,
    capacity: usize,
    clock: u64,
}

impl SessionPool {
    /// Creates a pool holding at most `capacity` sessions (min 1).
    pub fn new(capacity: usize) -> SessionPool {
        SessionPool {
            slots: Vec::new(),
            capacity: capacity.max(1),

            clock: 0,
        }
    }

    /// Takes the warm session for `key` out of the pool, if present.
    /// (Ownership moves to the worker; a panicking solve simply never
    /// returns it, which is exactly the containment we want.)
    pub fn take(&mut self, key: &DeclKey) -> Option<Session> {
        let at = self.slots.iter().position(|p| &p.key == key)?;
        Some(self.slots.swap_remove(at).session)
    }

    /// Returns a session to the pool under `key`. When the pool is full,
    /// the least-recently-used session is evicted and returned as
    /// `(key, session)` for lemma harvesting. A session for the same key
    /// replaces the old one (the newer session's caches are warmer).
    pub fn put(&mut self, key: DeclKey, session: Session) -> Option<(DeclKey, Session)> {
        self.clock += 1;
        let stamp = self.clock;
        let mut evicted = None;
        if let Some(at) = self.slots.iter().position(|p| p.key == key) {
            let old = std::mem::replace(
                &mut self.slots[at],
                PooledSession {
                    key,
                    session,
                    stamp,
                },
            );
            return Some((old.key, old.session));
        }
        if self.slots.len() >= self.capacity {
            let at = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.stamp)
                .map(|(i, _)| i)?;
            let old = self.slots.swap_remove(at);
            evicted = Some((old.key, old.session));
        }
        self.slots.push(PooledSession {
            key,
            session,
            stamp,
        });
        evicted
    }

    /// Number of pooled sessions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(text: &str) -> AbProblem {
        text.parse().expect("test problem parses")
    }

    #[test]
    fn decl_key_ignores_clauses_but_not_ranges() {
        let a = problem("p cnf 2 1\n1 0\nc def real 1 x >= 0\nc range x 0 10\n");
        let b = problem("p cnf 2 2\n1 0\n-2 0\nc def real 1 x >= 0\nc range x 0 10\n");
        let c = problem("p cnf 2 1\n1 0\nc def real 1 x >= 0\nc range x 0 5\n");
        assert_eq!(decl_key(&a), decl_key(&b));
        assert_ne!(decl_key(&a), decl_key(&c));
    }

    /// Three problems with pairwise distinct declarations, for keying.
    fn keyed(n: u32) -> AbProblem {
        problem(&format!(
            "p cnf 2 1\n1 0\nc def real 1 x >= 0\nc range x 0 {n}\n"
        ))
    }

    #[test]
    fn problem_key_distinguishes_clause_order_and_literals() {
        let a = problem("p cnf 2 2\n1 0\n-2 0\nc def real 1 x >= 0\n");
        let b = problem("p cnf 2 2\n-2 0\n1 0\nc def real 1 x >= 0\n");
        let c = problem("p cnf 2 2\n1 0\n-2 0\nc def real 1 x >= 0\n");
        assert_ne!(problem_key(&a), problem_key(&b));
        assert_eq!(problem_key(&a), problem_key(&c));
    }

    #[test]
    fn verdict_cache_never_stores_unknown_and_evicts_fifo() {
        let (a, b, c) = (
            problem_key(&keyed(1)),
            problem_key(&keyed(2)),
            problem_key(&keyed(3)),
        );
        let mut cache = VerdictCache::new(2);
        cache.insert(a.clone(), Outcome::Unknown);
        assert!(cache.is_empty());
        cache.insert(a.clone(), Outcome::Unsat);
        cache.insert(b, Outcome::Unsat);
        cache.insert(c.clone(), Outcome::Unsat);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn analysis_cache_stores_both_polarities_and_evicts_fifo() {
        let (a, b, c) = (
            problem_key(&keyed(1)),
            problem_key(&keyed(2)),
            problem_key(&keyed(3)),
        );
        let mut cache = AnalysisCache::new(2);
        assert_eq!(cache.get(&a), None);
        cache.insert(a.clone(), true);
        cache.insert(b.clone(), false);
        assert_eq!(cache.get(&a), Some(true));
        assert_eq!(cache.get(&b), Some(false));
        cache.insert(c.clone(), true);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&a), None, "FIFO evicts the oldest entry");
        assert_eq!(cache.get(&c), Some(true));
    }

    #[test]
    fn lemma_store_dedupes_and_caps() {
        let k = decl_key(&keyed(1));
        let mut store = LemmaStore::new(4);
        let lemma = vec![absolver_logic::Lit::from_dimacs(1)];
        store.absorb(&k, vec![lemma.clone(), lemma.clone()]);
        assert_eq!(store.get(&k).unwrap().len(), 1);
        store.absorb(&k, vec![lemma]);
        assert_eq!(store.get(&k).unwrap().len(), 1);
    }

    #[test]
    fn session_pool_lru_eviction_hands_back_the_session() {
        let (a, b, c) = (
            decl_key(&keyed(1)),
            decl_key(&keyed(2)),
            decl_key(&keyed(3)),
        );
        let mut pool = SessionPool::new(2);
        assert!(pool.put(a.clone(), Session::new()).is_none());
        assert!(pool.put(b.clone(), Session::new()).is_none());
        // Touch `a` so `b` is the LRU entry.
        let warm = pool.take(&a).expect("pooled");
        assert!(pool.put(a, warm).is_none());
        let evicted = pool.put(c, Session::new()).expect("evicts LRU");
        assert_eq!(evicted.0, b);
        assert_eq!(pool.len(), 2);
    }
}
