//! The resident solve server: a bounded worker pool over a priority
//! queue, with per-request deadlines, cooperative cancellation, and the
//! three-layer warm-state stack from [`crate::cache`].
//!
//! Workers never abort the process: each request is handled under
//! `catch_unwind`, so a panic becomes an `internal` error response plus
//! an `aborts` counter tick (and the possibly-poisoned session is simply
//! not returned to the pool).

use crate::cache::{decl_key, problem_key, AnalysisCache, LemmaStore, SessionPool, VerdictCache};
use crate::protocol::{CacheTier, ErrCode, Response, SolveFrame};
use crate::queue::JobQueue;
use absolver_analyze::{dataflow, DataflowVerdict};
use absolver_core::{AbProblem, Outcome, Session, SolveError};
use absolver_num::Interval;
use absolver_trace::{saturating_micros, JsonObject, NullSink, TraceEvent, TraceSink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads solving requests (min 1).
    pub workers: usize,
    /// Queue capacity; a full queue rejects with `overload` + retry hint.
    pub queue_capacity: usize,
    /// Warm sessions kept across requests (LRU).
    pub session_pool: usize,
    /// Cached problem verdicts (FIFO).
    pub problem_cache: usize,
    /// Deadline applied to requests that carry no `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Reject problems with more Boolean variables than this.
    pub max_bool_vars: usize,
    /// Reject problems with more clauses than this.
    pub max_clauses: usize,
    /// Reject problems with more arithmetic variables than this.
    pub max_arith_vars: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 2,
            queue_capacity: 64,
            session_pool: 8,
            problem_cache: 256,
            default_timeout: None,
            max_bool_vars: 100_000,
            max_clauses: 500_000,
            max_arith_vars: 10_000,
        }
    }
}

/// Monotone server counters, updated lock-free by workers and the
/// submission path.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Solve requests accepted (queued, or answered at submission from
    /// the static-analysis cache).
    pub received: AtomicU64,
    /// Requests answered with a verdict.
    pub completed: AtomicU64,
    /// Requests answered with an error (all codes).
    pub failed: AtomicU64,
    /// Requests rejected at the queue (backpressure).
    pub rejected: AtomicU64,
    /// Requests whose deadline expired while still queued.
    pub expired: AtomicU64,
    /// Requests cancelled by the client.
    pub cancelled: AtomicU64,
    /// Worker panics contained by `catch_unwind`.
    pub aborts: AtomicU64,
    /// Problem-cache hits (verdict + model reused).
    pub problem_hits: AtomicU64,
    /// Problem-cache misses.
    pub problem_misses: AtomicU64,
    /// Requests answered `static-unsat` by the interval-dataflow
    /// analysis — computed fresh on a worker or replayed from the
    /// analysis cache at submission — without ever building a session.
    pub static_unsat: AtomicU64,
    /// Warm-session pool hits.
    pub session_hits: AtomicU64,
    /// Warm-session pool misses (fresh session built).
    pub session_misses: AtomicU64,
    /// Lemmas seeded into fresh sessions from the store.
    pub lemmas_seeded: AtomicU64,
    /// Nonlinear contraction-cache hits summed over answered solves.
    pub contraction_hits: AtomicU64,
    /// Contraction-cache resumes observed while answering requests served
    /// from the warm-session pool. A pooled session's persistent cache
    /// holds entries written by *earlier* requests, so a nonzero count
    /// proves contraction work was shared across requests — the payoff of
    /// keying the cache on stable interned constraint ids.
    pub contraction_resumes: AtomicU64,
    /// Term-intern requests answered by the global arena (structural
    /// duplicates collapsed to an id copy) summed over answered solves.
    pub term_dedup_hits: AtomicU64,
    /// Total queue-wait time across answered requests.
    pub wait_us_total: AtomicU64,
    /// Total solve time across answered requests.
    pub solve_us_total: AtomicU64,
    /// Exponentially-weighted moving average of solve time, for the
    /// `retry_after` hint.
    pub ewma_solve_us: AtomicU64,
}

impl ServerStats {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn observe_solve(&self, solve_us: u64) {
        self.solve_us_total.fetch_add(solve_us, Ordering::Relaxed);
        // EWMA with alpha = 1/8; a stale read under contention only
        // nudges the retry hint, so relaxed read-modify-write is fine.
        let old = self.ewma_solve_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            solve_us
        } else {
            old - old / 8 + solve_us / 8
        };
        self.ewma_solve_us.store(new, Ordering::Relaxed);
    }

    /// Serialises the counters as one JSON object (the `stats` response
    /// payload).
    pub fn to_json(&self, queue_depth: usize, pooled_sessions: usize) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut obj = JsonObject::new();
        obj.field_u64("received", get(&self.received))
            .field_u64("completed", get(&self.completed))
            .field_u64("failed", get(&self.failed))
            .field_u64("rejected", get(&self.rejected))
            .field_u64("expired", get(&self.expired))
            .field_u64("cancelled", get(&self.cancelled))
            .field_u64("aborts", get(&self.aborts))
            .field_u64("problem_hits", get(&self.problem_hits))
            .field_u64("problem_misses", get(&self.problem_misses))
            .field_u64("static_unsat", get(&self.static_unsat))
            .field_u64("session_hits", get(&self.session_hits))
            .field_u64("session_misses", get(&self.session_misses))
            .field_u64("lemmas_seeded", get(&self.lemmas_seeded))
            .field_u64("contraction_hits", get(&self.contraction_hits))
            .field_u64("contraction_resumes", get(&self.contraction_resumes))
            .field_u64("term_dedup_hits", get(&self.term_dedup_hits))
            .field_u64("wait_us_total", get(&self.wait_us_total))
            .field_u64("solve_us_total", get(&self.solve_us_total))
            .field_u64("ewma_solve_us", get(&self.ewma_solve_us))
            .field_u64("queue_depth", queue_depth as u64)
            .field_u64("pooled_sessions", pooled_sessions as u64);
        obj.finish()
    }
}

/// One queued solve job. The body is parsed on the submission path (the
/// parse result is needed there for the static-analysis fast path), so
/// the job carries the parsed problem — or the parse error the worker
/// turns into a `parse` response — rather than the raw text.
struct Job {
    id: u64,
    problem: Result<Box<AbProblem>, String>,
    /// Term-intern dedup hits observed while parsing on the submission
    /// thread (the intern counters are thread-local, so the worker
    /// cannot read them after the fact).
    parse_dedup: u64,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    reply: mpsc::Sender<Response>,
    enqueued: Instant,
}

/// The warm-state layers, coordinated under one lock (taken briefly
/// before and after a solve, never across one).
struct Caches {
    problems: VerdictCache,
    analysis: AnalysisCache,
    sessions: SessionPool,
    lemmas: LemmaStore,
}

struct Shared {
    options: ServerOptions,
    queue: JobQueue<Job>,
    caches: Mutex<Caches>,
    stats: ServerStats,
    sink: Arc<dyn TraceSink>,
}

fn lock_caches(shared: &Shared) -> MutexGuard<'_, Caches> {
    match shared.caches.lock() {
        Ok(g) => g,
        // A worker panicking with the lock held leaves value-consistent
        // caches (each mutation completes atomically under the lock), so
        // recover rather than wedge the daemon.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Result of submitting a solve request.
#[derive(Debug)]
pub enum Submission {
    /// Queued; hold the token to support `cancel`.
    Enqueued {
        /// Cooperative cancellation token for this request.
        cancel: Arc<AtomicBool>,
    },
    /// Answered at submission from the static-analysis cache: the
    /// `static-unsat` response was already sent on the reply channel and
    /// no worker was occupied.
    Answered,
    /// Rejected by backpressure; the `overload` response (with this
    /// retry hint) was already sent on the reply channel.
    Rejected {
        /// Suggested client retry delay.
        retry_after_ms: u64,
    },
}

/// The resident solve service. Construction spawns the worker pool;
/// [`Server::shutdown`] drains and joins it.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server(workers={})", self.shared.options.workers)
    }
}

impl Server {
    /// Spawns a server with the given options and no tracing.
    pub fn new(options: ServerOptions) -> Server {
        Server::with_trace(options, Arc::new(NullSink))
    }

    /// Spawns a server emitting `request.*`/`queue.*`/`cache.*` events
    /// through `sink`.
    pub fn with_trace(options: ServerOptions, sink: Arc<dyn TraceSink>) -> Server {
        let shared = Arc::new(Shared {
            queue: JobQueue::new(options.queue_capacity),
            caches: Mutex::new(Caches {
                problems: VerdictCache::new(options.problem_cache),
                analysis: AnalysisCache::new(options.problem_cache),
                sessions: SessionPool::new(options.session_pool),
                lemmas: LemmaStore::new(options.session_pool.max(8) * 4),
            }),
            stats: ServerStats::default(),
            sink,
            options,
        });
        let workers = (0..shared.options.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Statistics JSON (the `stats` response payload).
    pub fn stats_json(&self) -> String {
        let pooled = lock_caches(&self.shared).sessions.len();
        self.shared.stats.to_json(self.shared.queue.len(), pooled)
    }

    /// Submits a solve request. Responses (including the backpressure
    /// rejection) arrive on `reply`.
    pub fn submit(&self, frame: SolveFrame, reply: mpsc::Sender<Response>) -> Submission {
        let shared = &self.shared;
        let stats = &shared.stats;
        trace(shared, || {
            TraceEvent::new("request.received")
                .field_u64("id", frame.id)
                .field("priority", frame.priority.as_str())
                .field_u64("bytes", frame.text.len() as u64)
        });
        // Parse here rather than on a worker: the static-analysis fast
        // path below needs the problem key, and a cache hit then answers
        // without occupying a worker at all. A failed parse still rides
        // the queue so the `parse` error response stays asynchronous.
        let term0 = absolver_nonlinear::term::local_counters();
        let problem: Result<Box<AbProblem>, String> = frame
            .text
            .parse::<AbProblem>()
            .map(Box::new)
            .map_err(|e| e.to_string());
        let (_, dedup1) = absolver_nonlinear::term::local_counters();
        let parse_dedup = dedup1.saturating_sub(term0.1);
        if let Ok(problem) = &problem {
            let key = problem_key(problem);
            if lock_caches(shared).analysis.get(&key) == Some(true) {
                stats.bump(&stats.received);
                stats.bump(&stats.completed);
                stats.bump(&stats.static_unsat);
                stats
                    .term_dedup_hits
                    .fetch_add(parse_dedup, Ordering::Relaxed);
                trace(shared, || {
                    TraceEvent::new("cache.analysis_hit").field_u64("id", frame.id)
                });
                trace(shared, || {
                    TraceEvent::new("request.done")
                        .field_u64("id", frame.id)
                        .field("verdict", "static-unsat")
                        .field("cache", CacheTier::Analysis.as_str())
                        .field_u64("wait_us", 0)
                        .duration_us(0)
                });
                let _ = reply.send(Response::Ok {
                    id: frame.id,
                    verdict: "static-unsat",
                    cache: CacheTier::Analysis,
                    wait_us: 0,
                    solve_us: 0,
                    model: Vec::new(),
                });
                return Submission::Answered;
            }
        }
        let cancel = Arc::new(AtomicBool::new(false));
        let deadline = frame
            .timeout_ms
            .map(Duration::from_millis)
            .or(shared.options.default_timeout)
            .map(|d| Instant::now() + d);
        let job = Job {
            id: frame.id,
            problem,
            parse_dedup,
            deadline,
            cancel: cancel.clone(),
            reply,
            enqueued: Instant::now(),
        };
        match shared.queue.try_push(frame.priority, job) {
            Ok(depth) => {
                stats.bump(&stats.received);
                trace(shared, || {
                    TraceEvent::new("queue.enqueue")
                        .field_u64("id", frame.id)
                        .field_u64("depth", depth as u64)
                });
                Submission::Enqueued { cancel }
            }
            Err(job) => {
                stats.bump(&stats.rejected);
                let retry_after_ms = retry_hint(shared);
                trace(shared, || {
                    TraceEvent::new("queue.reject")
                        .field_u64("id", frame.id)
                        .field_u64("retry_after_ms", retry_after_ms)
                });
                let _ = job.reply.send(Response::Err {
                    id: Some(frame.id),
                    code: ErrCode::Overload,
                    retry_after_ms: Some(retry_after_ms),
                    message: "queue full".to_string(),
                });
                Submission::Rejected { retry_after_ms }
            }
        }
    }

    /// Closes the queue, drains pending jobs, and joins the workers.
    /// Idempotent; later calls return immediately.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let workers = match self.workers.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}

fn trace(shared: &Shared, build: impl FnOnce() -> TraceEvent) {
    if shared.sink.enabled() {
        shared.sink.emit(&build());
    }
}

/// Suggested retry delay when rejecting: roughly the time for the
/// current queue to drain through the worker pool, clamped to
/// `[10ms, 10s]`.
fn retry_hint(shared: &Shared) -> u64 {
    let ewma_us = shared
        .stats
        .ewma_solve_us
        .load(Ordering::Relaxed)
        .max(1_000);
    let depth = shared.queue.len().max(1) as u64;
    let workers = shared.options.workers.max(1) as u64;
    (ewma_us * depth / workers / 1_000).clamp(10, 10_000)
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let stats = &shared.stats;
        let wait_us = saturating_micros(job.enqueued.elapsed());
        stats.wait_us_total.fetch_add(wait_us, Ordering::Relaxed);
        if job.cancel.load(Ordering::Relaxed) {
            stats.bump(&stats.cancelled);
            stats.bump(&stats.failed);
            respond_failed(shared, &job, ErrCode::Cancelled, "cancelled while queued");
            continue;
        }
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                stats.bump(&stats.expired);
                stats.bump(&stats.failed);
                trace(shared, || {
                    TraceEvent::new("queue.expired")
                        .field_u64("id", job.id)
                        .field_u64("wait_us", wait_us)
                });
                respond_failed(
                    shared,
                    &job,
                    ErrCode::Deadline,
                    "deadline expired before the solve started",
                );
                continue;
            }
        }
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(shared, &job)));
        let solve_us = saturating_micros(started.elapsed());
        match outcome {
            Ok(response) => {
                let failed = matches!(response, Response::Err { .. });
                if failed {
                    stats.bump(&stats.failed);
                } else {
                    stats.bump(&stats.completed);
                    stats.observe_solve(solve_us);
                }
                finish(shared, &job, response, wait_us, solve_us);
            }
            Err(_) => {
                stats.bump(&stats.aborts);
                stats.bump(&stats.failed);
                let response = Response::Err {
                    id: Some(job.id),
                    code: ErrCode::Internal,
                    retry_after_ms: None,
                    message: "worker panicked on this request".to_string(),
                };
                finish(shared, &job, response, wait_us, solve_us);
            }
        }
    }
}

/// Stamps the timing fields into an `Ok` response, emits the completion
/// trace event, and sends it.
fn finish(shared: &Shared, job: &Job, mut response: Response, wait_us: u64, solve_us: u64) {
    if let Response::Ok {
        wait_us: w,
        solve_us: s,
        verdict,
        cache,
        ..
    } = &mut response
    {
        *w = wait_us;
        *s = solve_us;
        let (verdict, cache) = (*verdict, *cache);
        trace(shared, || {
            TraceEvent::new("request.done")
                .field_u64("id", job.id)
                .field("verdict", verdict)
                .field("cache", cache.as_str())
                .field_u64("wait_us", wait_us)
                .duration_us(solve_us)
        });
    } else if let Response::Err { code, .. } = &response {
        let code = *code;
        trace(shared, || {
            TraceEvent::new("request.failed")
                .field_u64("id", job.id)
                .field("code", code.as_str())
        });
    }
    let _ = job.reply.send(response);
}

fn respond_failed(shared: &Shared, job: &Job, code: ErrCode, message: &str) {
    trace(shared, || {
        TraceEvent::new("request.failed")
            .field_u64("id", job.id)
            .field("code", code.as_str())
    });
    let _ = job.reply.send(Response::Err {
        id: Some(job.id),
        code,
        retry_after_ms: None,
        message: message.to_string(),
    });
}

/// Parses, caches, and solves one request. Returns the response with
/// timing fields left at zero (the worker loop stamps them).
fn handle_request(shared: &Shared, job: &Job) -> Response {
    let stats = &shared.stats;
    let problem: &AbProblem = match &job.problem {
        Ok(p) => p,
        Err(message) => {
            return Response::Err {
                id: Some(job.id),
                code: ErrCode::Parse,
                retry_after_ms: None,
                message: message.clone(),
            };
        }
    };
    // The parse happened on the submission thread; its term-dedup hits
    // ride along in the job (the intern counters are thread-local). The
    // window opened here covers only this worker's solve.
    stats
        .term_dedup_hits
        .fetch_add(job.parse_dedup, Ordering::Relaxed);
    let term0 = absolver_nonlinear::term::local_counters();
    let opts = &shared.options;
    if problem.cnf().num_vars() > opts.max_bool_vars
        || problem.cnf().len() > opts.max_clauses
        || problem.arith_vars().len() > opts.max_arith_vars
    {
        return Response::Err {
            id: Some(job.id),
            code: ErrCode::Limit,
            retry_after_ms: None,
            message: format!(
                "problem exceeds limits (vars {} clauses {} arith {})",
                opts.max_bool_vars, opts.max_clauses, opts.max_arith_vars
            ),
        };
    }

    // Layer 1: structurally identical problem already answered. The key
    // is built from interned constraint ids — O(1) per constraint, no
    // expression rendering.
    let canonical = problem_key(problem);
    if let Some(outcome) = lock_caches(shared).problems.get(&canonical).cloned() {
        stats.bump(&stats.problem_hits);
        trace(shared, || {
            TraceEvent::new("cache.problem_hit").field_u64("id", job.id)
        });
        return ok_response(job.id, problem, &outcome, CacheTier::Problem);
    }
    stats.bump(&stats.problem_misses);
    trace(shared, || {
        TraceEvent::new("cache.problem_miss").field_u64("id", job.id)
    });

    // Static analysis: the interval-dataflow fixpoint refutes statically
    // unsatisfiable bodies without building a session or entering the
    // solve loop. The verdict is cached per problem key (both
    // polarities, so resubmissions skip the analysis; a cached `true`
    // answers at submission without reaching a worker at all).
    // (Bind the cache lookup first: a guard inside the match scrutinee
    // would live across the arms and deadlock against the insert below.)
    let cached_analysis = lock_caches(shared).analysis.get(&canonical);
    let statically_unsat = match cached_analysis {
        Some(cached) => cached,
        None => {
            let df = dataflow(problem, ANALYSIS_ROUNDS);
            let unsat = !matches!(df.verdict, DataflowVerdict::Converged);
            lock_caches(shared)
                .analysis
                .insert(canonical.clone(), unsat);
            trace(shared, || {
                TraceEvent::new("cache.analysis_computed")
                    .field_u64("id", job.id)
                    .field_u64("rounds", df.rounds)
                    .field("static_unsat", if unsat { "true" } else { "false" })
            });
            unsat
        }
    };
    if statically_unsat {
        stats.bump(&stats.static_unsat);
        trace(shared, || {
            TraceEvent::new("request.static_unsat").field_u64("id", job.id)
        });
        return Response::Ok {
            id: job.id,
            verdict: "static-unsat",
            cache: CacheTier::Cold,
            wait_us: 0,
            solve_us: 0,
            model: Vec::new(),
        };
    }

    // Layer 2: a warm session over the same declarations. (Bind the
    // pool lookup first: a guard inside the match scrutinee would live
    // across the arms and deadlock against the lemma-store lock below.)
    let key = decl_key(problem);
    let pooled = lock_caches(shared).sessions.take(&key);
    let (mut session, tier) = match pooled {
        Some(session) => {
            stats.bump(&stats.session_hits);
            trace(shared, || {
                TraceEvent::new("cache.session_hit").field_u64("id", job.id)
            });
            (session, CacheTier::Session)
        }
        None => {
            stats.bump(&stats.session_misses);
            trace(shared, || {
                TraceEvent::new("cache.session_miss").field_u64("id", job.id)
            });
            let mut session = match session_for(problem) {
                Ok(s) => s,
                Err(e) => {
                    return Response::Err {
                        id: Some(job.id),
                        code: ErrCode::Parse,
                        retry_after_ms: None,
                        message: e.to_string(),
                    };
                }
            };
            // Layer 3: seed lemmas harvested from retired sessions over
            // the same declarations.
            let seeds = lock_caches(shared)
                .lemmas
                .get(&key)
                .map(<[Vec<absolver_logic::Lit>]>::to_vec)
                .unwrap_or_default();
            if !seeds.is_empty() {
                let count = seeds.len() as u64;
                stats.lemmas_seeded.fetch_add(count, Ordering::Relaxed);
                trace(shared, || {
                    TraceEvent::new("cache.lemma_seed")
                        .field_u64("id", job.id)
                        .field_u64("literals", count)
                });
                session.import_lemmas(seeds);
            }
            (session, CacheTier::Cold)
        }
    };

    let result = solve_on(&mut session, problem, job.deadline, job.cancel.clone());

    let response = match &result {
        Ok(outcome) => {
            let check_stats = session.check_stats();
            stats
                .contraction_hits
                .fetch_add(check_stats.contraction_cache_hits, Ordering::Relaxed);
            // Resumes are only attributed to pool-warm requests: their
            // session's persistent cache holds entries written by earlier
            // requests, so every resume there replays cross-request state.
            if tier == CacheTier::Session {
                stats
                    .contraction_resumes
                    .fetch_add(check_stats.contraction_cache_resumes, Ordering::Relaxed);
            }
            // Solve-window dedup delta on this worker thread (the parse
            // delta was added from `job.parse_dedup` above); the
            // per-check counter inside `check_stats` covers the same
            // sub-window, so it is not added separately.
            let (_, dedup1) = absolver_nonlinear::term::local_counters();
            stats
                .term_dedup_hits
                .fetch_add(dedup1.saturating_sub(term0.1), Ordering::Relaxed);
            if check_stats.cancelled {
                stats.bump(&stats.cancelled);
                Response::Err {
                    id: Some(job.id),
                    code: ErrCode::Cancelled,
                    retry_after_ms: None,
                    message: "cancelled mid-solve".to_string(),
                }
            } else if check_stats.timed_out {
                Response::Err {
                    id: Some(job.id),
                    code: ErrCode::Deadline,
                    retry_after_ms: None,
                    message: "deadline expired mid-solve".to_string(),
                }
            } else {
                lock_caches(shared)
                    .problems
                    .insert(canonical, outcome.clone());
                ok_response(job.id, problem, outcome, tier)
            }
        }
        Err(SolveError::IterationLimit(n)) => Response::Err {
            id: Some(job.id),
            code: ErrCode::Limit,
            retry_after_ms: None,
            message: format!("control loop exceeded {n} Boolean iterations"),
        },
    };

    // Return the session to the pool (warm for the next request over the
    // same declarations), harvesting lemmas from whichever session the
    // pool evicts to make room.
    let evicted = lock_caches(shared).sessions.put(key, session);
    if let Some((evicted_key, evicted_session)) = evicted {
        let harvest = evicted_session.export_lemmas();
        if !harvest.is_empty() {
            lock_caches(shared).lemmas.absorb(&evicted_key, harvest);
        }
    }
    response
}

/// Builds a fresh session whose frame 0 is exactly the problem's
/// declarations (arithmetic variables, ranges, definitions) — the shared
/// state every request with the same [`decl_key`] agrees on.
fn session_for(problem: &AbProblem) -> Result<Session, absolver_core::SessionError> {
    let mut session = Session::new();
    for v in problem.arith_vars() {
        let id = session.arith_var(&v.name, v.kind)?;
        if v.range != Interval::ENTIRE {
            session.assert_range(id, v.range)?;
        }
    }
    let mut defs: Vec<_> = problem.defs().collect();
    defs.sort_by_key(|(var, _)| var.index());
    for (var, def) in defs {
        for constraint in &def.constraints {
            session.define(var, constraint.clone())?;
        }
    }
    Ok(session)
}

/// Solves one request on a (fresh or pooled) session: the request's
/// clauses live in a pushed frame, popped before the session returns to
/// the pool, so only declaration-implied state persists.
fn solve_on(
    session: &mut Session,
    problem: &AbProblem,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
) -> Result<Outcome, SolveError> {
    session.push();
    while session.problem().cnf().num_vars() < problem.cnf().num_vars() {
        session.bool_var();
    }
    for clause in problem.cnf().clauses() {
        session.assert_clause(clause.lits().iter().copied());
    }
    session.set_deadline(deadline);
    session.set_cancel_token(Some(cancel));
    let result = session.check();
    session.set_deadline(None);
    session.set_cancel_token(None);
    let _ = session.pop();
    result
}

/// Sweep bound for the interval-dataflow analysis of a request body —
/// the same bound `absolver check` uses, so the daemon and the linter
/// agree on what is statically unsatisfiable.
const ANALYSIS_ROUNDS: usize = 16;

/// Cap on `model` pairs inlined into an `ok` line.
const MAX_MODEL_VARS: usize = 64;

fn ok_response(id: u64, problem: &AbProblem, outcome: &Outcome, cache: CacheTier) -> Response {
    let (verdict, model) = match outcome {
        Outcome::Sat(m) => {
            let vars = problem.arith_vars();
            let model = if vars.len() <= MAX_MODEL_VARS {
                vars.iter()
                    .enumerate()
                    .map(|(vid, var)| {
                        let value = match m.arith.value_exact(vid) {
                            Some(exact) => exact.to_string(),
                            None => m.arith.value_f64(vid).unwrap_or(f64::NAN).to_string(),
                        };
                        (var.name.clone(), value)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            ("sat", model)
        }
        Outcome::Unsat => ("unsat", Vec::new()),
        Outcome::Unknown => ("unknown", Vec::new()),
    };
    Response::Ok {
        id,
        verdict,
        cache,
        wait_us: 0,
        solve_us: 0,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Priority;

    fn serve_one(server: &Server, frame: SolveFrame) -> Vec<Response> {
        let (tx, rx) = mpsc::channel();
        match server.submit(frame, tx) {
            Submission::Enqueued { .. } => {}
            Submission::Rejected { .. } | Submission::Answered => {
                return vec![rx.recv().expect("immediate response")];
            }
        }
        vec![rx.recv().expect("response")]
    }

    const LINEAR_SAT: &str =
        "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 3\nc range x -10 10\n";

    #[test]
    fn solves_and_caches_identical_problems() {
        let server = Server::new(ServerOptions {
            workers: 1,
            ..Default::default()
        });
        let first = serve_one(
            &server,
            SolveFrame {
                id: 1,
                timeout_ms: None,
                priority: Priority::Normal,
                text: LINEAR_SAT.to_string(),
            },
        );
        match &first[0] {
            Response::Ok { verdict, cache, .. } => {
                assert_eq!(*verdict, "sat");
                assert_eq!(*cache, CacheTier::Cold);
            }
            other => panic!("unexpected {other:?}"),
        }
        let second = serve_one(
            &server,
            SolveFrame {
                id: 2,
                timeout_ms: None,
                priority: Priority::Normal,
                text: LINEAR_SAT.to_string(),
            },
        );
        match &second[0] {
            Response::Ok { verdict, cache, .. } => {
                assert_eq!(*verdict, "sat");
                assert_eq!(*cache, CacheTier::Problem);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().problem_hits.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    const STATIC_UNSAT: &str = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 0\n";

    #[test]
    fn statically_unsat_bodies_skip_sessions_and_cache_the_analysis() {
        let server = Server::new(ServerOptions {
            workers: 1,
            ..Default::default()
        });
        let first = serve_one(
            &server,
            SolveFrame {
                id: 1,
                timeout_ms: None,
                priority: Priority::Normal,
                text: STATIC_UNSAT.to_string(),
            },
        );
        match &first[0] {
            Response::Ok { verdict, cache, .. } => {
                assert_eq!(*verdict, "static-unsat");
                assert_eq!(
                    *cache,
                    CacheTier::Cold,
                    "first encounter computes on a worker"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.static_unsat.load(Ordering::Relaxed), 1);
        assert_eq!(
            stats.session_misses.load(Ordering::Relaxed)
                + stats.session_hits.load(Ordering::Relaxed),
            0,
            "no session is built for a statically-unsat body"
        );
        // A resubmission answers at submission from the analysis cache,
        // without occupying a worker.
        let (tx, rx) = mpsc::channel();
        let submission = server.submit(
            SolveFrame {
                id: 2,
                timeout_ms: None,
                priority: Priority::Normal,
                text: STATIC_UNSAT.to_string(),
            },
            tx,
        );
        assert!(matches!(submission, Submission::Answered));
        match rx.recv().expect("immediate response") {
            Response::Ok { verdict, cache, .. } => {
                assert_eq!(verdict, "static-unsat");
                assert_eq!(cache, CacheTier::Analysis);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(stats.static_unsat.load(Ordering::Relaxed), 2);
        assert!(server.stats_json().contains("\"static_unsat\":2"));
        server.shutdown();
    }

    #[test]
    fn parse_errors_are_responses_not_panics() {
        let server = Server::new(ServerOptions {
            workers: 1,
            ..Default::default()
        });
        let responses = serve_one(
            &server,
            SolveFrame {
                id: 9,
                timeout_ms: None,
                priority: Priority::Normal,
                text: "p cnf nope\n".to_string(),
            },
        );
        match &responses[0] {
            Response::Err { code, .. } => assert_eq!(*code, ErrCode::Parse),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().aborts.load(Ordering::Relaxed), 0);
        server.shutdown();
    }
}
