//! The `absolverd` wire protocol: a line-oriented request/response
//! exchange carried over stdin/stdout or a unix socket.
//!
//! # Client → server
//!
//! ```text
//! solve id=<N> [timeout_ms=<N>] [priority=high|normal|low]
//! <problem body in extended DIMACS>
//! .
//! cancel id=<N>
//! stats
//! ping
//! shutdown
//! ```
//!
//! A `solve` header opens a body: every following line belongs to the
//! problem until a line containing only `.`. The body cap
//! ([`MAX_BODY_BYTES`]) bounds memory per connection.
//!
//! # Server → client
//!
//! ```text
//! ok id=<N> verdict=sat|unsat|unknown|static-unsat cache=problem|analysis|session|cold wait_us=<N> solve_us=<N> [model x=1/2 y=3]
//! err id=<N> code=<code> [retry_after_ms=<N>] msg=<text>
//! stats <json>
//! pong
//! bye
//! ```
//!
//! Error codes: `parse` (malformed problem body), `proto` (malformed
//! request framing), `deadline` (request deadline expired, queued or
//! in-flight), `cancelled` (client cancel honoured), `overload` (queue
//! full — retry after the hinted delay), `limit` (problem exceeds the
//! configured size caps, or the solve hit its iteration limit),
//! `internal` (worker panic — the request is lost but the daemon lives).
//!
//! The `static-unsat` verdict is an `unsat` answer produced by static
//! analysis alone (the interval-dataflow fixpoint refuted the problem
//! before any solving): clients may treat it exactly like `unsat`, the
//! distinct code only attributes the answer. On a resubmission the
//! cached analysis answers at submission (`cache=analysis`); a first
//! encounter computes it on a worker (`cache=cold`) without building a
//! session.
//!
//! The decoder is **total**: arbitrary bytes produce frames or
//! [`ProtoError`]s, never a panic — enforced by the panic-freedom fuzz
//! suite at the workspace root.

use std::fmt;

/// Cap on the byte length of one `solve` body. A client that streams an
/// unterminated body gets a `limit` error instead of exhausting memory.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Scheduling priority of a request. `High` jobs always dequeue before
/// `Normal`, which always dequeue before `Low`; within a band the order
/// is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Dequeued first.
    High,
    /// The default band.
    #[default]
    Normal,
    /// Dequeued last.
    Low,
}

impl Priority {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

impl std::str::FromStr for Priority {
    type Err = ();

    fn from_str(s: &str) -> Result<Priority, ()> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            _ => Err(()),
        }
    }
}

/// Which layer of warm state answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Byte-identical problem seen before: cached verdict + model.
    Problem,
    /// The cached static analysis answered at submission (statically
    /// unsatisfiable body seen before — no worker involved).
    Analysis,
    /// A pooled warm session over the same declarations solved it.
    Session,
    /// Solved from scratch (and warmed the pool for successors).
    Cold,
}

impl CacheTier {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTier::Problem => "problem",
            CacheTier::Analysis => "analysis",
            CacheTier::Session => "session",
            CacheTier::Cold => "cold",
        }
    }
}

/// Machine-readable error class of an `err` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The problem body failed to parse.
    Parse,
    /// The request framing itself was malformed.
    Proto,
    /// The request deadline expired (queued or mid-solve).
    Deadline,
    /// The client cancelled the request.
    Cancelled,
    /// The queue was full; retry after the hinted delay.
    Overload,
    /// The problem exceeds the configured size caps, or the solve hit
    /// its iteration limit.
    Limit,
    /// A worker panicked on this request (counted as an abort).
    Internal,
}

impl ErrCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Parse => "parse",
            ErrCode::Proto => "proto",
            ErrCode::Deadline => "deadline",
            ErrCode::Cancelled => "cancelled",
            ErrCode::Overload => "overload",
            ErrCode::Limit => "limit",
            ErrCode::Internal => "internal",
        }
    }
}

/// A complete `solve` request: header fields plus the problem body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveFrame {
    /// Client-chosen request id, echoed on every response line.
    pub id: u64,
    /// Per-request deadline in milliseconds from submission, if any.
    pub timeout_ms: Option<u64>,
    /// Scheduling priority.
    pub priority: Priority,
    /// The problem body (extended DIMACS).
    pub text: String,
}

/// One decoded client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// A solve request (header + body).
    Solve(SolveFrame),
    /// Cancel the identified request, queued or in-flight.
    Cancel {
        /// The id to cancel.
        id: u64,
    },
    /// Ask for the server statistics JSON.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain and exit.
    Shutdown,
}

/// A framing error: the offending request id when the header carried
/// one, and a message for the `err` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The request id, when recoverable from the malformed input.
    pub id: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl ProtoError {
    fn new(id: Option<u64>, message: impl Into<String>) -> ProtoError {
        ProtoError {
            id,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Incremental frame decoder: feed it lines, collect frames. One decoder
/// per connection — a `solve` body spans multiple `push_line` calls.
#[derive(Debug, Default)]
pub struct RequestDecoder {
    body: Option<PendingBody>,
}

#[derive(Debug)]
struct PendingBody {
    id: u64,
    timeout_ms: Option<u64>,
    priority: Priority,
    lines: Vec<String>,
    bytes: usize,
    overflowed: bool,
}

impl RequestDecoder {
    /// Creates an idle decoder.
    pub fn new() -> RequestDecoder {
        RequestDecoder::default()
    }

    /// Whether the decoder is mid-body (useful for EOF diagnostics).
    pub fn in_body(&self) -> bool {
        self.body.is_some()
    }

    /// Consumes one input line. Returns a frame when one completes, a
    /// [`ProtoError`] when the input is malformed, and `None` when the
    /// line was a body line, a blank, or a comment between frames.
    pub fn push_line(&mut self, raw: &str) -> Option<Result<ClientFrame, ProtoError>> {
        if self.body.is_some() {
            if raw.trim() == "." {
                let body = self.body.take()?;
                if body.overflowed {
                    return Some(Err(ProtoError::new(
                        Some(body.id),
                        format!("solve body exceeds {MAX_BODY_BYTES} bytes"),
                    )));
                }
                let mut text = body.lines.join("\n");
                text.push('\n');
                return Some(Ok(ClientFrame::Solve(SolveFrame {
                    id: body.id,
                    timeout_ms: body.timeout_ms,
                    priority: body.priority,
                    text,
                })));
            }
            // Keep consuming (but not storing) an oversized body so the
            // connection can resynchronise at the terminator.
            if let Some(body) = &mut self.body {
                body.bytes = body.bytes.saturating_add(raw.len() + 1);
                if body.bytes > MAX_BODY_BYTES {
                    body.overflowed = true;
                    body.lines.clear();
                } else {
                    body.lines.push(raw.to_string());
                }
            }
            return None;
        }

        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        let mut words = trimmed.split_whitespace();
        let cmd = words.next()?;
        match cmd {
            "solve" => {
                let mut id: Option<u64> = None;
                let mut timeout_ms: Option<u64> = None;
                let mut priority = Priority::Normal;
                for word in words {
                    let Some((key, value)) = word.split_once('=') else {
                        return Some(Err(ProtoError::new(
                            id,
                            format!("malformed solve option `{word}` (expected key=value)"),
                        )));
                    };
                    match key {
                        "id" => match value.parse::<u64>() {
                            Ok(v) => id = Some(v),
                            Err(_) => {
                                return Some(Err(ProtoError::new(
                                    None,
                                    format!("invalid request id `{value}`"),
                                )));
                            }
                        },
                        "timeout_ms" => match value.parse::<u64>() {
                            Ok(v) => timeout_ms = Some(v),
                            Err(_) => {
                                return Some(Err(ProtoError::new(
                                    id,
                                    format!("invalid timeout_ms `{value}`"),
                                )));
                            }
                        },
                        "priority" => match value.parse::<Priority>() {
                            Ok(p) => priority = p,
                            Err(()) => {
                                return Some(Err(ProtoError::new(
                                    id,
                                    format!("invalid priority `{value}` (high|normal|low)"),
                                )));
                            }
                        },
                        other => {
                            return Some(Err(ProtoError::new(
                                id,
                                format!("unknown solve option `{other}`"),
                            )));
                        }
                    }
                }
                let Some(id) = id else {
                    return Some(Err(ProtoError::new(None, "solve requires id=<N>")));
                };
                self.body = Some(PendingBody {
                    id,
                    timeout_ms,
                    priority,
                    lines: Vec::new(),
                    bytes: 0,
                    overflowed: false,
                });
                None
            }
            "cancel" => {
                let mut id: Option<u64> = None;
                for word in words {
                    match word.split_once('=') {
                        Some(("id", value)) => match value.parse::<u64>() {
                            Ok(v) => id = Some(v),
                            Err(_) => {
                                return Some(Err(ProtoError::new(
                                    None,
                                    format!("invalid request id `{value}`"),
                                )));
                            }
                        },
                        _ => {
                            return Some(Err(ProtoError::new(
                                id,
                                format!("unknown cancel option `{word}`"),
                            )));
                        }
                    }
                }
                match id {
                    Some(id) => Some(Ok(ClientFrame::Cancel { id })),
                    None => Some(Err(ProtoError::new(None, "cancel requires id=<N>"))),
                }
            }
            "stats" => Some(Ok(ClientFrame::Stats)),
            "ping" => Some(Ok(ClientFrame::Ping)),
            "shutdown" => Some(Ok(ClientFrame::Shutdown)),
            other => Some(Err(ProtoError::new(
                None,
                format!("unknown command `{other}`"),
            ))),
        }
    }
}

/// One server response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A solve completed with a verdict.
    Ok {
        /// Echoed request id.
        id: u64,
        /// `sat`, `unsat`, `unknown`, or `static-unsat` (an unsat answer
        /// produced by static analysis alone).
        verdict: &'static str,
        /// Which warm-state layer answered.
        cache: CacheTier,
        /// Microseconds spent queued.
        wait_us: u64,
        /// Microseconds spent solving (0 on a problem-cache hit).
        solve_us: u64,
        /// `name=value` pairs of the model, when sat and small enough.
        model: Vec<(String, String)>,
    },
    /// A request failed.
    Err {
        /// Echoed request id, when attributable.
        id: Option<u64>,
        /// Machine-readable class.
        code: ErrCode,
        /// Suggested retry delay for `overload`.
        retry_after_ms: Option<u64>,
        /// Human-readable message (single line).
        message: String,
    },
    /// Server statistics (JSON payload).
    Stats(
        /// The statistics JSON object.
        String,
    ),
    /// Reply to `ping`.
    Pong,
    /// Acknowledges `shutdown`.
    Bye,
}

impl Response {
    /// Renders the response as one protocol line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Ok {
                id,
                verdict,
                cache,
                wait_us,
                solve_us,
                model,
            } => {
                let mut line = format!(
                    "ok id={id} verdict={verdict} cache={} wait_us={wait_us} solve_us={solve_us}",
                    cache.as_str()
                );
                if !model.is_empty() {
                    line.push_str(" model");
                    for (name, value) in model {
                        line.push(' ');
                        line.push_str(name);
                        line.push('=');
                        line.push_str(value);
                    }
                }
                line
            }
            Response::Err {
                id,
                code,
                retry_after_ms,
                message,
            } => {
                let mut line = String::from("err");
                if let Some(id) = id {
                    line.push_str(&format!(" id={id}"));
                }
                line.push_str(&format!(" code={}", code.as_str()));
                if let Some(ms) = retry_after_ms {
                    line.push_str(&format!(" retry_after_ms={ms}"));
                }
                // The message must stay a single line whatever was in it.
                let flat: String = message
                    .chars()
                    .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                    .collect();
                line.push_str(" msg=");
                line.push_str(flat.trim());
                line
            }
            Response::Stats(json) => format!("stats {json}"),
            Response::Pong => "pong".to_string(),
            Response::Bye => "bye".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_frame_round_trip() {
        let mut d = RequestDecoder::new();
        assert_eq!(d.push_line("solve id=7 timeout_ms=100 priority=high"), None);
        assert!(d.in_body());
        assert_eq!(d.push_line("p cnf 1 1"), None);
        assert_eq!(d.push_line("1 0"), None);
        let frame = d.push_line(".").unwrap().unwrap();
        assert_eq!(
            frame,
            ClientFrame::Solve(SolveFrame {
                id: 7,
                timeout_ms: Some(100),
                priority: Priority::High,
                text: "p cnf 1 1\n1 0\n".to_string(),
            })
        );
        assert!(!d.in_body());
    }

    #[test]
    fn control_frames() {
        let mut d = RequestDecoder::new();
        assert_eq!(
            d.push_line("cancel id=3").unwrap().unwrap(),
            ClientFrame::Cancel { id: 3 }
        );
        assert_eq!(d.push_line("stats").unwrap().unwrap(), ClientFrame::Stats);
        assert_eq!(d.push_line("ping").unwrap().unwrap(), ClientFrame::Ping);
        assert_eq!(
            d.push_line("shutdown").unwrap().unwrap(),
            ClientFrame::Shutdown
        );
        assert_eq!(d.push_line(""), None);
        assert_eq!(d.push_line("# comment"), None);
    }

    #[test]
    fn malformed_headers_are_errors() {
        let mut d = RequestDecoder::new();
        assert!(d.push_line("solve").unwrap().is_err());
        assert!(d.push_line("solve id=x").unwrap().is_err());
        assert!(d.push_line("solve id=1 bogus=2").unwrap().is_err());
        assert!(d.push_line("solve id=1 priority=urgent").unwrap().is_err());
        assert!(d.push_line("cancel").unwrap().is_err());
        assert!(d.push_line("frobnicate").unwrap().is_err());
        // Errors carry the id when it was already parsed.
        match d.push_line("solve id=9 priority=urgent").unwrap() {
            Err(e) => assert_eq!(e.id, Some(9)),
            Ok(f) => panic!("unexpected frame {f:?}"),
        }
    }

    #[test]
    fn oversized_bodies_error_and_resync() {
        let mut d = RequestDecoder::new();
        d.push_line("solve id=1");
        let big = "x".repeat(4096);
        for _ in 0..=(MAX_BODY_BYTES / 4096) {
            assert_eq!(d.push_line(&big), None);
        }
        let err = d.push_line(".").unwrap().unwrap_err();
        assert_eq!(err.id, Some(1));
        assert!(err.message.contains("exceeds"));
        // The decoder is idle again — the next frame decodes normally.
        assert_eq!(d.push_line("ping").unwrap().unwrap(), ClientFrame::Ping);
    }

    #[test]
    fn responses_render_single_lines() {
        let ok = Response::Ok {
            id: 4,
            verdict: "sat",
            cache: CacheTier::Session,
            wait_us: 12,
            solve_us: 345,
            model: vec![("x".into(), "1/2".into())],
        };
        assert_eq!(
            ok.render(),
            "ok id=4 verdict=sat cache=session wait_us=12 solve_us=345 model x=1/2"
        );
        let err = Response::Err {
            id: Some(5),
            code: ErrCode::Overload,
            retry_after_ms: Some(50),
            message: "queue full\nretry".to_string(),
        };
        assert_eq!(
            err.render(),
            "err id=5 code=overload retry_after_ms=50 msg=queue full retry"
        );
    }
}
