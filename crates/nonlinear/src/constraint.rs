//! Nonlinear constraints `expr ⋈ rhs` and their three-valued evaluation.
//!
//! A constraint is stored in *interned* form: the LHS lives in the global
//! [`crate::term`] arena as a dense [`TermId`], the `(term, op, rhs)`
//! triple has a stable [`ConstraintId`], and evaluation runs over the
//! shared flat [`TermTape`] instead of recursing a boxed tree. Structural
//! equality is id equality, which is what makes the constraint usable as
//! an O(1) cache-key component across solves and requests.

use crate::expr::{Expr, VarId};
use crate::term::{self, ConstraintId, TermId, TermTape};
use absolver_linear::{CmpOp, LinExpr};
use absolver_num::{Interval, Rational};
use std::fmt;
use std::sync::Arc;

/// A nonlinear constraint `expr ⋈ rhs` in interned form.
///
/// `op` and `rhs` are plain public fields (the id is keyed on them at
/// construction; they are read-only by convention everywhere). The LHS is
/// reached through [`NlConstraint::tape`] on hot paths and rebuilt via
/// [`NlConstraint::expr`] on cold ones (printing, rendering).
#[derive(Clone)]
pub struct NlConstraint {
    /// Interned LHS term.
    term: TermId,
    /// Stable id of the whole `(term, op, rhs)` constraint.
    cid: ConstraintId,
    /// Shared flat evaluation form of the LHS.
    tape: Arc<TermTape>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side constant.
    pub rhs: Rational,
}

/// Three-valued verdict of an interval check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalVerdict {
    /// Every point of the box satisfies the constraint.
    CertainlyTrue,
    /// No point of the box satisfies the constraint.
    CertainlyFalse,
    /// The box contains both kinds of points (or precision was lost).
    Unknown,
}

impl NlConstraint {
    /// Creates `expr ⋈ rhs`, interning the LHS into the global arena.
    pub fn new(expr: Expr, op: CmpOp, rhs: Rational) -> NlConstraint {
        let (term, tape) = term::intern_with_tape(&expr);
        let cid = term::intern_constraint(term, op, &rhs);
        NlConstraint {
            term,
            cid,
            tape,
            op,
            rhs,
        }
    }

    /// The same LHS under a different comparison (no re-interning of the
    /// term — only the constraint id changes).
    pub fn with_op(&self, op: CmpOp) -> NlConstraint {
        let cid = term::intern_constraint(self.term, op, &self.rhs);
        NlConstraint {
            term: self.term,
            cid,
            tape: Arc::clone(&self.tape),
            op,
            rhs: self.rhs.clone(),
        }
    }

    /// Interned id of the LHS term.
    pub fn term(&self) -> TermId {
        self.term
    }

    /// Stable dense id of the whole constraint: equal ids ⇔ structurally
    /// equal constraints, across solves and requests. The contraction
    /// cache and the service's structural keys are built on this.
    pub fn cid(&self) -> ConstraintId {
        self.cid
    }

    /// The shared flat evaluation form of the LHS.
    pub fn tape(&self) -> &Arc<TermTape> {
        &self.tape
    }

    /// Rebuilds the LHS as a boxed expression tree (cold paths only).
    pub fn expr(&self) -> Expr {
        term::rebuild(self.term)
    }

    /// The LHS value at a point, in `f64` arithmetic.
    pub fn lhs_f64(&self, point: &[f64]) -> f64 {
        self.tape.eval_f64(point)
    }

    /// Point evaluation in `f64` arithmetic (exact comparison, no
    /// tolerance). NaN evaluates to `false`.
    pub fn eval(&self, point: &[f64]) -> bool {
        let lhs = self.tape.eval_f64(point);
        let rhs = self.rhs.to_f64();
        match self.op {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
        }
    }

    /// Witness-quality evaluation: inequalities are checked *exactly* in
    /// `f64`, only equalities get a tolerance (exact float equality being
    /// unattainable for a numerical solver). This is the acceptance test
    /// for nonlinear witnesses, so that downstream exact re-evaluation
    /// (e.g. simulating the original model) agrees with the solver.
    pub fn eval_robust(&self, point: &[f64], eq_tol: f64) -> bool {
        let lhs = self.tape.eval_f64(point);
        let rhs = self.rhs.to_f64();
        match self.op {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => (lhs - rhs).abs() <= eq_tol,
        }
    }

    /// Point evaluation with a tolerance on non-strict and equality
    /// comparisons — the satisfaction notion of numerical solvers like
    /// IPOPT, which the local search targets.
    pub fn eval_with_tol(&self, point: &[f64], tol: f64) -> bool {
        let lhs = self.tape.eval_f64(point);
        let rhs = self.rhs.to_f64();
        match self.op {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs + tol,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs - tol,
            CmpOp::Eq => (lhs - rhs).abs() <= tol,
        }
    }

    /// How far the point is from satisfying the constraint (`0` when
    /// satisfied); the penalty the local search minimises. `margin` nudges
    /// every inequality into the strict interior, so that accepted
    /// witnesses satisfy the exact `f64` comparison and do not hug
    /// boundaries.
    pub fn violation(&self, point: &[f64], margin: f64) -> f64 {
        let lhs = self.tape.eval_f64(point);
        let rhs = self.rhs.to_f64();
        let v = match self.op {
            CmpOp::Lt | CmpOp::Le => lhs - rhs + margin,
            CmpOp::Gt | CmpOp::Ge => rhs - lhs + margin,
            CmpOp::Eq => return (lhs - rhs).abs(),
        };
        v.max(0.0)
    }

    /// The RHS as a sound enclosing interval: a point when the rational is
    /// exactly representable as a double, one ulp of widening otherwise.
    pub fn rhs_interval(&self) -> Interval {
        let v = self.rhs.to_f64();
        if Rational::from_f64(v).as_ref() == Some(&self.rhs) {
            Interval::point(v)
        } else {
            Interval::checked(v.next_down(), v.next_up())
        }
    }

    /// Sound three-valued check over a box.
    ///
    /// `CertainlyTrue`/`CertainlyFalse` are rigorous (interval arithmetic
    /// with outward rounding); `Unknown` carries no information.
    pub fn check_box(&self, boxes: &[Interval]) -> IntervalVerdict {
        self.check_interval(self.tape.eval_interval(boxes))
    }

    /// Classifies a precomputed enclosure of the LHS (as produced by
    /// [`TermTape::eval_interval`] or the HC4 forward pass) against the
    /// RHS — the allocation-free core of [`NlConstraint::check_box`].
    pub fn check_interval(&self, lhs: Interval) -> IntervalVerdict {
        if lhs.is_empty() {
            // The expression is undefined everywhere in the box (e.g. sqrt
            // of a negative range): no point satisfies the constraint.
            return IntervalVerdict::CertainlyFalse;
        }
        let rhs = self.rhs_interval();
        match self.op {
            CmpOp::Lt => {
                if lhs.hi() < rhs.lo() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.lo() >= rhs.hi() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Le => {
                if lhs.hi() <= rhs.lo() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.lo() > rhs.hi() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Gt => {
                if lhs.lo() > rhs.hi() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.hi() <= rhs.lo() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Ge => {
                if lhs.lo() >= rhs.hi() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.hi() < rhs.lo() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Eq => {
                if lhs.is_point() && rhs.is_point() && lhs == rhs {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.intersect(rhs).is_empty() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
        }
    }

    /// The interval the LHS must fall into for the constraint to hold
    /// (closing strict bounds — a sound over-approximation used by the HC4
    /// contractor).
    pub fn target_interval(&self) -> Interval {
        let rhs = self.rhs_interval();
        match self.op {
            CmpOp::Lt | CmpOp::Le => Interval::new(f64::NEG_INFINITY, rhs.hi()),
            CmpOp::Gt | CmpOp::Ge => Interval::new(rhs.lo(), f64::INFINITY),
            CmpOp::Eq => rhs,
        }
    }

    /// Largest variable id mentioned, if any (precomputed on the tape).
    pub fn max_var(&self) -> Option<VarId> {
        self.tape.max_var
    }

    /// The sorted variables the constraint mentions (precomputed on the
    /// tape); the projection the contraction cache keys on.
    pub fn variables(&self) -> &[VarId] {
        &self.tape.vars
    }

    /// Whether the LHS is affine (precomputed on the tape).
    pub fn is_linear(&self) -> bool {
        self.tape.is_linear()
    }

    /// The affine view `Σ aᵢ·xᵢ + c` of the LHS, when linear
    /// (precomputed on the tape).
    pub fn to_affine(&self) -> Option<&(LinExpr, Rational)> {
        self.tape.affine.as_ref()
    }

    /// The *normalized* affine inequality view: `Σ aᵢ·xᵢ ⋈ t` with the
    /// LHS constant folded into the threshold (`t = (rhs − c) / |lead|`)
    /// and the whole row scaled so the leading coefficient (the lowest
    /// variable id) is `+1` — scaling by a negative flips the comparison
    /// direction. Two affine constraints dominate one another exactly
    /// when their normalized rows are equal and the threshold/direction
    /// pairs compare, so the analyzer's dominance pass keys on the
    /// returned [`LinExpr`]. `None` for a nonlinear LHS or an affine LHS
    /// without variables.
    pub fn normalized_affine(&self) -> Option<(LinExpr, CmpOp, Rational)> {
        let (lin, constant) = self.to_affine()?;
        let lead = lin.terms().first()?.1.clone();
        let inv = lead.recip();
        let mut expr = lin.clone();
        expr.scale(&inv);
        let threshold = (self.rhs.clone() - constant.clone()) * inv;
        let op = if lead.is_negative() {
            self.op.flip()
        } else {
            self.op
        };
        Some((expr, op, threshold))
    }

    /// The negated constraint as a disjunction (Sec. 1: `¬(= c)` splits
    /// into `< c ∨ > c`). Reuses the interned term — no tree rebuilding.
    pub fn negate(&self) -> Vec<NlConstraint> {
        match self.op.negate() {
            Some(op) => vec![self.with_op(op)],
            None => vec![self.with_op(CmpOp::Lt), self.with_op(CmpOp::Gt)],
        }
    }
}

impl PartialEq for NlConstraint {
    fn eq(&self, other: &NlConstraint) -> bool {
        // Ids are canonical: equal ids ⇔ structurally equal constraints.
        self.cid == other.cid
    }
}

impl fmt::Debug for NlConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NlConstraint")
            .field("expr", &self.expr())
            .field("op", &self.op)
            .field("rhs", &self.rhs)
            .field("cid", &self.cid)
            .finish()
    }
}

impl fmt::Display for NlConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr(), self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn point_eval() {
        let c = NlConstraint::new(x() * x(), CmpOp::Le, q(4));
        assert!(c.eval(&[2.0]));
        assert!(c.eval(&[-2.0]));
        assert!(!c.eval(&[2.1]));
        let s = NlConstraint::new(x(), CmpOp::Lt, q(0));
        assert!(!s.eval(&[0.0]));
        assert!(s.eval(&[-1e-300]));
    }

    #[test]
    fn eval_with_tolerance() {
        let c = NlConstraint::new(x(), CmpOp::Eq, q(1));
        assert!(!c.eval(&[1.0 + 1e-9]));
        assert!(c.eval_with_tol(&[1.0 + 1e-9], 1e-6));
        assert!(!c.eval_with_tol(&[1.1], 1e-6));
    }

    #[test]
    fn violations() {
        let c = NlConstraint::new(x(), CmpOp::Le, q(2));
        assert_eq!(c.violation(&[1.0], 0.0), 0.0);
        assert_eq!(c.violation(&[3.0], 0.0), 1.0);
        let e = NlConstraint::new(x(), CmpOp::Eq, q(2));
        assert_eq!(e.violation(&[5.0], 0.0), 3.0);
        let g = NlConstraint::new(x(), CmpOp::Gt, q(0));
        assert!(g.violation(&[0.0], 1e-3) > 0.0);
        assert_eq!(g.violation(&[1.0], 1e-3), 0.0);
    }

    #[test]
    fn interval_checks() {
        let c = NlConstraint::new(x() * x(), CmpOp::Le, q(4));
        assert_eq!(
            c.check_box(&[Interval::new(-1.0, 1.0)]),
            IntervalVerdict::CertainlyTrue
        );
        assert_eq!(
            c.check_box(&[Interval::new(3.0, 5.0)]),
            IntervalVerdict::CertainlyFalse
        );
        assert_eq!(
            c.check_box(&[Interval::new(1.0, 3.0)]),
            IntervalVerdict::Unknown
        );
    }

    #[test]
    fn interval_check_undefined_expression() {
        // sqrt(x) with x entirely negative: constraint unsatisfiable there.
        let c = NlConstraint::new(x().sqrt(), CmpOp::Ge, q(0));
        assert_eq!(
            c.check_box(&[Interval::new(-5.0, -1.0)]),
            IntervalVerdict::CertainlyFalse
        );
    }

    #[test]
    fn equality_certainty() {
        let c = NlConstraint::new(x(), CmpOp::Eq, q(2));
        assert_eq!(
            c.check_box(&[Interval::new(3.0, 4.0)]),
            IntervalVerdict::CertainlyFalse
        );
        assert_eq!(
            c.check_box(&[Interval::new(1.0, 3.0)]),
            IntervalVerdict::Unknown
        );
    }

    #[test]
    fn negation_splits_equality() {
        let c = NlConstraint::new(x().sin(), CmpOp::Eq, q(0));
        let neg = c.negate();
        assert_eq!(neg.len(), 2);
        assert_eq!(neg[0].op, CmpOp::Lt);
        assert_eq!(neg[1].op, CmpOp::Gt);
        assert_eq!(neg[0].term(), c.term(), "negation shares the interned LHS");
        let le = NlConstraint::new(x(), CmpOp::Le, q(0)).negate();
        assert_eq!(le.len(), 1);
        assert_eq!(le[0].op, CmpOp::Gt);
    }

    #[test]
    fn target_intervals() {
        let le = NlConstraint::new(x(), CmpOp::Le, q(3));
        assert!(le.target_interval().contains(3.0));
        assert!(le.target_interval().contains(-1e300));
        assert!(!le.target_interval().contains(4.0));
        let eq = NlConstraint::new(x(), CmpOp::Eq, q(3));
        assert!(eq.target_interval().contains(3.0));
        assert!(eq.target_interval().width() < 1e-9);
    }

    #[test]
    fn interned_equality_is_structural() {
        let a = NlConstraint::new(x() * x(), CmpOp::Le, q(4));
        let b = NlConstraint::new(x() * x(), CmpOp::Le, q(4));
        let c = NlConstraint::new(x() * x(), CmpOp::Lt, q(4));
        assert_eq!(a, b);
        assert_eq!(a.cid(), b.cid());
        assert_ne!(a, c);
        assert_eq!(a.expr(), b.expr());
    }
}
