//! Nonlinear constraints `expr ⋈ rhs` and their three-valued evaluation.

use crate::expr::{Expr, VarId};
use absolver_linear::CmpOp;
use absolver_num::{Interval, Rational};
use std::fmt;

/// A nonlinear constraint `expr ⋈ rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct NlConstraint {
    /// Left-hand side expression.
    pub expr: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side constant.
    pub rhs: Rational,
}

/// Three-valued verdict of an interval check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalVerdict {
    /// Every point of the box satisfies the constraint.
    CertainlyTrue,
    /// No point of the box satisfies the constraint.
    CertainlyFalse,
    /// The box contains both kinds of points (or precision was lost).
    Unknown,
}

impl NlConstraint {
    /// Creates `expr ⋈ rhs`.
    pub fn new(expr: Expr, op: CmpOp, rhs: Rational) -> NlConstraint {
        NlConstraint { expr, op, rhs }
    }

    /// Point evaluation in `f64` arithmetic (exact comparison, no
    /// tolerance). NaN evaluates to `false`.
    pub fn eval(&self, point: &[f64]) -> bool {
        let lhs = self.expr.eval_f64(point);
        let rhs = self.rhs.to_f64();
        match self.op {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
        }
    }

    /// Witness-quality evaluation: inequalities are checked *exactly* in
    /// `f64`, only equalities get a tolerance (exact float equality being
    /// unattainable for a numerical solver). This is the acceptance test
    /// for nonlinear witnesses, so that downstream exact re-evaluation
    /// (e.g. simulating the original model) agrees with the solver.
    pub fn eval_robust(&self, point: &[f64], eq_tol: f64) -> bool {
        let lhs = self.expr.eval_f64(point);
        let rhs = self.rhs.to_f64();
        match self.op {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => (lhs - rhs).abs() <= eq_tol,
        }
    }

    /// Point evaluation with a tolerance on non-strict and equality
    /// comparisons — the satisfaction notion of numerical solvers like
    /// IPOPT, which the local search targets.
    pub fn eval_with_tol(&self, point: &[f64], tol: f64) -> bool {
        let lhs = self.expr.eval_f64(point);
        let rhs = self.rhs.to_f64();
        match self.op {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs + tol,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs - tol,
            CmpOp::Eq => (lhs - rhs).abs() <= tol,
        }
    }

    /// How far the point is from satisfying the constraint (`0` when
    /// satisfied); the penalty the local search minimises. `margin` nudges
    /// every inequality into the strict interior, so that accepted
    /// witnesses satisfy the exact `f64` comparison and do not hug
    /// boundaries.
    pub fn violation(&self, point: &[f64], margin: f64) -> f64 {
        let lhs = self.expr.eval_f64(point);
        let rhs = self.rhs.to_f64();
        let v = match self.op {
            CmpOp::Lt | CmpOp::Le => lhs - rhs + margin,
            CmpOp::Gt | CmpOp::Ge => rhs - lhs + margin,
            CmpOp::Eq => return (lhs - rhs).abs(),
        };
        v.max(0.0)
    }

    /// The RHS as a sound enclosing interval: a point when the rational is
    /// exactly representable as a double, one ulp of widening otherwise.
    pub fn rhs_interval(&self) -> Interval {
        let v = self.rhs.to_f64();
        if Rational::from_f64(v).as_ref() == Some(&self.rhs) {
            Interval::point(v)
        } else {
            Interval::checked(v.next_down(), v.next_up())
        }
    }

    /// Sound three-valued check over a box.
    ///
    /// `CertainlyTrue`/`CertainlyFalse` are rigorous (interval arithmetic
    /// with outward rounding); `Unknown` carries no information.
    pub fn check_box(&self, boxes: &[Interval]) -> IntervalVerdict {
        self.check_interval(self.expr.eval_interval(boxes))
    }

    /// Classifies a precomputed enclosure of the LHS (as produced by
    /// `Expr::eval_interval` or the HC4 forward pass) against the RHS —
    /// the allocation-free core of [`NlConstraint::check_box`].
    pub fn check_interval(&self, lhs: Interval) -> IntervalVerdict {
        if lhs.is_empty() {
            // The expression is undefined everywhere in the box (e.g. sqrt
            // of a negative range): no point satisfies the constraint.
            return IntervalVerdict::CertainlyFalse;
        }
        let rhs = self.rhs_interval();
        match self.op {
            CmpOp::Lt => {
                if lhs.hi() < rhs.lo() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.lo() >= rhs.hi() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Le => {
                if lhs.hi() <= rhs.lo() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.lo() > rhs.hi() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Gt => {
                if lhs.lo() > rhs.hi() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.hi() <= rhs.lo() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Ge => {
                if lhs.lo() >= rhs.hi() {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.hi() < rhs.lo() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
            CmpOp::Eq => {
                if lhs.is_point() && rhs.is_point() && lhs == rhs {
                    IntervalVerdict::CertainlyTrue
                } else if lhs.intersect(rhs).is_empty() {
                    IntervalVerdict::CertainlyFalse
                } else {
                    IntervalVerdict::Unknown
                }
            }
        }
    }

    /// The interval the LHS must fall into for the constraint to hold
    /// (closing strict bounds — a sound over-approximation used by the HC4
    /// contractor).
    pub fn target_interval(&self) -> Interval {
        let rhs = self.rhs_interval();
        match self.op {
            CmpOp::Lt | CmpOp::Le => Interval::new(f64::NEG_INFINITY, rhs.hi()),
            CmpOp::Gt | CmpOp::Ge => Interval::new(rhs.lo(), f64::INFINITY),
            CmpOp::Eq => rhs,
        }
    }

    /// Largest variable id mentioned, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.expr.max_var()
    }

    /// The set of variables the constraint mentions (delegates to the
    /// expression); the projection the contraction cache keys on.
    pub fn variables(&self) -> std::collections::BTreeSet<VarId> {
        self.expr.variables()
    }

    /// The negated constraint as a disjunction (Sec. 1: `¬(= c)` splits
    /// into `< c ∨ > c`).
    pub fn negate(&self) -> Vec<NlConstraint> {
        match self.op.negate() {
            Some(op) => vec![NlConstraint::new(self.expr.clone(), op, self.rhs.clone())],
            None => vec![
                NlConstraint::new(self.expr.clone(), CmpOp::Lt, self.rhs.clone()),
                NlConstraint::new(self.expr.clone(), CmpOp::Gt, self.rhs.clone()),
            ],
        }
    }
}

impl fmt::Display for NlConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn point_eval() {
        let c = NlConstraint::new(x() * x(), CmpOp::Le, q(4));
        assert!(c.eval(&[2.0]));
        assert!(c.eval(&[-2.0]));
        assert!(!c.eval(&[2.1]));
        let s = NlConstraint::new(x(), CmpOp::Lt, q(0));
        assert!(!s.eval(&[0.0]));
        assert!(s.eval(&[-1e-300]));
    }

    #[test]
    fn eval_with_tolerance() {
        let c = NlConstraint::new(x(), CmpOp::Eq, q(1));
        assert!(!c.eval(&[1.0 + 1e-9]));
        assert!(c.eval_with_tol(&[1.0 + 1e-9], 1e-6));
        assert!(!c.eval_with_tol(&[1.1], 1e-6));
    }

    #[test]
    fn violations() {
        let c = NlConstraint::new(x(), CmpOp::Le, q(2));
        assert_eq!(c.violation(&[1.0], 0.0), 0.0);
        assert_eq!(c.violation(&[3.0], 0.0), 1.0);
        let e = NlConstraint::new(x(), CmpOp::Eq, q(2));
        assert_eq!(e.violation(&[5.0], 0.0), 3.0);
        let g = NlConstraint::new(x(), CmpOp::Gt, q(0));
        assert!(g.violation(&[0.0], 1e-3) > 0.0);
        assert_eq!(g.violation(&[1.0], 1e-3), 0.0);
    }

    #[test]
    fn interval_checks() {
        let c = NlConstraint::new(x() * x(), CmpOp::Le, q(4));
        assert_eq!(
            c.check_box(&[Interval::new(-1.0, 1.0)]),
            IntervalVerdict::CertainlyTrue
        );
        assert_eq!(
            c.check_box(&[Interval::new(3.0, 5.0)]),
            IntervalVerdict::CertainlyFalse
        );
        assert_eq!(
            c.check_box(&[Interval::new(1.0, 3.0)]),
            IntervalVerdict::Unknown
        );
    }

    #[test]
    fn interval_check_undefined_expression() {
        // sqrt(x) with x entirely negative: constraint unsatisfiable there.
        let c = NlConstraint::new(x().sqrt(), CmpOp::Ge, q(0));
        assert_eq!(
            c.check_box(&[Interval::new(-5.0, -1.0)]),
            IntervalVerdict::CertainlyFalse
        );
    }

    #[test]
    fn equality_certainty() {
        let c = NlConstraint::new(x(), CmpOp::Eq, q(2));
        assert_eq!(
            c.check_box(&[Interval::new(3.0, 4.0)]),
            IntervalVerdict::CertainlyFalse
        );
        assert_eq!(
            c.check_box(&[Interval::new(1.0, 3.0)]),
            IntervalVerdict::Unknown
        );
    }

    #[test]
    fn negation_splits_equality() {
        let c = NlConstraint::new(x().sin(), CmpOp::Eq, q(0));
        let neg = c.negate();
        assert_eq!(neg.len(), 2);
        assert_eq!(neg[0].op, CmpOp::Lt);
        assert_eq!(neg[1].op, CmpOp::Gt);
        let le = NlConstraint::new(x(), CmpOp::Le, q(0)).negate();
        assert_eq!(le.len(), 1);
        assert_eq!(le[0].op, CmpOp::Gt);
    }

    #[test]
    fn target_intervals() {
        let le = NlConstraint::new(x(), CmpOp::Le, q(3));
        assert!(le.target_interval().contains(3.0));
        assert!(le.target_interval().contains(-1e300));
        assert!(!le.target_interval().contains(4.0));
        let eq = NlConstraint::new(x(), CmpOp::Eq, q(3));
        assert!(eq.target_interval().contains(3.0));
        assert!(eq.target_interval().width() < 1e-9);
    }
}
