//! Nonlinear arithmetic expression trees.
//!
//! The paper's class *AB* allows arithmetic expressions built from
//! `+ − * /` (Sec. 2), and notes that "extension to other operators, such
//! as sin, cos or exp is straightforward and not limited by a design
//! decision" — this reproduction implements those extensions too
//! ([`Expr::Sin`], [`Expr::Cos`], [`Expr::Exp`], plus `ln`, `sqrt`, `abs`
//! and integer powers).
//!
//! Every expression supports three interpretations: plain `f64` evaluation
//! (used by the local search), sound interval evaluation (used by the
//! branch-and-prune prover), and symbolic differentiation (used for
//! gradients).

use absolver_linear::LinExpr;
use absolver_num::{Interval, Rational};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Identifier of a real-valued theory variable (dense 0-based index).
pub type VarId = usize;

/// A (possibly) nonlinear real arithmetic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An exact rational constant.
    Const(Rational),
    /// A variable reference.
    Var(VarId),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
    /// Integer power.
    Pow(Box<Expr>, i32),
    /// Sine.
    Sin(Box<Expr>),
    /// Cosine.
    Cos(Box<Expr>),
    /// Natural exponential.
    Exp(Box<Expr>),
    /// Natural logarithm.
    Ln(Box<Expr>),
    /// Square root.
    Sqrt(Box<Expr>),
    /// Absolute value.
    Abs(Box<Expr>),
}

impl Expr {
    /// The constant `0`.
    pub fn zero() -> Expr {
        Expr::Const(Rational::zero())
    }

    /// An exact rational constant.
    pub fn constant(value: Rational) -> Expr {
        Expr::Const(value)
    }

    /// An integer constant.
    pub fn int(value: i64) -> Expr {
        Expr::Const(Rational::from_int(value))
    }

    /// A variable reference.
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// `self` raised to the integer power `n`.
    pub fn pow(self, n: i32) -> Expr {
        Expr::Pow(Box::new(self), n)
    }

    /// `sin(self)`.
    pub fn sin(self) -> Expr {
        Expr::Sin(Box::new(self))
    }

    /// `cos(self)`.
    pub fn cos(self) -> Expr {
        Expr::Cos(Box::new(self))
    }

    /// `exp(self)`.
    pub fn exp(self) -> Expr {
        Expr::Exp(Box::new(self))
    }

    /// `ln(self)`.
    pub fn ln(self) -> Expr {
        Expr::Ln(Box::new(self))
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Sqrt(Box::new(self))
    }

    /// `|self|`.
    pub fn abs(self) -> Expr {
        Expr::Abs(Box::new(self))
    }

    /// Evaluates in `f64` arithmetic; division by zero, `ln` of
    /// non-positives etc. follow IEEE semantics (±inf / NaN).
    pub fn eval_f64(&self, values: &[f64]) -> f64 {
        match self {
            Expr::Const(c) => c.to_f64(),
            Expr::Var(v) => values.get(*v).copied().unwrap_or(f64::NAN),
            Expr::Neg(e) => -e.eval_f64(values),
            Expr::Add(a, b) => a.eval_f64(values) + b.eval_f64(values),
            Expr::Sub(a, b) => a.eval_f64(values) - b.eval_f64(values),
            Expr::Mul(a, b) => a.eval_f64(values) * b.eval_f64(values),
            Expr::Div(a, b) => a.eval_f64(values) / b.eval_f64(values),
            Expr::Pow(e, n) => e.eval_f64(values).powi(*n),
            Expr::Sin(e) => e.eval_f64(values).sin(),
            Expr::Cos(e) => e.eval_f64(values).cos(),
            Expr::Exp(e) => e.eval_f64(values).exp(),
            Expr::Ln(e) => e.eval_f64(values).ln(),
            Expr::Sqrt(e) => e.eval_f64(values).sqrt(),
            Expr::Abs(e) => e.eval_f64(values).abs(),
        }
    }

    /// Sound interval evaluation over a box (one interval per variable).
    pub fn eval_interval(&self, boxes: &[Interval]) -> Interval {
        match self {
            Expr::Const(c) => {
                let v = c.to_f64();
                // Exactly representable constants stay points; one ulp of
                // widening covers rational→double rounding otherwise.
                if Rational::from_f64(v).as_ref() == Some(c) {
                    Interval::point(v)
                } else {
                    Interval::checked(v.next_down(), v.next_up())
                }
            }
            Expr::Var(v) => boxes.get(*v).copied().unwrap_or(Interval::ENTIRE),
            Expr::Neg(e) => e.eval_interval(boxes).neg(),
            Expr::Add(a, b) => a.eval_interval(boxes).add(b.eval_interval(boxes)),
            Expr::Sub(a, b) => a.eval_interval(boxes).sub(b.eval_interval(boxes)),
            Expr::Mul(a, b) => a.eval_interval(boxes).mul(b.eval_interval(boxes)),
            Expr::Div(a, b) => a.eval_interval(boxes).div(b.eval_interval(boxes)),
            Expr::Pow(e, n) => e.eval_interval(boxes).powi(*n),
            Expr::Sin(e) => e.eval_interval(boxes).sin(),
            Expr::Cos(e) => e.eval_interval(boxes).cos(),
            Expr::Exp(e) => e.eval_interval(boxes).exp(),
            Expr::Ln(e) => e.eval_interval(boxes).ln(),
            Expr::Sqrt(e) => e.eval_interval(boxes).sqrt(),
            Expr::Abs(e) => e.eval_interval(boxes).abs(),
        }
    }

    /// The set of variables occurring in the expression.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Neg(e)
            | Expr::Pow(e, _)
            | Expr::Sin(e)
            | Expr::Cos(e)
            | Expr::Exp(e)
            | Expr::Ln(e)
            | Expr::Sqrt(e)
            | Expr::Abs(e) => e.collect_vars(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Largest variable id mentioned, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.variables().into_iter().max()
    }

    /// Symbolic partial derivative `∂self/∂x`.
    ///
    /// `abs` is differentiated as `sign`-free `e·e'/|e|`, which is correct
    /// away from zero (the local search only needs descent directions).
    pub fn derivative(&self, x: VarId) -> Expr {
        match self {
            Expr::Const(_) => Expr::zero(),
            Expr::Var(v) => {
                if *v == x {
                    Expr::int(1)
                } else {
                    Expr::zero()
                }
            }
            Expr::Neg(e) => -e.derivative(x),
            Expr::Add(a, b) => a.derivative(x) + b.derivative(x),
            Expr::Sub(a, b) => a.derivative(x) - b.derivative(x),
            Expr::Mul(a, b) => a.derivative(x) * (**b).clone() + (**a).clone() * b.derivative(x),
            Expr::Div(a, b) => {
                (a.derivative(x) * (**b).clone() - (**a).clone() * b.derivative(x))
                    / ((**b).clone() * (**b).clone())
            }
            Expr::Pow(e, n) => Expr::int(*n as i64) * (**e).clone().pow(n - 1) * e.derivative(x),
            Expr::Sin(e) => (**e).clone().cos() * e.derivative(x),
            Expr::Cos(e) => -((**e).clone().sin() * e.derivative(x)),
            Expr::Exp(e) => (**e).clone().exp() * e.derivative(x),
            Expr::Ln(e) => e.derivative(x) / (**e).clone(),
            Expr::Sqrt(e) => e.derivative(x) / (Expr::int(2) * (**e).clone().sqrt()),
            Expr::Abs(e) => ((**e).clone() * e.derivative(x)) / (**e).clone().abs(),
        }
    }

    /// Constant-folds the expression and prunes trivial identities
    /// (`x + 0`, `x * 1`, `x * 0`, …).
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Neg(e) => match e.simplify() {
                Expr::Const(c) => Expr::Const(-c),
                Expr::Neg(inner) => *inner,
                s => Expr::Neg(Box::new(s)),
            },
            Expr::Add(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x + y),
                (Expr::Const(x), s) | (s, Expr::Const(x)) if x.is_zero() => s,
                (sa, sb) => Expr::Add(Box::new(sa), Box::new(sb)),
            },
            Expr::Sub(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x - y),
                (s, Expr::Const(x)) if x.is_zero() => s,
                (sa, sb) => Expr::Sub(Box::new(sa), Box::new(sb)),
            },
            Expr::Mul(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x * y),
                (Expr::Const(x), _) | (_, Expr::Const(x)) if x.is_zero() => Expr::zero(),
                (Expr::Const(x), s) | (s, Expr::Const(x)) if x == Rational::one() => s,
                // e·e ⇒ e²: interval evaluation of Pow knows the result is
                // non-negative, which plain interval multiplication of two
                // (dependent) copies cannot see.
                (sa, sb) if sa == sb => Expr::Pow(Box::new(sa), 2),
                (sa, sb) => Expr::Mul(Box::new(sa), Box::new(sb)),
            },
            Expr::Div(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) if !y.is_zero() => Expr::Const(x / y),
                (s, Expr::Const(x)) if x == Rational::one() => s,
                (sa, sb) => Expr::Div(Box::new(sa), Box::new(sb)),
            },
            Expr::Pow(e, n) => match (e.simplify(), n) {
                (_, 0) => Expr::int(1),
                (s, 1) => s,
                (Expr::Const(c), n) if *n > 0 => Expr::Const(c.powi(*n)),
                (s, n) => Expr::Pow(Box::new(s), *n),
            },
            Expr::Sin(e) => Expr::Sin(Box::new(e.simplify())),
            Expr::Cos(e) => Expr::Cos(Box::new(e.simplify())),
            Expr::Exp(e) => Expr::Exp(Box::new(e.simplify())),
            Expr::Ln(e) => Expr::Ln(Box::new(e.simplify())),
            Expr::Sqrt(e) => Expr::Sqrt(Box::new(e.simplify())),
            Expr::Abs(e) => match e.simplify() {
                Expr::Const(c) => Expr::Const(c.abs()),
                s => Expr::Abs(Box::new(s)),
            },
        }
    }

    /// Attempts to view the expression as an affine form
    /// `Σ aᵢ·xᵢ + c` with exact rational coefficients.
    ///
    /// Returns `None` if the expression is genuinely nonlinear (products of
    /// variables, division by variables, transcendental functions). This is
    /// how `absolver-core` routes each constraint to the linear or the
    /// nonlinear solver.
    pub fn to_affine(&self) -> Option<(LinExpr, Rational)> {
        match self {
            Expr::Const(c) => Some((LinExpr::zero(), c.clone())),
            Expr::Var(v) => Some((LinExpr::var(*v), Rational::zero())),
            Expr::Neg(e) => {
                let (mut l, c) = e.to_affine()?;
                l.scale(&-Rational::one());
                Some((l, -c))
            }
            Expr::Add(a, b) => {
                let (mut la, ca) = a.to_affine()?;
                let (lb, cb) = b.to_affine()?;
                la.add_scaled(&lb, &Rational::one());
                Some((la, ca + cb))
            }
            Expr::Sub(a, b) => {
                let (mut la, ca) = a.to_affine()?;
                let (lb, cb) = b.to_affine()?;
                la.add_scaled(&lb, &-Rational::one());
                Some((la, ca - cb))
            }
            Expr::Mul(a, b) => {
                let (la, ca) = a.to_affine()?;
                let (lb, cb) = b.to_affine()?;
                if la.is_zero() {
                    let mut l = lb;
                    l.scale(&ca);
                    Some((l, &ca * &cb))
                } else if lb.is_zero() {
                    let mut l = la;
                    l.scale(&cb);
                    Some((l, &ca * &cb))
                } else {
                    None // variable × variable
                }
            }
            Expr::Div(a, b) => {
                let (la, ca) = a.to_affine()?;
                let (lb, cb) = b.to_affine()?;
                if lb.is_zero() && !cb.is_zero() {
                    let mut l = la;
                    l.scale(&cb.recip());
                    Some((l, &ca / &cb))
                } else {
                    None // division by a variable (or by zero)
                }
            }
            Expr::Pow(e, n) => match n {
                0 => Some((LinExpr::zero(), Rational::one())),
                1 => e.to_affine(),
                _ => {
                    let (l, c) = e.to_affine()?;
                    if l.is_zero() && *n > 0 {
                        Some((LinExpr::zero(), c.powi(*n)))
                    } else {
                        None
                    }
                }
            },
            Expr::Sin(_)
            | Expr::Cos(_)
            | Expr::Exp(_)
            | Expr::Ln(_)
            | Expr::Sqrt(_)
            | Expr::Abs(_) => None,
        }
    }

    /// Returns `true` if [`Expr::to_affine`] succeeds.
    pub fn is_linear(&self) -> bool {
        self.to_affine().is_some()
    }

    /// Whether the expression contains a trigonometric subterm. HC4's
    /// backward pass cannot invert the periodic functions, so constraints
    /// over such expressions need a bound-shaving contractor (BC3) to
    /// narrow at all; the cascade uses this to schedule BC3 where it is
    /// the only contractor that can make progress.
    pub fn has_trig(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => false,
            Expr::Sin(_) | Expr::Cos(_) => true,
            Expr::Neg(a)
            | Expr::Pow(a, _)
            | Expr::Exp(a)
            | Expr::Ln(a)
            | Expr::Sqrt(a)
            | Expr::Abs(a) => a.has_trig(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.has_trig() || b.has_trig()
            }
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Add(..) | Expr::Sub(..) => 1,
            Expr::Mul(..) | Expr::Div(..) => 2,
            Expr::Neg(_) => 3,
            _ => 4,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        let prec = self.precedence();
        let paren = prec < min_prec;
        if paren {
            f.write_str("( ")?;
        }
        match self {
            Expr::Const(c) => write!(f, "{c}")?,
            Expr::Var(v) => write!(f, "v{v}")?,
            Expr::Neg(e) => {
                f.write_str("-")?;
                e.fmt_prec(f, 4)?;
            }
            Expr::Add(a, b) => {
                a.fmt_prec(f, 1)?;
                f.write_str(" + ")?;
                b.fmt_prec(f, 2)?;
            }
            Expr::Sub(a, b) => {
                a.fmt_prec(f, 1)?;
                f.write_str(" - ")?;
                b.fmt_prec(f, 2)?;
            }
            Expr::Mul(a, b) => {
                a.fmt_prec(f, 2)?;
                f.write_str(" * ")?;
                b.fmt_prec(f, 3)?;
            }
            Expr::Div(a, b) => {
                a.fmt_prec(f, 2)?;
                f.write_str(" / ")?;
                b.fmt_prec(f, 3)?;
            }
            Expr::Pow(e, n) => {
                e.fmt_prec(f, 4)?;
                write!(f, "^{n}")?;
            }
            Expr::Sin(e) => {
                f.write_str("sin ")?;
                e.fmt_prec(f, 4)?;
            }
            Expr::Cos(e) => {
                f.write_str("cos ")?;
                e.fmt_prec(f, 4)?;
            }
            Expr::Exp(e) => {
                f.write_str("exp ")?;
                e.fmt_prec(f, 4)?;
            }
            Expr::Ln(e) => {
                f.write_str("ln ")?;
                e.fmt_prec(f, 4)?;
            }
            Expr::Sqrt(e) => {
                f.write_str("sqrt ")?;
                e.fmt_prec(f, 4)?;
            }
            Expr::Abs(e) => {
                f.write_str("abs ")?;
                e.fmt_prec(f, 4)?;
            }
        }
        if paren {
            f.write_str(" )")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    #[test]
    fn eval_f64_basics() {
        let e = x() * x() + Expr::int(3) * y() - Expr::int(1);
        assert_eq!(e.eval_f64(&[2.0, 4.0]), 15.0);
        let d = Expr::int(1) / x();
        assert_eq!(d.eval_f64(&[2.0]), 0.5);
        assert!(d.eval_f64(&[0.0]).is_infinite());
    }

    #[test]
    fn eval_transcendentals() {
        let e = x().sin().pow(2) + x().cos().pow(2);
        assert!((e.eval_f64(&[0.7]) - 1.0).abs() < 1e-12);
        assert!((x().exp().ln().eval_f64(&[1.3]) - 1.3).abs() < 1e-12);
        assert_eq!(x().abs().eval_f64(&[-4.0]), 4.0);
        assert_eq!(x().sqrt().eval_f64(&[9.0]), 3.0);
    }

    #[test]
    fn interval_eval_encloses_point_eval() {
        let e = (x() * y() + Expr::int(1)) / (x() - y());
        let bx = [Interval::new(1.0, 2.0), Interval::new(3.0, 4.0)];
        let iv = e.eval_interval(&bx);
        for &(px, py) in &[(1.0, 3.0), (2.0, 4.0), (1.5, 3.5)] {
            let v = e.eval_f64(&[px, py]);
            assert!(iv.contains(v), "{v} not in {iv}");
        }
    }

    #[test]
    fn variables_and_max_var() {
        let e = x() + Expr::var(5).sin() * Expr::int(2);
        assert_eq!(e.variables().into_iter().collect::<Vec<_>>(), vec![0, 5]);
        assert_eq!(e.max_var(), Some(5));
        assert_eq!(Expr::int(3).max_var(), None);
    }

    #[test]
    fn derivative_polynomial() {
        // d/dx (x^3 + 2x) = 3x^2 + 2
        let e = x().pow(3) + Expr::int(2) * x();
        let d = e.derivative(0);
        for &v in &[-2.0, 0.0, 1.5] {
            let expect = 3.0 * v * v + 2.0;
            assert!((d.eval_f64(&[v]) - expect).abs() < 1e-9);
        }
        // ∂/∂y of an x-only expression is 0.
        assert_eq!(e.derivative(1).simplify(), Expr::zero());
    }

    #[test]
    fn derivative_quotient_and_transcendental() {
        // d/dx (sin x / x) = (cos x · x − sin x)/x².
        let e = x().sin() / x();
        let d = e.derivative(0);
        for &v in &[0.5f64, 1.0, 2.0] {
            let expect = (v * v.cos() - v.sin()) / (v * v);
            assert!((d.eval_f64(&[v]) - expect).abs() < 1e-9, "at {v}");
        }
        // d/dx exp(2x) = 2 exp(2x)
        let e = (Expr::int(2) * x()).exp();
        let d = e.derivative(0);
        assert!((d.eval_f64(&[0.3]) - 2.0 * (0.6f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn simplify_folds_constants() {
        let e = (Expr::int(2) + Expr::int(3)) * x() + Expr::int(0) * y();
        assert_eq!(e.simplify(), Expr::int(5) * x());
        assert_eq!((x() * Expr::int(1)).simplify(), x());
        assert_eq!((x() + Expr::int(0)).simplify(), x());
        assert_eq!((x().pow(1)).simplify(), x());
        assert_eq!((x().pow(0)).simplify(), Expr::int(1));
        assert_eq!(
            Expr::Neg(Box::new(Expr::Neg(Box::new(x())))).simplify(),
            x()
        );
    }

    #[test]
    fn affine_extraction() {
        // 2x + 3(y − 1) is affine: 2x + 3y − 3.
        let e = Expr::int(2) * x() + Expr::int(3) * (y() - Expr::int(1));
        let (lin, c) = e.to_affine().unwrap();
        assert_eq!(lin.coeff(0), Rational::from_int(2));
        assert_eq!(lin.coeff(1), Rational::from_int(3));
        assert_eq!(c, Rational::from_int(-3));
        // x/2 is affine, x·y and 1/x and sin x are not.
        assert!((x() / Expr::int(2)).is_linear());
        assert!(!(x() * y()).is_linear());
        assert!(!(Expr::int(1) / x()).is_linear());
        assert!(!x().sin().is_linear());
        // The paper's nonlinear constraint: a·x + 3.5/(4−y) + 2y.
        let paper = Expr::var(2) * x()
            + Expr::constant("3.5".parse().unwrap()) / (Expr::int(4) - y())
            + Expr::int(2) * y();
        assert!(!paper.is_linear());
    }

    #[test]
    fn display_precedence() {
        let e = (x() + y()) * Expr::int(2);
        assert_eq!(e.to_string(), "( v0 + v1 ) * 2");
        let d = x() / (y() - Expr::int(1));
        assert_eq!(d.to_string(), "v0 / ( v1 - 1 )");
        assert_eq!(x().sin().to_string(), "sin v0");
        assert_eq!((-x()).to_string(), "-v0");
        assert_eq!(x().pow(3).to_string(), "v0^3");
    }

    /// Symbolic derivatives of partial functions (√, ln, |·|, division)
    /// blow up exactly where the function's domain ends. The interval
    /// Newton contractor evaluates them on boxes that *touch* those
    /// boundaries, so the evaluation must stay panic-free and NaN-free
    /// (infinite endpoints are the correct answer there) while still
    /// enclosing the true derivative at interior points.
    #[test]
    fn derivative_eval_at_domain_boundaries() {
        let no_nan = |iv: Interval, what: &str| {
            assert!(
                !iv.lo().is_nan() && !iv.hi().is_nan(),
                "{what} produced NaN endpoint {iv}"
            );
        };
        // d/dx √x = 1/(2√x): singular at the included endpoint x = 0.
        let dsqrt = x().sqrt().derivative(0).simplify();
        let on_boundary = dsqrt.eval_interval(&[Interval::new(0.0, 1.0)]);
        no_nan(on_boundary, "(√x)' on [0,1]");
        assert!(on_boundary.contains(0.5), "(√x)'(1) = ½ must be enclosed");
        // d/dx ln x = 1/x on a box with the domain edge at 0.
        let dln = x().ln().derivative(0).simplify();
        let near_zero = dln.eval_interval(&[Interval::new(0.0, 2.0)]);
        no_nan(near_zero, "(ln x)' on [0,2]");
        assert!(near_zero.contains(0.5), "(ln x)'(2) = ½ must be enclosed");
        // d/dx |x| = x/|x|: undefined at 0, ±1 elsewhere; a straddling
        // box must keep both branches without manufacturing NaN.
        let dabs = x().abs().derivative(0).simplify();
        let straddle = dabs.eval_interval(&[Interval::new(-1.0, 1.0)]);
        no_nan(straddle, "(|x|)' on [-1,1]");
        if !straddle.is_empty() {
            assert!(straddle.contains(1.0) && straddle.contains(-1.0));
        }
        // d/dx 1/x = -1/x²: point-box exactly on the pole.
        let dinv = (Expr::int(1) / x()).derivative(0).simplify();
        no_nan(
            dinv.eval_interval(&[Interval::point(0.0)]),
            "(1/x)' at [0,0]",
        );
        // Entirely outside the domain: (√x)' still contains √x, so a
        // negative box yields empty. (ln x)' simplifies to the bare 1/x,
        // which is defined on negatives — the domain restriction does not
        // survive differentiation, and that is fine for Newton (it only
        // widens the enclosure); it must still be finite and NaN-free.
        assert!(dsqrt.eval_interval(&[Interval::new(-2.0, -1.0)]).is_empty());
        let dln_neg = dln.eval_interval(&[Interval::new(-2.0, -1.0)]);
        no_nan(dln_neg, "(ln x)' on [-2,-1]");
        assert!(dln_neg.contains(-0.5), "1/x at x = -2");
    }

    use absolver_testkit::{domain, gen, property, Gen};

    /// A box in `[-4, 4]` that may be empty, degenerate (a point), or
    /// pinned to 0 at either end — the shapes branch-and-prune actually
    /// produces next to domain boundaries.
    fn boundary_box() -> Gen<Interval> {
        Gen::new(|src| match gen::ints(0u32..6).generate(src) {
            0 => Interval::EMPTY,
            1 => Interval::point(gen::f64_in(-4.0, 4.0).generate(src)),
            2 => Interval::new(0.0, gen::f64_in(0.0, 4.0).generate(src)),
            3 => Interval::new(-gen::f64_in(0.0, 4.0).generate(src), 0.0),
            _ => {
                let (a, b) = (
                    gen::f64_in(-4.0, 4.0).generate(src),
                    gen::f64_in(-4.0, 4.0).generate(src),
                );
                Interval::new(a.min(b), a.max(b))
            }
        })
    }

    property! {
        #![cases = 256]

        /// Fuzz: symbolic derivatives of random expressions evaluated on
        /// boundary-shaped boxes never panic or produce NaN endpoints,
        /// with or without simplification.
        fn derivative_interval_eval_is_total(
            e in domain::expr(2, 3, domain::ExprProfile::polyish()),
            bx in boundary_box(),
            by in boundary_box(),
            v in gen::ints(0usize..2),
        ) {
            let d = e.derivative(v);
            for d in [d.clone(), d.simplify()] {
                let iv = d.eval_interval(&[bx, by]);
                assert!(
                    !iv.lo().is_nan() && !iv.hi().is_nan(),
                    "derivative of {e} w.r.t. v{v} on [{bx}, {by}] gave NaN endpoint {iv}"
                );
            }
        }
    }
}
