//! Global hash-consed term arena: dense `u32` term ids, flat evaluation
//! tapes, and stable constraint ids.
//!
//! Every [`Expr`] that enters the solver is *interned* here: structurally
//! equal terms map to the same [`TermId`], so structural equality becomes
//! id equality and every downstream cache can key on a 4-byte id instead
//! of hashing (or rendering) a whole tree. The arena is append-only and
//! process-global — ids handed out once stay valid for the life of the
//! process, which is exactly what makes them usable as *cross-solve*
//! cache keys (the contraction cache, the service's structural problem
//! key, the orchestrator fingerprint).
//!
//! Per term the arena memoises, lazily and exactly once:
//!
//! * a [`TermTape`] — the postorder flattening the hot paths (interval
//!   evaluation, HC4 forward/backward, penalty search) iterate instead of
//!   recursing over `Box` nodes, together with precomputed per-term facts
//!   (variable set, trig-blindness, affine view, constant enclosures);
//! * simplified symbolic partial derivatives, keyed on `(term, var)` in
//!   an identity-hash map — Newton compilation and the local search stop
//!   re-deriving the same gradients on every solve.
//!
//! Interning takes the single global mutex; the hot paths never do — a
//! constraint carries its `Arc<TermTape>`, fetched once at intern time.
//!
//! The id maps use a no-op hasher: ids are dense and already well mixed
//! by a splitmix64 finalizer, so re-hashing them would be pure waste.

use crate::expr::{Expr, VarId};
use absolver_linear::{CmpOp, LinExpr};
use absolver_num::{Interval, Rational};
use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Dense identifier of an interned term. Two terms are structurally equal
/// iff their ids are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw 32-bit id (for fingerprint mixing).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Dense identifier of an interned constraint `term ⋈ rhs`. Two
/// constraints are structurally equal iff their ids are equal; unlike a
/// bare [`TermId`] the id distinguishes `x² ≤ 4` from `x² = 4`, which is
/// what makes it the sound contraction-cache key component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstraintId(u32);

impl ConstraintId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw 32-bit id (for fingerprint mixing).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A flat arena node: one [`Expr`] constructor with interned children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    Const(Rational),
    Var(VarId),
    Neg(TermId),
    Add(TermId, TermId),
    Sub(TermId, TermId),
    Mul(TermId, TermId),
    Div(TermId, TermId),
    Pow(TermId, i32),
    Sin(TermId),
    Cos(TermId),
    Exp(TermId),
    Ln(TermId),
    Sqrt(TermId),
    Abs(TermId),
}

/// One postorder tape instruction. Children of a binary operator are the
/// two preceding subtrees (`right = idx − 1`, `left = idx − 1 −
/// size[right]`), exactly the addressing the HC4 scratch always used —
/// the tape makes that flat form persistent and shared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapeOp {
    /// Constant; payload indexes the tape's constant tables.
    Const(u32),
    /// Variable reference.
    Var(u32),
    /// Unary negation.
    Neg,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Integer power.
    Pow(i32),
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
}

/// The flat, immutable evaluation form of one interned term: postorder
/// ops plus everything the solver pipeline repeatedly asked the old tree
/// for (subtree sizes, variable set, constant enclosures, affine view).
/// Built once per term and shared via `Arc` by every constraint over it.
#[derive(Debug)]
pub struct TermTape {
    /// Postorder instructions; the last one is the root.
    pub ops: Vec<TapeOp>,
    /// Subtree size (node count) per instruction, for child addressing.
    pub size: Vec<u32>,
    /// Exact rational constants, indexed by [`TapeOp::Const`].
    pub consts: Vec<Rational>,
    /// `f64` renderings of [`TermTape::consts`].
    pub const_f64: Vec<f64>,
    /// Sound interval enclosures of [`TermTape::consts`] (a point when
    /// exactly representable, one ulp of widening otherwise).
    pub const_iv: Vec<Interval>,
    /// Sorted, deduplicated variables the term mentions.
    pub vars: Vec<VarId>,
    /// Largest variable id mentioned, if any.
    pub max_var: Option<VarId>,
    /// Whether the term contains a trigonometric subterm (HC4's backward
    /// pass cannot invert those, so the cascade schedules BC3).
    pub has_trig: bool,
    /// The affine view `Σ aᵢ·xᵢ + c`, when the term is linear.
    pub affine: Option<(LinExpr, Rational)>,
}

thread_local! {
    static F64_STACK: Cell<Vec<f64>> = const { Cell::new(Vec::new()) };
    static IV_STACK: Cell<Vec<Interval>> = const { Cell::new(Vec::new()) };
    /// Terms this thread interned that were new to the arena.
    static LOCAL_INTERNED: Cell<u64> = const { Cell::new(0) };
    /// Intern requests this thread resolved to an existing id.
    static LOCAL_DEDUP: Cell<u64> = const { Cell::new(0) };
}

impl TermTape {
    /// Number of tape instructions (= tree nodes of the expanded term).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty (never true for an interned term).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the term is affine (see [`TermTape::affine`]).
    pub fn is_linear(&self) -> bool {
        self.affine.is_some()
    }

    /// Evaluates in `f64` arithmetic by one linear pass over the tape;
    /// IEEE semantics throughout, out-of-range variables read as NaN.
    /// Matches `Expr::eval_f64` on the rebuilt tree exactly.
    pub fn eval_f64(&self, values: &[f64]) -> f64 {
        let mut stack = F64_STACK.take();
        stack.clear();
        for op in &self.ops {
            let v = match *op {
                TapeOp::Const(i) => self.const_f64[i as usize],
                TapeOp::Var(v) => values.get(v as usize).copied().unwrap_or(f64::NAN),
                TapeOp::Neg => -pop(&mut stack),
                TapeOp::Add => {
                    let b = pop(&mut stack);
                    pop(&mut stack) + b
                }
                TapeOp::Sub => {
                    let b = pop(&mut stack);
                    pop(&mut stack) - b
                }
                TapeOp::Mul => {
                    let b = pop(&mut stack);
                    pop(&mut stack) * b
                }
                TapeOp::Div => {
                    let b = pop(&mut stack);
                    pop(&mut stack) / b
                }
                TapeOp::Pow(n) => pop(&mut stack).powi(n),
                TapeOp::Sin => pop(&mut stack).sin(),
                TapeOp::Cos => pop(&mut stack).cos(),
                TapeOp::Exp => pop(&mut stack).exp(),
                TapeOp::Ln => pop(&mut stack).ln(),
                TapeOp::Sqrt => pop(&mut stack).sqrt(),
                TapeOp::Abs => pop(&mut stack).abs(),
            };
            stack.push(v);
        }
        let out = pop(&mut stack);
        F64_STACK.set(stack);
        out
    }

    /// Sound interval evaluation by one linear pass over the tape.
    /// Matches `Expr::eval_interval` on the rebuilt tree exactly
    /// (including the constant-enclosure widening rule).
    pub fn eval_interval(&self, boxes: &[Interval]) -> Interval {
        let mut stack = IV_STACK.take();
        stack.clear();
        for op in &self.ops {
            let iv = self.step_interval(*op, boxes, &mut stack);
            stack.push(iv);
        }
        let out = stack.pop().expect("tape is nonempty");
        IV_STACK.set(stack);
        out
    }

    /// One interval-interpretation step: consumes the operand(s) of `op`
    /// from `stack` and returns the result. Shared between
    /// [`TermTape::eval_interval`] and the HC4 forward pass.
    #[inline]
    pub fn step_interval(
        &self,
        op: TapeOp,
        boxes: &[Interval],
        stack: &mut Vec<Interval>,
    ) -> Interval {
        match op {
            TapeOp::Const(i) => self.const_iv[i as usize],
            TapeOp::Var(v) => boxes.get(v as usize).copied().unwrap_or(Interval::ENTIRE),
            TapeOp::Neg => pop(stack).neg(),
            TapeOp::Add => {
                let b = pop(stack);
                pop(stack).add(b)
            }
            TapeOp::Sub => {
                let b = pop(stack);
                pop(stack).sub(b)
            }
            TapeOp::Mul => {
                let b = pop(stack);
                pop(stack).mul(b)
            }
            TapeOp::Div => {
                let b = pop(stack);
                pop(stack).div(b)
            }
            TapeOp::Pow(n) => pop(stack).powi(n),
            TapeOp::Sin => pop(stack).sin(),
            TapeOp::Cos => pop(stack).cos(),
            TapeOp::Exp => pop(stack).exp(),
            TapeOp::Ln => pop(stack).ln(),
            TapeOp::Sqrt => pop(stack).sqrt(),
            TapeOp::Abs => pop(stack).abs(),
        }
    }
}

#[inline]
fn pop<T: Copy>(stack: &mut Vec<T>) -> T {
    stack.pop().expect("tape operand stack underflow")
}

/// splitmix64 finalizer — the same mixer the contraction cache uses.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// No-op re-hash for maps whose keys are already splitmix-mixed ids.
#[derive(Debug, Default, Clone)]
struct IdentityState;

struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

impl BuildHasher for IdentityState {
    type Hasher = IdentityHasher;

    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

type IdMap<V> = HashMap<u64, V, IdentityState>;

/// Cumulative arena-wide counters (process lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Unique terms stored (== intern requests that created a node).
    pub terms: u64,
    /// Unique constraints stored.
    pub constraints: u64,
    /// Intern requests answered by an existing id.
    pub dedup_hits: u64,
}

/// The global interning table. Append-only: terms are tiny (one enum
/// variant + ids) and workloads intern a few thousand distinct ones, so
/// the arena stays far below every other cache in the process.
#[derive(Default)]
struct Arena {
    nodes: Vec<Node>,
    index: HashMap<Node, TermId>,
    /// Lazily built tapes, one slot per term.
    tapes: Vec<Option<Arc<TermTape>>>,
    /// Simplified-derivative memo keyed on mixed `(term, var)`.
    derivs: IdMap<TermId>,
    /// Constraint table: `(term, op, rhs)` → dense id.
    constraints: HashMap<(TermId, CmpOp, Rational), ConstraintId>,
    dedup_hits: u64,
}

static ARENA: OnceLock<Mutex<Arena>> = OnceLock::new();

fn arena() -> &'static Mutex<Arena> {
    ARENA.get_or_init(Mutex::default)
}

fn lock() -> std::sync::MutexGuard<'static, Arena> {
    arena().lock().expect("term arena lock")
}

impl Arena {
    fn intern_node(&mut self, node: Node) -> TermId {
        if let Some(&id) = self.index.get(&node) {
            self.dedup_hits += 1;
            LOCAL_DEDUP.with(|c| c.set(c.get() + 1));
            return id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("term arena overflow"));
        self.nodes.push(node.clone());
        self.tapes.push(None);
        self.index.insert(node, id);
        LOCAL_INTERNED.with(|c| c.set(c.get() + 1));
        id
    }

    fn intern_expr(&mut self, e: &Expr) -> TermId {
        let node = match e {
            Expr::Const(c) => Node::Const(c.clone()),
            Expr::Var(v) => Node::Var(*v),
            Expr::Neg(a) => Node::Neg(self.intern_expr(a)),
            Expr::Add(a, b) => Node::Add(self.intern_expr(a), self.intern_expr(b)),
            Expr::Sub(a, b) => Node::Sub(self.intern_expr(a), self.intern_expr(b)),
            Expr::Mul(a, b) => Node::Mul(self.intern_expr(a), self.intern_expr(b)),
            Expr::Div(a, b) => Node::Div(self.intern_expr(a), self.intern_expr(b)),
            Expr::Pow(a, n) => Node::Pow(self.intern_expr(a), *n),
            Expr::Sin(a) => Node::Sin(self.intern_expr(a)),
            Expr::Cos(a) => Node::Cos(self.intern_expr(a)),
            Expr::Exp(a) => Node::Exp(self.intern_expr(a)),
            Expr::Ln(a) => Node::Ln(self.intern_expr(a)),
            Expr::Sqrt(a) => Node::Sqrt(self.intern_expr(a)),
            Expr::Abs(a) => Node::Abs(self.intern_expr(a)),
        };
        self.intern_node(node)
    }

    fn rebuild(&self, id: TermId) -> Expr {
        match &self.nodes[id.index()] {
            Node::Const(c) => Expr::Const(c.clone()),
            Node::Var(v) => Expr::Var(*v),
            Node::Neg(a) => Expr::Neg(Box::new(self.rebuild(*a))),
            Node::Add(a, b) => Expr::Add(Box::new(self.rebuild(*a)), Box::new(self.rebuild(*b))),
            Node::Sub(a, b) => Expr::Sub(Box::new(self.rebuild(*a)), Box::new(self.rebuild(*b))),
            Node::Mul(a, b) => Expr::Mul(Box::new(self.rebuild(*a)), Box::new(self.rebuild(*b))),
            Node::Div(a, b) => Expr::Div(Box::new(self.rebuild(*a)), Box::new(self.rebuild(*b))),
            Node::Pow(a, n) => Expr::Pow(Box::new(self.rebuild(*a)), *n),
            Node::Sin(a) => Expr::Sin(Box::new(self.rebuild(*a))),
            Node::Cos(a) => Expr::Cos(Box::new(self.rebuild(*a))),
            Node::Exp(a) => Expr::Exp(Box::new(self.rebuild(*a))),
            Node::Ln(a) => Expr::Ln(Box::new(self.rebuild(*a))),
            Node::Sqrt(a) => Expr::Sqrt(Box::new(self.rebuild(*a))),
            Node::Abs(a) => Expr::Abs(Box::new(self.rebuild(*a))),
        }
    }

    /// Emits the postorder tape of `id`, returning the subtree size.
    /// Sharing in the arena DAG is expanded back to tree form so the tape
    /// matches the original expression node-for-node.
    fn emit(
        &self,
        id: TermId,
        ops: &mut Vec<TapeOp>,
        size: &mut Vec<u32>,
        consts: &mut Vec<Rational>,
    ) -> u32 {
        let n = match self.nodes[id.index()].clone() {
            Node::Const(c) => {
                let slot = u32::try_from(consts.len()).expect("constant table overflow");
                consts.push(c);
                ops.push(TapeOp::Const(slot));
                1
            }
            Node::Var(v) => {
                ops.push(TapeOp::Var(u32::try_from(v).expect("variable id fits u32")));
                1
            }
            Node::Neg(a) => self.emit_unary(a, TapeOp::Neg, ops, size, consts),
            Node::Pow(a, p) => self.emit_unary(a, TapeOp::Pow(p), ops, size, consts),
            Node::Sin(a) => self.emit_unary(a, TapeOp::Sin, ops, size, consts),
            Node::Cos(a) => self.emit_unary(a, TapeOp::Cos, ops, size, consts),
            Node::Exp(a) => self.emit_unary(a, TapeOp::Exp, ops, size, consts),
            Node::Ln(a) => self.emit_unary(a, TapeOp::Ln, ops, size, consts),
            Node::Sqrt(a) => self.emit_unary(a, TapeOp::Sqrt, ops, size, consts),
            Node::Abs(a) => self.emit_unary(a, TapeOp::Abs, ops, size, consts),
            Node::Add(a, b) => self.emit_binary(a, b, TapeOp::Add, ops, size, consts),
            Node::Sub(a, b) => self.emit_binary(a, b, TapeOp::Sub, ops, size, consts),
            Node::Mul(a, b) => self.emit_binary(a, b, TapeOp::Mul, ops, size, consts),
            Node::Div(a, b) => self.emit_binary(a, b, TapeOp::Div, ops, size, consts),
        };
        size.push(n);
        n
    }

    fn emit_unary(
        &self,
        a: TermId,
        op: TapeOp,
        ops: &mut Vec<TapeOp>,
        size: &mut Vec<u32>,
        consts: &mut Vec<Rational>,
    ) -> u32 {
        let n = self.emit(a, ops, size, consts);
        ops.push(op);
        n + 1
    }

    fn emit_binary(
        &self,
        a: TermId,
        b: TermId,
        op: TapeOp,
        ops: &mut Vec<TapeOp>,
        size: &mut Vec<u32>,
        consts: &mut Vec<Rational>,
    ) -> u32 {
        let n = self.emit(a, ops, size, consts) + self.emit(b, ops, size, consts);
        ops.push(op);
        n + 1
    }

    fn build_tape(&self, id: TermId) -> TermTape {
        let mut ops = Vec::new();
        let mut size = Vec::new();
        let mut consts = Vec::new();
        self.emit(id, &mut ops, &mut size, &mut consts);
        let const_f64: Vec<f64> = consts.iter().map(Rational::to_f64).collect();
        let const_iv: Vec<Interval> = consts
            .iter()
            .zip(&const_f64)
            .map(|(c, &v)| {
                // Exactly representable constants stay points; one ulp of
                // widening covers rational→double rounding otherwise.
                if Rational::from_f64(v).as_ref() == Some(c) {
                    Interval::point(v)
                } else {
                    Interval::checked(v.next_down(), v.next_up())
                }
            })
            .collect();
        let mut vars: Vec<VarId> = ops
            .iter()
            .filter_map(|op| match op {
                TapeOp::Var(v) => Some(*v as VarId),
                _ => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let max_var = vars.last().copied();
        let has_trig = ops.iter().any(|op| matches!(op, TapeOp::Sin | TapeOp::Cos));
        let affine = self.rebuild(id).to_affine();
        TermTape {
            ops,
            size,
            consts,
            const_f64,
            const_iv,
            vars,
            max_var,
            has_trig,
            affine,
        }
    }

    fn tape(&mut self, id: TermId) -> Arc<TermTape> {
        if let Some(t) = &self.tapes[id.index()] {
            return Arc::clone(t);
        }
        let tape = Arc::new(self.build_tape(id));
        self.tapes[id.index()] = Some(Arc::clone(&tape));
        tape
    }

    fn derivative(&mut self, id: TermId, v: VarId) -> TermId {
        let key = mix(((id.raw() as u64) << 32) | (v as u64 & 0xffff_ffff));
        if let Some(&d) = self.derivs.get(&key) {
            return d;
        }
        // Differentiate the rebuilt tree with the legacy symbolic rules —
        // byte-for-byte the derivative every pre-arena caller computed, so
        // the differential suites see identical enclosures.
        let d = self.intern_expr(&self.rebuild(id).derivative(v).simplify());
        self.derivs.insert(key, d);
        d
    }
}

/// Interns an expression, returning its dense id.
pub fn intern(e: &Expr) -> TermId {
    lock().intern_expr(e)
}

/// Interns an expression and returns its id together with its shared
/// evaluation tape (one lock acquisition for both).
pub fn intern_with_tape(e: &Expr) -> (TermId, Arc<TermTape>) {
    let mut a = lock();
    let id = a.intern_expr(e);
    let tape = a.tape(id);
    (id, tape)
}

/// Rebuilds the boxed expression tree of an interned term (cold paths:
/// pretty-printing, problem rendering, differential tests).
pub fn rebuild(id: TermId) -> Expr {
    lock().rebuild(id)
}

/// The shared evaluation tape of an interned term.
pub fn tape(id: TermId) -> Arc<TermTape> {
    lock().tape(id)
}

/// The simplified partial derivative `∂id/∂v` as an interned term with
/// its tape — memoised arena-wide, so gradients are derived once per
/// `(term, var)` for the whole process.
pub fn derivative_tape(id: TermId, v: VarId) -> (TermId, Arc<TermTape>) {
    let mut a = lock();
    let d = a.derivative(id, v);
    let tape = a.tape(d);
    (d, tape)
}

/// Interns a constraint `term ⋈ rhs`, returning its stable dense id.
pub fn intern_constraint(term: TermId, op: CmpOp, rhs: &Rational) -> ConstraintId {
    let mut a = lock();
    if let Some(&id) = a.constraints.get(&(term, op, rhs.clone())) {
        return id;
    }
    let id = ConstraintId(u32::try_from(a.constraints.len()).expect("constraint table overflow"));
    a.constraints.insert((term, op, rhs.clone()), id);
    id
}

/// Structural-sharing census over a set of root terms: returns
/// `(tree_nodes, distinct_nodes)` — the total node count of the
/// expression *trees* (every duplicate counted each time it appears)
/// versus the distinct arena nodes actually reachable. The gap between
/// the two is exactly the duplication hash-consing collapsed; reports
/// quote `1 − distinct/tree` as the dedup rate of a workload.
pub fn sharing(roots: &[TermId]) -> (u64, u64) {
    fn walk(a: &Arena, id: TermId, seen: &mut HashMap<u32, u64>) -> u64 {
        if let Some(&n) = seen.get(&id.raw()) {
            return n;
        }
        let n = 1 + match &a.nodes[id.index()] {
            Node::Const(_) | Node::Var(_) => 0,
            Node::Neg(x)
            | Node::Pow(x, _)
            | Node::Sin(x)
            | Node::Cos(x)
            | Node::Exp(x)
            | Node::Ln(x)
            | Node::Sqrt(x)
            | Node::Abs(x) => walk(a, *x, seen),
            Node::Add(x, y) | Node::Sub(x, y) | Node::Mul(x, y) | Node::Div(x, y) => {
                walk(a, *x, seen) + walk(a, *y, seen)
            }
        };
        seen.insert(id.raw(), n);
        n
    }
    let a = lock();
    let mut seen: HashMap<u32, u64> = HashMap::new();
    let tree: u64 = roots.iter().map(|&r| walk(&a, r, &mut seen)).sum();
    (tree, seen.len() as u64)
}

/// Cumulative arena-wide counters.
pub fn stats() -> ArenaStats {
    let a = lock();
    ArenaStats {
        terms: a.nodes.len() as u64,
        constraints: a.constraints.len() as u64,
        dedup_hits: a.dedup_hits,
    }
}

/// Cumulative `(terms_interned, dedup_hits)` of the *calling thread* —
/// callers diff two snapshots to attribute interning work to a solve
/// without double counting across parallel shards.
pub fn local_counters() -> (u64, u64) {
    (LOCAL_INTERNED.with(Cell::get), LOCAL_DEDUP.with(Cell::get))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    #[test]
    fn structural_equality_is_id_equality() {
        let a = intern(&(x() * y() + Expr::int(3)));
        let b = intern(&(x() * y() + Expr::int(3)));
        let c = intern(&(y() * x() + Expr::int(3)));
        assert_eq!(a, b, "structurally equal terms share an id");
        assert_ne!(a, c, "operand order is part of the structure");
    }

    #[test]
    fn rebuild_round_trips() {
        let e = (x().sin() + Expr::constant("3.5".parse().unwrap()) / (Expr::int(4) - y())).pow(2);
        let id = intern(&e);
        assert_eq!(rebuild(id), e);
        assert_eq!(intern(&rebuild(id)), id);
    }

    #[test]
    fn tape_matches_tree_semantics() {
        let e = (x() * y() + Expr::int(1)) / (x() - y());
        let t = tape(intern(&e));
        let point = [1.5, 3.5];
        assert_eq!(t.eval_f64(&point), e.eval_f64(&point));
        let bx = [Interval::new(1.0, 2.0), Interval::new(3.0, 4.0)];
        assert_eq!(t.eval_interval(&bx), e.eval_interval(&bx));
        // Out-of-range variable: NaN / ENTIRE, as on the tree.
        assert!(t.eval_f64(&[1.0]).is_nan());
        assert_eq!(
            t.eval_interval(&[Interval::new(0.0, 1.0)]),
            e.eval_interval(&[Interval::new(0.0, 1.0)])
        );
    }

    #[test]
    fn tape_precomputed_facts() {
        let e = Expr::var(5).sin() + x();
        let t = tape(intern(&e));
        assert_eq!(t.vars, vec![0, 5]);
        assert_eq!(t.max_var, Some(5));
        assert!(t.has_trig);
        assert!(!t.is_linear());
        let lin = tape(intern(&(Expr::int(2) * x() + Expr::int(1))));
        assert!(lin.is_linear());
        assert!(!lin.has_trig);
    }

    #[test]
    fn tape_size_addressing() {
        // (x + y) * 2: postorder [x, y, +, 2, *]; size of the right child
        // of the root (the constant) is 1, left child (x + y) is 3.
        let e = (x() + y()) * Expr::int(2);
        let t = tape(intern(&e));
        assert_eq!(t.len(), 5);
        let root = t.len() - 1;
        let right = root - 1;
        assert_eq!(t.size[right], 1);
        let left = right - t.size[right] as usize;
        assert_eq!(t.size[left], 3);
        assert_eq!(t.size[root], 5);
    }

    #[test]
    fn derivative_memo_agrees_with_legacy() {
        let e = x().sin() / (x() + Expr::int(2));
        let id = intern(&e);
        let (d1, dtape) = derivative_tape(id, 0);
        let (d2, _) = derivative_tape(id, 0);
        assert_eq!(d1, d2, "memo must return the same id");
        let legacy = e.derivative(0).simplify();
        assert_eq!(rebuild(d1), legacy);
        for &v in &[0.3, 1.0, 2.5] {
            assert_eq!(dtape.eval_f64(&[v]), legacy.eval_f64(&[v]));
        }
    }

    #[test]
    fn constraint_ids_distinguish_op_and_rhs() {
        let t = intern(&x().pow(2));
        let le4 = intern_constraint(t, CmpOp::Le, &Rational::from_int(4));
        let eq4 = intern_constraint(t, CmpOp::Eq, &Rational::from_int(4));
        let le9 = intern_constraint(t, CmpOp::Le, &Rational::from_int(9));
        assert_ne!(le4, eq4);
        assert_ne!(le4, le9);
        assert_eq!(le4, intern_constraint(t, CmpOp::Le, &Rational::from_int(4)));
    }

    #[test]
    fn counters_observe_sharing() {
        let (i0, h0) = local_counters();
        // A fresh, never-before-seen shape (unique constant) interns new
        // nodes; re-interning it is all dedup hits.
        let e = x() * Expr::constant("12345/67891".parse().unwrap()) + y().cos();
        intern(&e);
        let (i1, h1) = local_counters();
        assert!(i1 > i0, "fresh term must create nodes");
        intern(&e);
        let (i2, h2) = local_counters();
        assert_eq!(i2, i1, "re-intern creates nothing");
        assert!(h2 > h1.max(h0), "re-intern hits the table");
        let s = stats();
        assert!(s.terms > 0 && s.dedup_hits > 0);
    }
}
