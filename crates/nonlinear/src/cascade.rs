//! Composable contractor cascade: HC4 → BC3 → interval Newton,
//! scheduled cheapest-first, with worklist propagation and an optional
//! contraction cache.
//!
//! The cascade replaces the fixed `20 sweeps × all constraints` HC4 loop
//! of the original branch-and-prune with cooperating layers:
//!
//! 1. **HC4 worklist (AC-3 style)** — constraints are revised only when
//!    one of their variables changed. After a split the child box seeds
//!    the queue with just the constraints watching the split dimension
//!    (the parent was already at fixpoint), which removes the vast
//!    majority of no-op revise calls.
//! 2. **Entailment filtering** — a constraint whose forward enclosure
//!    already satisfies its comparison is *certainly true* on the whole
//!    box, and stays true on every sub-box; the search drops it from the
//!    [`ActiveSet`] for the whole subtree. Deep in the tree most
//!    inequalities are entailed and the per-box work collapses to the few
//!    constraints still in play.
//! 3. **BC3 bound shaving** — dichotomic probes discard boundary slices
//!    that interval evaluation proves infeasible. BC3 is *stall-gated*:
//!    it only runs when the HC4 fixpoint made no progress at all (e.g.
//!    multi-occurrence or periodic expressions HC4 is blind to), so its
//!    cost is paid exactly where the cheap stage fails.
//! 4. **Interval Newton** — quadratic-convergence narrowing of equality
//!    constraints near simple roots (see [`crate::newton`]); skipped
//!    entirely when the conjunction has no equalities.
//!
//! Any narrowing an expensive stage achieves is fed back to the HC4
//! worklist.

use crate::cache::{CachedContraction, ContractionCache, QUANTIZE_BITS};
use crate::constraint::NlConstraint;
use crate::hc4::{hc4_revise_scratch, Contraction, ReviseScratch};
use crate::newton::NewtonConstraint;
use absolver_linear::CmpOp;
use absolver_num::Interval;
use std::fmt;
use std::str::FromStr;

/// Which contractors the cascade runs, in fixed cheapest-first order.
/// HC4 is always on (it is the propagation backbone); BC3 and Newton are
/// optional refinement stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContractorConfig {
    /// BC3-style dichotomic bound shaving.
    pub bc3: bool,
    /// Univariate parametric interval Newton on equalities.
    pub newton: bool,
}

impl Default for ContractorConfig {
    fn default() -> Self {
        ContractorConfig {
            bc3: true,
            newton: true,
        }
    }
}

impl ContractorConfig {
    /// HC4 only — the pre-cascade behaviour, kept for ablation and
    /// differential testing.
    pub fn hc4_only() -> ContractorConfig {
        ContractorConfig {
            bc3: false,
            newton: false,
        }
    }
}

impl FromStr for ContractorConfig {
    type Err = String;

    /// Parses a comma-separated contractor list, e.g. `hc4,bc3,newton`.
    /// `hc4` must be present (it is not optional, listing it merely
    /// documents the cascade order).
    fn from_str(s: &str) -> Result<ContractorConfig, String> {
        let mut cfg = ContractorConfig {
            bc3: false,
            newton: false,
        };
        let mut saw_hc4 = false;
        for part in s.split(',') {
            match part.trim() {
                "hc4" => saw_hc4 = true,
                "bc3" => cfg.bc3 = true,
                "newton" => cfg.newton = true,
                "" => {}
                other => {
                    return Err(format!(
                        "unknown contractor '{other}' (know hc4, bc3, newton)"
                    ))
                }
            }
        }
        if !saw_hc4 {
            return Err("contractor list must include hc4".to_string());
        }
        Ok(cfg)
    }
}

impl fmt::Display for ContractorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hc4")?;
        if self.bc3 {
            write!(f, ",bc3")?;
        }
        if self.newton {
            write!(f, ",newton")?;
        }
        Ok(())
    }
}

/// The constraints that can still prune the current box.
///
/// A constraint proven *certainly true* over a box stays true on every
/// sub-box (domains only shrink down the search tree), so it is removed
/// here and every later revise, box check, and midpoint evaluation in the
/// subtree skips it. The set travels with each box down the search.
/// Conjunctions of more than 128 constraints disable the filter (every
/// constraint stays active) — correctness never depends on removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSet {
    mask: u128,
    unfiltered: bool,
}

impl ActiveSet {
    /// All of `n` constraints active.
    pub fn all(n: usize) -> ActiveSet {
        if n > 128 {
            ActiveSet {
                mask: !0,
                unfiltered: true,
            }
        } else {
            ActiveSet {
                mask: if n == 128 { !0 } else { (1u128 << n) - 1 },
                unfiltered: false,
            }
        }
    }

    /// Is constraint `i` still active?
    pub fn contains(&self, i: usize) -> bool {
        self.unfiltered || (i < 128 && (self.mask >> i) & 1 == 1)
    }

    /// Drops constraint `i` (no-op when filtering is disabled).
    pub fn remove(&mut self, i: usize) {
        if !self.unfiltered && i < 128 {
            self.mask &= !(1u128 << i);
        }
    }

    /// No constraints left — the box is certainly feasible.
    pub fn is_empty(&self) -> bool {
        !self.unfiltered && self.mask == 0
    }

    /// Whether entailment filtering is disabled (more than 128
    /// constraints): removals are no-ops and every constraint reads as
    /// active.
    pub fn is_unfiltered(&self) -> bool {
        self.unfiltered
    }
}

/// Per-contractor effort counters of one cascade lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// HC4 revise calls that narrowed or emptied a domain.
    pub hc4_contractions: u64,
    /// BC3 shaving passes that narrowed or emptied a domain.
    pub bc3_contractions: u64,
    /// Newton passes that narrowed or emptied a domain.
    pub newton_contractions: u64,
    /// Contraction-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Contraction-cache lookups that fell through to a revise.
    pub cache_misses: u64,
}

/// Maximum dichotomy probes per BC3 bound.
const BC3_PROBES: usize = 8;

/// Outer cascade cycles (HC4 fixpoint → BC3 → Newton) per contract call.
const MAX_CYCLES: usize = 3;

/// Entailment test: the forward enclosure `lhs` already satisfies
/// `⋈ rhs` for every point — mirrors the `CertainlyTrue` arms of
/// [`NlConstraint::check_interval`].
fn entailed_by(op: CmpOp, rhs: Interval, lhs: Interval) -> bool {
    if lhs.is_empty() {
        return false;
    }
    match op {
        CmpOp::Lt => lhs.hi() < rhs.lo(),
        CmpOp::Le => lhs.hi() <= rhs.lo(),
        CmpOp::Gt => lhs.lo() > rhs.hi(),
        CmpOp::Ge => lhs.lo() >= rhs.hi(),
        CmpOp::Eq => lhs.is_point() && rhs.is_point() && lhs == rhs,
    }
}

/// Refutation test: the forward enclosure `lhs` violates `⋈ rhs` at every
/// point — mirrors the `CertainlyFalse` arms of
/// [`NlConstraint::check_interval`]. HC4's backward pass works with closed
/// target intervals, so for *strict* comparisons it can reach a non-empty
/// fixpoint sitting exactly on the boundary (e.g. `x < 0` contracting
/// `[0, 5]` to the point `[0, 0]`); this classification catches that, so
/// the cascade's fixpoint invariant — every surviving active constraint is
/// genuinely `Unknown` — holds for strict operators too.
fn refuted_by(op: CmpOp, rhs: Interval, lhs: Interval) -> bool {
    if lhs.is_empty() {
        return true;
    }
    match op {
        CmpOp::Lt => lhs.lo() >= rhs.hi(),
        CmpOp::Le => lhs.lo() > rhs.hi(),
        CmpOp::Gt => lhs.hi() <= rhs.lo(),
        CmpOp::Ge => lhs.hi() < rhs.lo(),
        CmpOp::Eq => lhs.intersect(rhs).is_empty(),
    }
}

/// The cascade engine: one instance per branch-and-prune run (or per
/// worker thread), holding the per-constraint variable projections,
/// var→constraint watcher lists, compiled Newton forms, and the optional
/// contraction cache.
#[derive(Debug)]
pub struct Cascade<'a> {
    constraints: &'a [NlConstraint],
    /// Stable interned constraint ids — the cache key component that
    /// stays identical across solves (and requests), unlike the positional
    /// index `ci`, so a persistent cache keeps hitting on resubmission.
    cids: Vec<usize>,
    /// Sorted variable list of each constraint (the cache projection).
    vars: Vec<Vec<usize>>,
    /// For each variable, the constraints that mention it.
    watchers: Vec<Vec<usize>>,
    /// HC4 target interval of each constraint (precomputed — the rational
    /// RHS conversion is not free).
    targets: Vec<Interval>,
    /// RHS enclosure of each constraint, for entailment classification.
    rhs_ivs: Vec<Interval>,
    /// Constraints with trigonometric subterms — the ones HC4's backward
    /// pass cannot narrow through, so only BC3 can contract them.
    blind: Vec<bool>,
    has_blind: bool,
    newton: Vec<Option<NewtonConstraint>>,
    has_newton: bool,
    config: ContractorConfig,
    cache: Option<ContractionCache>,
    /// Effort counters, drained by the caller after the run.
    pub stats: CascadeStats,
    min_width: f64,
    // Reusable scratch to keep the hot path allocation-free.
    queue: Vec<usize>,
    in_queue: Vec<bool>,
    revise_scratch: ReviseScratch,
    qbuf: Vec<Interval>,
    sbuf: Vec<Interval>,
}

impl<'a> Cascade<'a> {
    /// Builds the engine for a constraint conjunction over `num_vars`
    /// variables.
    pub fn new(
        constraints: &'a [NlConstraint],
        num_vars: usize,
        config: ContractorConfig,
        use_cache: bool,
        min_width: f64,
    ) -> Cascade<'a> {
        Cascade::with_cache(
            constraints,
            num_vars,
            config,
            use_cache.then(ContractionCache::new),
            min_width,
        )
    }

    /// Like [`Cascade::new`], but seeded with an existing contraction
    /// cache — results keyed on stable constraint ids stay valid across
    /// solves, so a persistent session can carry its cache from one
    /// `check` to the next and keep hitting on resubmitted boxes.
    pub fn with_cache(
        constraints: &'a [NlConstraint],
        num_vars: usize,
        config: ContractorConfig,
        cache: Option<ContractionCache>,
        min_width: f64,
    ) -> Cascade<'a> {
        let cids: Vec<usize> = constraints.iter().map(|c| c.cid().index()).collect();
        let vars: Vec<Vec<usize>> = constraints.iter().map(|c| c.variables().to_vec()).collect();
        let mut watchers = vec![Vec::new(); num_vars];
        for (ci, cvars) in vars.iter().enumerate() {
            for &v in cvars {
                watchers[v].push(ci);
            }
        }
        let targets = constraints.iter().map(|c| c.target_interval()).collect();
        let rhs_ivs = constraints.iter().map(|c| c.rhs_interval()).collect();
        let blind: Vec<bool> = constraints.iter().map(|c| c.tape().has_trig).collect();
        let has_blind = blind.iter().any(|&b| b);
        let newton: Vec<Option<NewtonConstraint>> = if config.newton {
            constraints.iter().map(NewtonConstraint::build).collect()
        } else {
            vec![None; constraints.len()]
        };
        let has_newton = newton.iter().any(Option::is_some);
        Cascade {
            constraints,
            cids,
            vars,
            watchers,
            targets,
            rhs_ivs,
            blind,
            has_blind,
            newton,
            has_newton,
            config,
            cache,
            stats: CascadeStats::default(),
            min_width,
            queue: Vec::new(),
            in_queue: vec![false; constraints.len()],
            revise_scratch: ReviseScratch::default(),
            qbuf: Vec::new(),
            sbuf: Vec::new(),
        }
    }

    /// Contracts `boxes` in place. `dirty` seeds the worklist: `None`
    /// revises every active constraint (root box); `Some(v)` only the
    /// watchers of `v` (child box after a split on `v` — the parent was
    /// at fixpoint, so nothing else can fire). Constraints found entailed
    /// are removed from `active` for the caller's whole subtree.
    pub fn contract(
        &mut self,
        boxes: &mut [Interval],
        dirty: Option<usize>,
        active: &mut ActiveSet,
    ) -> Contraction {
        let mut any_change = false;
        match self.hc4_fixpoint(boxes, dirty, active) {
            Contraction::Empty => return Contraction::Empty,
            Contraction::Changed => any_change = true,
            Contraction::Unchanged => {}
        }
        // Escalate only where the cheap stage provably needs help: BC3
        // shaves the HC4-blind (trigonometric) constraints once the HC4
        // fixpoint stalls — running it on constraints HC4 *can* propagate
        // through costs far more per box than the narrowing is worth
        // (measured on the steering workload). Newton runs whenever
        // equality constraints exist.
        let use_bc3 = self.config.bc3 && self.has_blind && !any_change;
        let use_newton = self.config.newton && self.has_newton;
        if !use_bc3 && !use_newton {
            return outcome(any_change);
        }
        for _ in 0..MAX_CYCLES {
            let mut refined = false;
            if use_bc3 {
                match self.bc3_pass(boxes, active) {
                    Contraction::Empty => return Contraction::Empty,
                    Contraction::Changed => refined = true,
                    Contraction::Unchanged => {}
                }
            }
            if use_newton {
                match self.newton_pass(boxes, active) {
                    Contraction::Empty => return Contraction::Empty,
                    Contraction::Changed => refined = true,
                    Contraction::Unchanged => {}
                }
            }
            if !refined {
                break;
            }
            any_change = true;
            // Feed the refinement back through cheap propagation.
            if self.hc4_fixpoint(boxes, None, active) == Contraction::Empty {
                return Contraction::Empty;
            }
        }
        outcome(any_change)
    }

    /// AC-3-style worklist propagation of HC4-revise to a fixpoint.
    fn hc4_fixpoint(
        &mut self,
        boxes: &mut [Interval],
        dirty: Option<usize>,
        active: &mut ActiveSet,
    ) -> Contraction {
        debug_assert!(self.queue.is_empty());
        match dirty {
            None => {
                for ci in 0..self.constraints.len() {
                    if active.contains(ci) {
                        self.queue.push(ci);
                        self.in_queue[ci] = true;
                    }
                }
            }
            Some(v) => {
                if let Some(ws) = self.watchers.get(v) {
                    for &ci in ws {
                        if active.contains(ci) && !self.in_queue[ci] {
                            self.queue.push(ci);
                            self.in_queue[ci] = true;
                        }
                    }
                }
            }
        }
        let mut any_change = false;
        // Monotone narrowing over floats terminates, but cap the pops
        // against pathological ulp-at-a-time drift.
        let budget = 64 * self.constraints.len().max(1) + 256;
        let mut pops = 0usize;
        let mut head = 0usize;
        while head < self.queue.len() {
            let ci = self.queue[head];
            head += 1;
            self.in_queue[ci] = false;
            pops += 1;
            let (contraction, entailed) = self.revise(ci, boxes);
            if entailed {
                active.remove(ci);
            }
            match contraction {
                Contraction::Empty => {
                    self.queue.clear();
                    self.in_queue.iter_mut().for_each(|f| *f = false);
                    return Contraction::Empty;
                }
                Contraction::Changed => {
                    any_change = true;
                    // Re-enqueue the active watchers of every var this
                    // constraint touches (we don't track which one moved;
                    // its own watcher set is the superset that matters).
                    for vi in 0..self.vars[ci].len() {
                        let v = self.vars[ci][vi];
                        for wi in 0..self.watchers[v].len() {
                            let w = self.watchers[v][wi];
                            if !self.in_queue[w] && active.contains(w) {
                                self.queue.push(w);
                                self.in_queue[w] = true;
                            }
                        }
                    }
                }
                Contraction::Unchanged => {}
            }
            if pops >= budget {
                break;
            }
            // Compact the drained prefix occasionally.
            if head > 4096 {
                self.queue.drain(..head);
                head = 0;
            }
        }
        // Unprocessed entries (budget break) must not poison later calls.
        for i in head..self.queue.len() {
            let ci = self.queue[i];
            self.in_queue[ci] = false;
        }
        self.queue.clear();
        outcome(any_change)
    }

    /// One (possibly cached) HC4 revise of constraint `ci`. Returns the
    /// contraction plus whether the constraint is entailed (certainly
    /// true) over the box.
    fn revise(&mut self, ci: usize, boxes: &mut [Interval]) -> (Contraction, bool) {
        let constraints = self.constraints;
        if self.cache.is_none() {
            let (out, lhs) = hc4_revise_scratch(
                &constraints[ci],
                self.targets[ci],
                boxes,
                &mut self.revise_scratch,
            );
            if out != Contraction::Unchanged {
                self.stats.hc4_contractions += 1;
            }
            if out != Contraction::Empty && refuted_by(constraints[ci].op, self.rhs_ivs[ci], lhs) {
                return (Contraction::Empty, false);
            }
            let entailed =
                out != Contraction::Empty && entailed_by(constraints[ci].op, self.rhs_ivs[ci], lhs);
            return (out, entailed);
        }
        let cvars = &self.vars[ci];
        let cid = self.cids[ci];
        self.qbuf.clear();
        for &v in cvars {
            self.qbuf.push(boxes[v].quantize_outward(QUANTIZE_BITS));
        }
        let hash = ContractionCache::hash(cid, &self.qbuf);
        let cache = self.cache.as_mut().expect("cache enabled");
        if let Some(cached) = cache.find(hash, cid, &self.qbuf) {
            self.stats.cache_hits += 1;
            return match cached {
                CachedContraction::Empty => (Contraction::Empty, false),
                CachedContraction::Narrowed { ivs, entailed } => {
                    let entailed = *entailed;
                    // Apply: intersect the live box with the
                    // (superset-derived) result.
                    let mut changed = false;
                    for (&v, &iv) in cvars.iter().zip(ivs.iter()) {
                        let next = boxes[v].intersect(iv);
                        if next.is_empty() {
                            return (Contraction::Empty, false);
                        }
                        if next != boxes[v] {
                            boxes[v] = next;
                            changed = true;
                        }
                    }
                    (outcome(changed), entailed)
                }
            };
        }
        self.stats.cache_misses += 1;
        // Contract the *quantized* superset box so the result is valid
        // for every live box sharing this key.
        self.sbuf.clear();
        self.sbuf.extend_from_slice(boxes);
        for (&v, &q) in cvars.iter().zip(self.qbuf.iter()) {
            self.sbuf[v] = q;
        }
        let (out, lhs) = hc4_revise_scratch(
            &constraints[ci],
            self.targets[ci],
            &mut self.sbuf,
            &mut self.revise_scratch,
        );
        if out != Contraction::Unchanged {
            self.stats.hc4_contractions += 1;
        }
        if out == Contraction::Empty || refuted_by(constraints[ci].op, self.rhs_ivs[ci], lhs) {
            cache.put(hash, cid, &self.qbuf, CachedContraction::Empty);
            return (Contraction::Empty, false);
        }
        let entailed = entailed_by(constraints[ci].op, self.rhs_ivs[ci], lhs);
        let ivs: Vec<Interval> = cvars.iter().map(|&v| self.sbuf[v]).collect();
        let mut changed = false;
        for (&v, &iv) in cvars.iter().zip(ivs.iter()) {
            let next = boxes[v].intersect(iv);
            if next.is_empty() {
                cache.put(
                    hash,
                    cid,
                    &self.qbuf,
                    CachedContraction::Narrowed { ivs, entailed },
                );
                return (Contraction::Empty, false);
            }
            if next != boxes[v] {
                boxes[v] = next;
                changed = true;
            }
        }
        cache.put(
            hash,
            cid,
            &self.qbuf,
            CachedContraction::Narrowed { ivs, entailed },
        );
        (outcome(changed), entailed)
    }

    /// One BC3 sweep: dichotomic bound shaving of every finite-width
    /// (active HC4-blind constraint, variable) pair.
    fn bc3_pass(&mut self, boxes: &mut [Interval], active: &ActiveSet) -> Contraction {
        let mut any_change = false;
        for ci in 0..self.constraints.len() {
            if !active.contains(ci) || !self.blind[ci] {
                continue;
            }
            for vi in 0..self.vars[ci].len() {
                let v = self.vars[ci][vi];
                match self.shave(ci, v, boxes) {
                    Contraction::Empty => return Contraction::Empty,
                    Contraction::Changed => any_change = true,
                    Contraction::Unchanged => {}
                }
            }
        }
        outcome(any_change)
    }

    /// Shaves provably-infeasible slices off both ends of `boxes[v]`
    /// w.r.t. constraint `ci`. Sound: a slice is removed only when
    /// [`NlConstraint::check_box`] proves it contains no solution.
    fn shave(&mut self, ci: usize, v: usize, boxes: &mut [Interval]) -> Contraction {
        let domain = boxes[v];
        let w = domain.width();
        if domain.is_empty() || !w.is_finite() || w <= self.min_width {
            return Contraction::Unchanged;
        }
        let c = &self.constraints[ci];
        let (mut lo, mut hi) = (domain.lo(), domain.hi());
        // Lower bound: find the largest prefix proven infeasible.
        let mut frac = 0.5;
        for _ in 0..BC3_PROBES {
            let m = lo + (hi - lo) * frac;
            if !m.is_finite() || m <= lo || m >= hi {
                break;
            }
            boxes[v] = Interval::new(lo, m);
            let verdict = c.check_box(boxes);
            if verdict == crate::constraint::IntervalVerdict::CertainlyFalse {
                lo = m;
                frac = 0.5;
            } else {
                frac /= 2.0;
            }
        }
        // Upper bound, mirrored.
        let mut frac = 0.5;
        for _ in 0..BC3_PROBES {
            let m = hi - (hi - lo) * frac;
            if !m.is_finite() || m <= lo || m >= hi {
                break;
            }
            boxes[v] = Interval::new(m, hi);
            let verdict = c.check_box(boxes);
            if verdict == crate::constraint::IntervalVerdict::CertainlyFalse {
                hi = m;
                frac = 0.5;
            } else {
                frac /= 2.0;
            }
        }
        boxes[v] = Interval::checked(lo, hi);
        if boxes[v].is_empty() {
            self.stats.bc3_contractions += 1;
            return Contraction::Empty;
        }
        if lo > domain.lo() || hi < domain.hi() {
            self.stats.bc3_contractions += 1;
            Contraction::Changed
        } else {
            Contraction::Unchanged
        }
    }

    /// One Newton sweep over the compiled (still active) equality
    /// constraints.
    fn newton_pass(&mut self, boxes: &mut [Interval], active: &ActiveSet) -> Contraction {
        let mut any_change = false;
        for (ci, nc) in self.newton.iter().enumerate() {
            let Some(nc) = nc else { continue };
            if !active.contains(ci) {
                continue;
            }
            match nc.revise(boxes) {
                Contraction::Empty => {
                    self.stats.newton_contractions += 1;
                    return Contraction::Empty;
                }
                Contraction::Changed => {
                    self.stats.newton_contractions += 1;
                    any_change = true;
                }
                Contraction::Unchanged => {}
            }
        }
        outcome(any_change)
    }

    /// Cache-effectiveness counters of the underlying store (0/0 when the
    /// cache is disabled). Cumulative over the cache's lifetime, which may
    /// span several cascades when the cache is persistent.
    pub fn cache_counters(&self) -> (u64, u64) {
        match &self.cache {
            Some(c) => (c.hits(), c.misses()),
            None => (0, 0),
        }
    }

    /// Hands the contraction cache back to the caller (for persistence
    /// across solves). The engine keeps working, uncached, afterwards.
    pub fn take_cache(&mut self) -> Option<ContractionCache> {
        self.cache.take()
    }
}

fn outcome(changed: bool) -> Contraction {
    if changed {
        Contraction::Changed
    } else {
        Contraction::Unchanged
    }
}

/// Applies the full cascade once to a standalone box — the
/// single-constraint-set entry point used by the soundness test battery.
pub fn cascade_contract(
    constraints: &[NlConstraint],
    boxes: &mut [Interval],
    config: ContractorConfig,
) -> Contraction {
    let num_vars = boxes.len();
    let mut engine = Cascade::new(constraints, num_vars, config, false, 1e-9);
    let mut active = ActiveSet::all(constraints.len());
    engine.contract(boxes, None, &mut active)
}

/// BC3-revise of a single (constraint, variable) pair — exposed for the
/// property suite.
pub fn bc3_revise(constraint: &NlConstraint, v: usize, boxes: &mut [Interval]) -> Contraction {
    let constraints = std::slice::from_ref(constraint);
    let mut engine = Cascade::new(
        constraints,
        boxes.len(),
        ContractorConfig::default(),
        false,
        1e-9,
    );
    engine.shave(0, v, boxes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::hc4::hc4_revise;
    use absolver_num::Rational;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn config_round_trips() {
        for s in ["hc4", "hc4,bc3", "hc4,newton", "hc4,bc3,newton"] {
            let cfg: ContractorConfig = s.parse().unwrap();
            assert_eq!(cfg.to_string(), s);
        }
        assert!("bc3".parse::<ContractorConfig>().is_err());
        assert!("hc4,fft".parse::<ContractorConfig>().is_err());
        assert_eq!(ContractorConfig::default().to_string(), "hc4,bc3,newton");
    }

    #[test]
    fn active_set_basics() {
        let mut a = ActiveSet::all(3);
        assert!(a.contains(0) && a.contains(2) && !a.contains(3));
        a.remove(1);
        assert!(!a.contains(1) && a.contains(0));
        assert!(!a.is_empty());
        a.remove(0);
        a.remove(2);
        assert!(a.is_empty());
        // Past the filtering cap everything stays active.
        let mut big = ActiveSet::all(200);
        assert!(big.contains(0) && big.contains(199));
        big.remove(0);
        assert!(big.contains(0), "no filtering above 128 constraints");
        assert!(!big.is_empty());
    }

    #[test]
    fn cascade_matches_propagate_on_simple_contraction() {
        // x² ≤ 4 over [-10, 10] → [-2, 2], with or without extras.
        for cfg in [ContractorConfig::hc4_only(), ContractorConfig::default()] {
            let c = NlConstraint::new(x().pow(2), CmpOp::Le, q(4));
            let mut bx = vec![Interval::new(-10.0, 10.0)];
            let out = cascade_contract(&[c], &mut bx, cfg);
            assert_eq!(out, Contraction::Changed);
            assert!(bx[0].lo() >= -2.0 - 1e-9 && bx[0].hi() <= 2.0 + 1e-9);
            assert!(bx[0].contains(2.0) && bx[0].contains(-2.0));
        }
    }

    #[test]
    fn strict_boundary_fixpoint_is_refuted() {
        // x < 0 over [0, 5]: the closed-interval backward pass contracts
        // to the point box [0, 0] instead of emptying it — the verdict
        // classification must still refute, or the search would keep
        // splitting a certainly-false box forever (and, worse, accept its
        // midpoint when every other constraint is entailed).
        let c = NlConstraint::new(x(), CmpOp::Lt, q(0));
        let mut bx = vec![Interval::new(0.0, 5.0)];
        assert_eq!(
            cascade_contract(&[c], &mut bx, ContractorConfig::default()),
            Contraction::Empty
        );
        // Same at the other end: x > 5 over [0, 5].
        let c = NlConstraint::new(x(), CmpOp::Gt, q(5));
        let mut bx = vec![Interval::new(0.0, 5.0)];
        assert_eq!(
            cascade_contract(&[c], &mut bx, ContractorConfig::default()),
            Contraction::Empty
        );
    }

    #[test]
    fn bc3_shaves_where_hc4_is_blind() {
        // sin(x) ≥ 1/2 over [0, π]: HC4 has no backward pass through
        // periodic functions, so a single revise learns nothing. BC3's
        // dichotomic probes prove the boundary slices infeasible and
        // shave toward [π/6, 5π/6].
        use std::f64::consts::PI;
        let c = NlConstraint::new(x().sin(), CmpOp::Ge, "0.5".parse().unwrap());
        let mut bx = vec![Interval::new(0.0, PI)];
        assert_eq!(
            hc4_revise(&c, &mut bx.clone()),
            Contraction::Unchanged,
            "premise: HC4 alone is blind here"
        );
        assert_eq!(bc3_revise(&c, 0, &mut bx), Contraction::Changed);
        // Both ends shaved, every solution kept.
        assert!(bx[0].lo() > 0.2, "lower bound shaved: {}", bx[0]);
        assert!(bx[0].hi() < PI - 0.2, "upper bound shaved: {}", bx[0]);
        assert!(bx[0].lo() <= PI / 6.0 + 1e-9, "no solution lost: {}", bx[0]);
        assert!(
            bx[0].hi() >= 5.0 * PI / 6.0 - 1e-9,
            "no solution lost: {}",
            bx[0]
        );
        assert!(bx[0].contains(PI / 2.0));
    }

    #[test]
    fn stall_gated_bc3_fires_through_cascade() {
        // The full cascade must reach the same shaving when HC4 stalls.
        use std::f64::consts::PI;
        let c = NlConstraint::new(x().sin(), CmpOp::Ge, "0.5".parse().unwrap());
        let mut bx = vec![Interval::new(0.0, PI)];
        let out = cascade_contract(
            &[c],
            &mut bx,
            "hc4,bc3".parse::<ContractorConfig>().unwrap(),
        );
        assert_eq!(out, Contraction::Changed, "BC3 must fire on HC4 stall");
        assert!(bx[0].lo() > 0.2 && bx[0].hi() < PI - 0.2, "{}", bx[0]);
        assert!(bx[0].contains(PI / 2.0));
    }

    #[test]
    fn worklist_matches_full_sweep() {
        // Chain x = y ∧ y ≤ 3 with dirty-seeded propagation after
        // narrowing x as if by a split.
        let c1 = NlConstraint::new(x() - y(), CmpOp::Eq, q(0));
        let c2 = NlConstraint::new(y(), CmpOp::Le, q(3));
        let constraints = vec![c1, c2];
        let mut full = vec![Interval::new(0.0, 10.0), Interval::new(0.0, 10.0)];
        let mut engine = Cascade::new(&constraints, 2, ContractorConfig::hc4_only(), false, 1e-9);
        let mut active = ActiveSet::all(2);
        engine.contract(&mut full, None, &mut active);
        // Fixpoint reached; now "split" x to [0, 1] and seed only x's
        // watchers.
        full[0] = Interval::new(0.0, 1.0);
        engine.contract(&mut full, Some(0), &mut active);
        assert!(full[1].hi() <= 1.0 + 1e-9, "y must follow x: {}", full[1]);
    }

    #[test]
    fn entailed_constraints_leave_the_active_set() {
        // x ≤ 5 over [0, 2] is certainly true: one contract call must
        // remove it from the active set without narrowing anything.
        let c = NlConstraint::new(x(), CmpOp::Le, q(5));
        let constraints = vec![c];
        let mut engine = Cascade::new(&constraints, 1, ContractorConfig::hc4_only(), false, 1e-9);
        let mut active = ActiveSet::all(1);
        let mut bx = vec![Interval::new(0.0, 2.0)];
        let out = engine.contract(&mut bx, None, &mut active);
        assert_eq!(out, Contraction::Unchanged);
        assert!(active.is_empty(), "entailed constraint must be dropped");
        assert_eq!(bx[0], Interval::new(0.0, 2.0));
    }

    #[test]
    fn cache_hits_on_sibling_boxes() {
        let c1 = NlConstraint::new(x().pow(2), CmpOp::Le, q(4));
        let c2 = NlConstraint::new(y().pow(2), CmpOp::Le, q(9));
        let constraints = vec![c1, c2];
        let mut engine = Cascade::new(&constraints, 2, ContractorConfig::hc4_only(), true, 1e-9);
        let mut left = vec![Interval::new(-10.0, 0.0), Interval::new(-10.0, 10.0)];
        let mut active_l = ActiveSet::all(2);
        engine.contract(&mut left, None, &mut active_l);
        // Sibling box after a split on var 0: var 1's projection is
        // unchanged, so c2's revise must be answered from the cache.
        let mut right = vec![Interval::new(0.0, 10.0), Interval::new(-10.0, 10.0)];
        let mut active_r = ActiveSet::all(2);
        engine.contract(&mut right, None, &mut active_r);
        let (hits, misses) = engine.cache_counters();
        assert!(hits > 0, "sibling revisit must hit the cache");
        assert!(misses > 0);
        assert!(right[1].lo() >= -3.0 - 1e-6 && right[1].hi() <= 3.0 + 1e-6);
    }

    #[test]
    fn cached_entailment_detected_across_boxes() {
        // Same projected box twice: the second engine pass must learn the
        // entailment from the cache, not a fresh revise.
        let c = NlConstraint::new(x(), CmpOp::Le, q(100));
        let constraints = vec![c];
        let mut engine = Cascade::new(&constraints, 1, ContractorConfig::hc4_only(), true, 1e-9);
        let mut bx1 = vec![Interval::new(0.0, 2.0)];
        let mut a1 = ActiveSet::all(1);
        engine.contract(&mut bx1, None, &mut a1);
        assert!(a1.is_empty());
        let mut bx2 = vec![Interval::new(0.0, 2.0)];
        let mut a2 = ActiveSet::all(1);
        engine.contract(&mut bx2, None, &mut a2);
        assert!(
            a2.is_empty(),
            "entailment must survive the cache round-trip"
        );
        let (hits, _) = engine.cache_counters();
        assert!(hits > 0);
    }

    #[test]
    fn newton_stage_tightens_equalities() {
        // x² = 2 over [1, 2]: the full cascade should reach near-point
        // precision without any splitting.
        let c = NlConstraint::new(x().pow(2), CmpOp::Eq, q(2));
        let mut bx = vec![Interval::new(1.0, 2.0)];
        cascade_contract(&[c], &mut bx, ContractorConfig::default());
        assert!(bx[0].contains(std::f64::consts::SQRT_2));
        assert!(bx[0].width() < 1e-3, "cascade should converge: {}", bx[0]);
    }
}
