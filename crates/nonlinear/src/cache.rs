//! Bounded contraction cache keyed on `(constraint-id, quantized box)`.
//!
//! Branch-and-prune revisits near-identical sub-boxes constantly: sibling
//! subtrees differ only in the split dimension, so a constraint that does
//! not mention that dimension sees the *same* projected box again and
//! again. Caching the HC4 fixpoint of a constraint over its own variables
//! collapses those repeats into hash lookups.
//!
//! The constraint id the cascade passes in is the *interned*
//! [`crate::term::ConstraintId`] — stable for the process lifetime, not a
//! positional index — so entries stay valid across solves: a persistent
//! session (or the service's warm-session pool) can carry one cache
//! through many `check` calls and keep hitting on resubmitted boxes.
//!
//! Soundness rests on outward quantization
//! ([`Interval::quantize_outward`]): the cache key is the quantized
//! superset `Q(B) ⊇ B` of the live box `B`, and the cached value is a
//! sound contraction `C` of `Q(B)`. Every real solution inside `B` is
//! inside `Q(B)` and therefore inside `C`, so *intersecting* `B` with `C`
//! never discards a solution — and an `Empty` verdict for `Q(B)` is a
//! fortiori a proof of emptiness for `B`.
//!
//! The lookup path allocates nothing: the map is keyed on a 64-bit mix of
//! the quantized bit patterns (with an identity re-hash), and each entry
//! stores the exact quantized projection so a probe verifies equality
//! before trusting the hash — a collision is treated as a miss, never as
//! a wrong answer.

use absolver_num::Interval;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Mantissa bits cleared by the cache's outward quantization. Coarser
/// grids (more bits) raise the hit rate but weaken cached contractions;
/// 20 bits keeps ~32 significant mantissa bits, far below the solver's
/// `min_width` resolution.
pub const QUANTIZE_BITS: u32 = 20;

/// Entry cap. At ~100 bytes per entry this bounds the cache near
/// 16 MiB; on overflow the whole map is cleared (the workloads that
/// benefit re-warm in a few hundred boxes).
const MAX_ENTRIES: usize = 131_072;

/// A cached contraction outcome for one constraint over one quantized
/// projected box.
#[derive(Debug, Clone)]
pub enum CachedContraction {
    /// The constraint is infeasible over the quantized box.
    Empty,
    /// Sound narrowed intervals for the constraint's variables, in the
    /// same order as the projection, plus whether the constraint was
    /// *entailed* (certainly true over the whole quantized box — and so
    /// over every live box mapping to this key).
    Narrowed {
        /// Narrowed projection intervals.
        ivs: Vec<Interval>,
        /// Constraint certainly true over the quantized box.
        entailed: bool,
    },
}

/// One stored contraction: the exact quantized projection (for collision
/// verification) plus the outcome.
#[derive(Debug)]
struct Entry {
    constraint: usize,
    bits: Vec<(u64, u64)>,
    value: CachedContraction,
}

/// The map key is already a high-quality 64-bit mix, so the map re-hashes
/// it with the identity function.
#[derive(Debug, Default, Clone)]
struct IdentityState;

struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached if the key type ever changes; fold bytes anyway.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

impl BuildHasher for IdentityState {
    type Hasher = IdentityHasher;

    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Bounded memo of per-constraint HC4 fixpoints.
#[derive(Debug, Default)]
pub struct ContractionCache {
    map: HashMap<u64, Entry, IdentityState>,
    hits: u64,
    misses: u64,
}

impl ContractionCache {
    /// Creates an empty cache.
    pub fn new() -> ContractionCache {
        ContractionCache::default()
    }

    /// Hashes a quantized projection (the caller quantizes each interval
    /// with [`Interval::quantize_outward`] at [`QUANTIZE_BITS`]).
    pub fn hash(constraint: usize, quantized: &[Interval]) -> u64 {
        let mut h = mix(constraint as u64 ^ 0x9e37_79b9_7f4a_7c15);
        for q in quantized {
            h = mix(h ^ q.lo().to_bits());
            h = mix(h ^ q.hi().to_bits());
        }
        h
    }

    /// Looks up the contraction stored for this exact `(constraint,
    /// quantized projection)` pair. Counts a hit or a miss; a hash
    /// collision with a different key verifies unequal and counts as a
    /// miss.
    pub fn find(
        &mut self,
        hash: u64,
        constraint: usize,
        quantized: &[Interval],
    ) -> Option<&CachedContraction> {
        match self.map.get(&hash) {
            Some(e)
                if e.constraint == constraint
                    && e.bits.len() == quantized.len()
                    && e.bits
                        .iter()
                        .zip(quantized)
                        .all(|(&(lo, hi), q)| lo == q.lo().to_bits() && hi == q.hi().to_bits()) =>
            {
                self.hits += 1;
                Some(&self.map[&hash].value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a contraction (replacing any colliding entry), clearing the
    /// map first if it is full.
    pub fn put(
        &mut self,
        hash: u64,
        constraint: usize,
        quantized: &[Interval],
        value: CachedContraction,
    ) {
        if self.map.len() >= MAX_ENTRIES {
            self.map.clear();
        }
        let bits = quantized
            .iter()
            .map(|q| (q.lo().to_bits(), q.hi().to_bits()))
            .collect();
        self.map.insert(
            hash,
            Entry {
                constraint,
                bits,
                value,
            },
        );
    }

    /// Lookups answered from the map.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a real contraction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantize(boxes: &[Interval]) -> Vec<Interval> {
        boxes
            .iter()
            .map(|b| b.quantize_outward(QUANTIZE_BITS))
            .collect()
    }

    #[test]
    fn quantization_encloses() {
        let boxes = [Interval::new(-1.000001, 2.000001), Interval::new(0.1, 0.2)];
        for (q, b) in quantize(&boxes).iter().zip(boxes.iter()) {
            assert!(q.encloses(*b), "{q} must enclose {b}");
        }
    }

    #[test]
    fn nearby_boxes_share_a_key() {
        let a = quantize(&[Interval::new(0.5, 1.5)]);
        // Perturb well below the quantization grid spacing.
        let b = quantize(&[Interval::new(0.5 + 1e-12, 1.5 - 1e-12)]);
        assert_eq!(
            ContractionCache::hash(0, &a),
            ContractionCache::hash(0, &b),
            "sub-grid perturbations must collide"
        );
        assert_eq!(a, b, "and verify equal");
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut cache = ContractionCache::new();
        let q = quantize(&[Interval::new(0.0, 1.0)]);
        let h = ContractionCache::hash(0, &q);
        assert!(cache.find(h, 0, &q).is_none());
        cache.put(h, 0, &q, CachedContraction::Empty);
        assert!(matches!(
            cache.find(h, 0, &q),
            Some(CachedContraction::Empty)
        ));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn collisions_verify_and_miss() {
        let mut cache = ContractionCache::new();
        let q = quantize(&[Interval::new(0.0, 1.0)]);
        let h = ContractionCache::hash(0, &q);
        cache.put(h, 0, &q, CachedContraction::Empty);
        // Same hash slot, different constraint id: must verify unequal.
        assert!(cache.find(h, 1, &q).is_none());
        // Same constraint, different projection under the same forced hash.
        let other = quantize(&[Interval::new(5.0, 6.0)]);
        assert!(cache.find(h, 0, &other).is_none());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
    }
}
