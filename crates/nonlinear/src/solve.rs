//! Nonlinear feasibility solving: interval branch-and-prune plus a
//! multistart local search.
//!
//! ABsolver delegates nonlinear conjunctions to IPOPT, a numerical
//! interior-point solver that either finds a feasible point or gives up.
//! This reproduction pairs two complementary engines behind one facade:
//!
//! * [`branch_and_prune`] — a rigorous interval method (HC4 propagation +
//!   bisection). It can *prove* infeasibility on a bounded box, which a
//!   numerical solver never can, and certifies satisfiability when a whole
//!   sub-box is feasible.
//! * [`local_search`] — multistart projected gradient descent on a penalty
//!   function, the IPOPT-like workhorse that quickly digs out a feasible
//!   point of satisfiable instances.
//!
//! [`NlProblem::solve`] runs them in sequence and merges the verdicts.

use crate::cache::ContractionCache;
use crate::cascade::{ActiveSet, Cascade, ContractorConfig};
use crate::constraint::{IntervalVerdict, NlConstraint};
use crate::hc4::Contraction;
use absolver_num::Interval;
use std::sync::{Arc, Mutex};

/// Search-effort counters of one [`branch_and_prune_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NlSearchStats {
    /// Boxes popped off the branch-and-prune stack.
    pub boxes_explored: u64,
    /// HC4 revise calls that actually narrowed (or emptied) a domain.
    pub hc4_contractions: u64,
    /// BC3 shaving passes that narrowed (or emptied) a domain.
    pub bc3_contractions: u64,
    /// Interval-Newton passes that narrowed (or emptied) a domain.
    pub newton_contractions: u64,
    /// Contraction-cache lookups answered without a revise.
    pub contraction_cache_hits: u64,
    /// Contraction-cache lookups that fell through to a revise.
    pub contraction_cache_misses: u64,
    /// Solves that began with a non-empty persistent contraction cache —
    /// every counted resume proves entries written by an *earlier* solve
    /// (or an earlier service request, via a pooled session) were carried
    /// into this one. Interned [`crate::term::ConstraintId`]s are what
    /// make those stale-looking entries sound to replay verbatim.
    pub contraction_cache_resumes: u64,
    /// Times the stagnation cutoff abandoned a box search early (see
    /// [`branch_and_prune_stats`]): the solver then leans on the local
    /// search and, failing that, the surrounding CDCL loop.
    pub stagnation_cuts: u64,
}

impl NlSearchStats {
    /// Folds one cascade engine's counters into the run totals.
    fn absorb_cascade(&mut self, c: &crate::cascade::CascadeStats) {
        self.hc4_contractions += c.hc4_contractions;
        self.bc3_contractions += c.bc3_contractions;
        self.newton_contractions += c.newton_contractions;
        self.contraction_cache_hits += c.cache_hits;
        self.contraction_cache_misses += c.cache_misses;
    }
}

/// Verdict of a nonlinear feasibility query.
#[derive(Debug, Clone, PartialEq)]
pub enum NlVerdict {
    /// A feasible point was found (satisfaction per [`NlConstraint::eval_with_tol`]).
    Sat(Vec<f64>),
    /// Proven infeasible over the given variable bounds (rigorous).
    Unsat,
    /// Neither a witness nor a proof within budget.
    Unknown,
}

impl NlVerdict {
    /// Returns `true` for [`NlVerdict::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, NlVerdict::Sat(_))
    }

    /// The witness, if SAT.
    pub fn witness(&self) -> Option<&[f64]> {
        match self {
            NlVerdict::Sat(w) => Some(w),
            _ => None,
        }
    }
}

/// Tuning knobs for the nonlinear engines.
#[derive(Debug, Clone)]
pub struct NlOptions {
    /// Maximum number of boxes the branch-and-prune search may explore.
    pub max_boxes: usize,
    /// Box-width threshold below which branch-and-prune stops splitting.
    pub min_width: f64,
    /// Number of multistart attempts of the local search.
    pub restarts: usize,
    /// Gradient-descent iterations per restart.
    pub iterations: usize,
    /// Satisfaction tolerance for witnesses (see [`NlConstraint::eval_with_tol`]).
    pub tolerance: f64,
    /// Interior margin used to steer strict inequalities off their boundary.
    pub strict_margin: f64,
    /// Seed for the deterministic multistart sampler.
    pub seed: u64,
    /// Cooperative cancellation token: once it reads `true`, the engines
    /// abandon the search at their next check point and report `Unknown`.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Wall-clock deadline: past it, the engines abandon the search at
    /// their next check point and report `Unknown`.
    pub deadline: Option<std::time::Instant>,
    /// Which contractors the cascade runs (HC4 is always on; BC3 and
    /// Newton default on).
    pub contractors: ContractorConfig,
    /// Memoize per-constraint HC4 fixpoints keyed on the quantized box
    /// projection (on by default; disable for ablation).
    pub contraction_cache: bool,
    /// Optional cross-solve home for the contraction cache. When set (and
    /// `contraction_cache` is on), the sequential search *takes* the cache
    /// out of the handle, uses it, and puts it back at the end — sound
    /// because entries are keyed on stable interned constraint ids, so a
    /// persistent session resubmitting overlapping boxes keeps hitting
    /// work done by earlier solves. Parallel workers keep private caches.
    pub persistent_cache: Option<Arc<Mutex<Option<ContractionCache>>>>,
    /// Worker threads for the box search. `1` (the default) keeps the
    /// deterministic sequential depth-first exploration.
    pub nl_jobs: usize,
}

impl NlOptions {
    /// Returns `true` when the cancel token is set or the deadline has
    /// passed. Polled periodically inside the engine loops so that a
    /// single large budget cannot block a caller past its wall clock.
    pub fn interrupted(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

impl Default for NlOptions {
    fn default() -> Self {
        NlOptions {
            max_boxes: 20_000,
            min_width: 1e-6,
            restarts: 40,
            iterations: 400,
            tolerance: 1e-6,
            strict_margin: 1e-7,
            seed: 0x5EED_AB50,
            cancel: None,
            deadline: None,
            contractors: ContractorConfig::default(),
            contraction_cache: true,
            persistent_cache: None,
            nl_jobs: 1,
        }
    }
}

/// A conjunction of nonlinear constraints over box-bounded variables.
#[derive(Debug, Clone, Default)]
pub struct NlProblem {
    /// The constraints (conjunction).
    pub constraints: Vec<NlConstraint>,
    /// Per-variable domains. Defaults to [`Interval::ENTIRE`] for variables
    /// not covered.
    pub bounds: Vec<Interval>,
}

impl NlProblem {
    /// Creates a problem over `num_vars` unbounded variables.
    pub fn new(num_vars: usize) -> NlProblem {
        NlProblem {
            constraints: Vec::new(),
            bounds: vec![Interval::ENTIRE; num_vars],
        }
    }

    /// Adds a constraint, growing the variable count as needed.
    pub fn add_constraint(&mut self, c: NlConstraint) {
        if let Some(max) = c.max_var() {
            while self.bounds.len() <= max {
                self.bounds.push(Interval::ENTIRE);
            }
        }
        self.constraints.push(c);
    }

    /// Restricts variable `v`'s domain (intersecting any existing bound).
    pub fn bound_var(&mut self, v: usize, bounds: Interval) {
        while self.bounds.len() <= v {
            self.bounds.push(Interval::ENTIRE);
        }
        self.bounds[v] = self.bounds[v].intersect(bounds);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.bounds.len()
    }

    /// Returns `true` if `point` satisfies every constraint: inequalities
    /// exactly (in `f64`), equalities within `eq_tol` (see
    /// [`NlConstraint::eval_robust`]).
    pub fn is_satisfied(&self, point: &[f64], eq_tol: f64) -> bool {
        self.constraints
            .iter()
            .all(|c| c.eval_robust(point, eq_tol))
    }

    /// Solves the feasibility problem with the default engine cascade:
    /// branch-and-prune first (possibly proving UNSAT), then the local
    /// search for stubborn SAT instances.
    pub fn solve(&self) -> NlVerdict {
        self.solve_with(&NlOptions::default())
    }

    /// Solves with explicit options.
    pub fn solve_with(&self, opts: &NlOptions) -> NlVerdict {
        self.solve_with_stats(opts).0
    }

    /// Like [`NlProblem::solve_with`], but also reports the search-effort
    /// counters of the branch-and-prune stage.
    pub fn solve_with_stats(&self, opts: &NlOptions) -> (NlVerdict, NlSearchStats) {
        let (verdict, stats) = branch_and_prune_inner(self, opts, true);
        let verdict = match verdict {
            NlVerdict::Unknown => match local_search(self, opts) {
                Some(point) => NlVerdict::Sat(point),
                None => NlVerdict::Unknown,
            },
            verdict => verdict,
        };
        (verdict, stats)
    }
}

/// Clamps a (possibly unbounded) domain to a finite sampling range.
fn sampling_interval(iv: Interval) -> (f64, f64) {
    const BIG: f64 = 1.0e4;
    let lo = if iv.lo().is_finite() { iv.lo() } else { -BIG };
    let hi = if iv.hi().is_finite() { iv.hi() } else { BIG };
    if lo <= hi {
        (lo, hi)
    } else {
        (hi, lo)
    }
}

/// Rigorous interval branch-and-prune.
///
/// Returns [`NlVerdict::Unsat`] only with a proof (every leaf box refuted
/// by interval arithmetic); [`NlVerdict::Sat`] when a point check or a
/// certainly-true box yields a witness; [`NlVerdict::Unknown`] when the
/// box budget or width threshold is hit first.
pub fn branch_and_prune(problem: &NlProblem, opts: &NlOptions) -> NlVerdict {
    branch_and_prune_stats(problem, opts).0
}

/// Outcome of examining one contracted box: a witness, a refutation, a
/// split, or a too-tiny inconclusive leaf.
enum BoxStep {
    Sat(Vec<f64>),
    Refuted,
    Tiny,
    Split(usize, Vec<Interval>, Vec<Interval>),
}

/// Shared per-box logic of the sequential and parallel searches: assumes
/// `bx` has already been contracted to a cascade fixpoint (and is
/// non-empty), then tries the midpoint and finally splits the widest
/// dimension.
///
/// Only constraints still in `active` are evaluated — the inactive ones
/// were proven certainly true on an ancestor box, which covers `bx` and
/// its midpoint. No per-constraint interval verdicts are recomputed here:
/// a constraint's verdict depends only on the projection of the box onto
/// its variables, and the cascade worklist re-revises a constraint
/// whenever that projection narrows — detecting `CertainlyFalse` as an
/// empty contraction and `CertainlyTrue` as entailment. At fixpoint every
/// active constraint is therefore exactly `Unknown`, and an empty active
/// set certifies the whole box. (Conjunctions too large for entailment
/// filtering fall back to explicit verdict checks.)
fn examine_box(
    problem: &NlProblem,
    opts: &NlOptions,
    bx: Vec<Interval>,
    active: &mut ActiveSet,
) -> BoxStep {
    let n = problem.num_vars();
    // Candidate point: the box midpoint. Interval entailment is over the
    // *defined* points of a box, so even a fully entailed box only yields
    // a witness after a pointwise re-check — the midpoint can sit exactly
    // on a singularity (e.g. `0/x ≤ ½` entailed on a zero-straddling box,
    // but undefined at `x = 0`). A failed re-check falls through to the
    // split, which moves the descendant midpoints off the singular point.
    let mid: Vec<f64> = bx.iter().map(Interval::midpoint).collect();
    let mid_sat = |mid: &[f64]| problem.is_satisfied(mid, opts.tolerance);
    if active.is_empty() {
        // Every constraint entailed: any defined point of the box is a
        // witness.
        if mid_sat(&mid) {
            return BoxStep::Sat(mid);
        }
    } else {
        if active.is_unfiltered() {
            // Entailment filtering is off: recompute the verdicts here.
            let verdicts: Vec<IntervalVerdict> = problem
                .constraints
                .iter()
                .map(|c| c.check_box(&bx))
                .collect();
            if verdicts.contains(&IntervalVerdict::CertainlyFalse) {
                return BoxStep::Refuted;
            }
            if verdicts
                .iter()
                .all(|v| *v == IntervalVerdict::CertainlyTrue)
                && mid_sat(&mid)
            {
                return BoxStep::Sat(mid);
            }
        }
        // Cheap active-only screen first, full pointwise check to certify.
        let mid_ok = problem
            .constraints
            .iter()
            .enumerate()
            .all(|(ci, c)| !active.contains(ci) || c.eval_robust(&mid, opts.tolerance));
        if mid_ok && mid_sat(&mid) {
            return BoxStep::Sat(mid);
        }
    }
    // Split the widest (finite) dimension.
    let split = (0..n)
        .filter(|&i| bx[i].width() > opts.min_width)
        .max_by(|&a, &b| {
            bx[a]
                .width()
                .partial_cmp(&bx[b].width())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    match split {
        None => BoxStep::Tiny, // neither verifiable nor refutable
        Some(dim) => {
            let m = bx[dim].midpoint();
            let mut left = bx.clone();
            let mut right = bx;
            left[dim] = Interval::checked(left[dim].lo(), m);
            right[dim] = Interval::checked(m, right[dim].hi());
            BoxStep::Split(dim, left, right)
        }
    }
}

/// Stagnation cutoff: a search that is still splitting after this many
/// boxes without ever having bottomed out at the width threshold is
/// grinding a wide refutation frontier whose completion, if it comes at
/// all, lies orders of magnitude past the window — a balanced refutation
/// tree over a 7-variable box has barely halved each domain by then. Such
/// a search gives up early with `Unknown` so the local search (and the
/// surrounding CDCL loop, which simply tries another assignment) get the
/// remaining time. Searches that *do* reach tiny leaves are heading
/// toward a witness or a tight refutation and are left alone, as are runs
/// whose explicit `max_boxes` budget is below the window. The cutoff is
/// sound: `Unknown` is always a valid (if weak) verdict.
///
/// The signal is only meaningful on a *fully bounded* root box: a box with
/// an infinite dimension can never shrink below the width threshold along
/// it, so the absence of tiny leaves says nothing there, and the cutoff
/// stays disarmed. It is likewise disarmed in [`branch_and_prune_stats`]
/// (the rigorous entry point, where no local-search fallback exists) and
/// only armed inside [`NlProblem::solve_with_stats`].
const STAGNATION_WINDOW: usize = 2048;

/// Like [`branch_and_prune`], but also reports the search-effort counters
/// (boxes explored, per-contractor contractions, cache traffic) for the
/// observability layer.
///
/// Always runs the full `max_boxes` budget: the stagnation cutoff is only
/// armed inside [`NlProblem::solve_with_stats`], where a failed cut can be
/// rescued by the local search or a full-budget re-run.
pub fn branch_and_prune_stats(problem: &NlProblem, opts: &NlOptions) -> (NlVerdict, NlSearchStats) {
    branch_and_prune_inner(problem, opts, false)
}

/// Search body shared by the public entry point (stagnation cutoff armed)
/// and the post-local-search rescue re-run (cutoff disarmed).
fn branch_and_prune_inner(
    problem: &NlProblem,
    opts: &NlOptions,
    stagnation_cut: bool,
) -> (NlVerdict, NlSearchStats) {
    let mut stats = NlSearchStats::default();
    let n = problem.num_vars();
    if n == 0 {
        // Ground problem: constraints are constant comparisons.
        let verdict = if problem.is_satisfied(&[], 0.0) {
            NlVerdict::Sat(Vec::new())
        } else {
            NlVerdict::Unsat
        };
        return (verdict, stats);
    }
    // The no-tiny-leaf stagnation signal only means anything when every
    // dimension can actually reach the width threshold.
    let stagnation_cut = stagnation_cut
        && problem
            .bounds
            .iter()
            .all(|iv| iv.lo().is_finite() && iv.hi().is_finite());
    if opts.nl_jobs > 1 {
        return parallel_branch_and_prune(problem, opts, stagnation_cut);
    }
    // Resume from the persistent cache when the caller keeps one: ids are
    // stable across solves, so old entries stay valid verbatim.
    let cache = if opts.contraction_cache {
        let resumed = opts
            .persistent_cache
            .as_ref()
            .and_then(|h| h.lock().expect("cache handle").take());
        if resumed.as_ref().is_some_and(|c| !c.is_empty()) {
            stats.contraction_cache_resumes += 1;
        }
        Some(resumed.unwrap_or_default())
    } else {
        None
    };
    let mut engine = Cascade::with_cache(
        &problem.constraints,
        n,
        opts.contractors,
        cache,
        opts.min_width,
    );
    // Stack entries carry the split dimension that produced them (`None`
    // for the root), so the cascade can seed its worklist with just the
    // constraints watching that dimension, plus the set of constraints
    // still active on that subtree.
    let mut stack: Vec<(Vec<Interval>, Option<usize>, ActiveSet)> = vec![(
        problem.bounds.clone(),
        None,
        ActiveSet::all(problem.constraints.len()),
    )];
    let mut explored = 0usize;
    let mut inconclusive = false;
    let mut early: Option<NlVerdict> = None;

    while let Some((mut bx, dirty, mut active)) = stack.pop() {
        explored += 1;
        stats.boxes_explored += 1;
        if explored > opts.max_boxes {
            early = Some(NlVerdict::Unknown);
            break;
        }
        if stagnation_cut
            && explored == STAGNATION_WINDOW
            && opts.max_boxes > STAGNATION_WINDOW
            && !inconclusive
        {
            stats.stagnation_cuts += 1;
            early = Some(NlVerdict::Unknown);
            break;
        }
        if explored.is_multiple_of(64) && opts.interrupted() {
            early = Some(NlVerdict::Unknown);
            break;
        }
        if engine.contract(&mut bx, dirty, &mut active) == Contraction::Empty {
            continue;
        }
        if bx.iter().any(|iv| iv.is_empty()) {
            continue;
        }
        match examine_box(problem, opts, bx, &mut active) {
            BoxStep::Sat(mid) => {
                early = Some(NlVerdict::Sat(mid));
                break;
            }
            BoxStep::Refuted => continue,
            BoxStep::Tiny => inconclusive = true,
            BoxStep::Split(dim, left, right) => {
                if !left[dim].is_empty() {
                    stack.push((left, Some(dim), active));
                }
                if !right[dim].is_empty() {
                    stack.push((right, Some(dim), active));
                }
            }
        }
    }
    stats.absorb_cascade(&engine.stats);
    if let Some(handle) = &opts.persistent_cache {
        if let Some(cache) = engine.take_cache() {
            *handle.lock().expect("cache handle") = Some(cache);
        }
    }
    let verdict = early.unwrap_or(if inconclusive {
        NlVerdict::Unknown
    } else {
        NlVerdict::Unsat
    });
    (verdict, stats)
}

/// Work-stealing parallel box search: `opts.nl_jobs` workers share a
/// queue of contracted-and-split boxes, each running its own cascade
/// engine (and private contraction cache). Verdicts keep the sequential
/// semantics — `Sat` and `Unsat` are proofs either way, so only the
/// budget-limited `Unknown` frontier can differ between job counts.
fn parallel_branch_and_prune(
    problem: &NlProblem,
    opts: &NlOptions,
    stagnation_cut: bool,
) -> (NlVerdict, NlSearchStats) {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = problem.num_vars();
    let jobs = opts.nl_jobs.min(64);
    type WorkItem = (Vec<Interval>, Option<usize>, ActiveSet);
    let queue: Mutex<Vec<WorkItem>> = Mutex::new(vec![(
        problem.bounds.clone(),
        None,
        ActiveSet::all(problem.constraints.len()),
    )]);
    // Boxes produced but not yet fully processed, anywhere. Children are
    // added *before* the parent is retired, so `pending == 0` really
    // means the whole tree is exhausted.
    let pending = AtomicUsize::new(1);
    let explored = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let out_of_budget = AtomicBool::new(false);
    let stagnated = AtomicBool::new(false);
    let inconclusive = AtomicBool::new(false);
    let witness: Mutex<Option<Vec<f64>>> = Mutex::new(None);
    let totals: Mutex<NlSearchStats> = Mutex::new(NlSearchStats::default());

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut engine = Cascade::new(
                    &problem.constraints,
                    n,
                    opts.contractors,
                    opts.contraction_cache,
                    opts.min_width,
                );
                let mut local: Vec<WorkItem> = Vec::new();
                let mut idle_spins = 0u32;
                loop {
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    let item = local
                        .pop()
                        .or_else(|| queue.lock().expect("queue lock").pop());
                    let Some((mut bx, dirty, mut active)) = item else {
                        if pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        idle_spins += 1;
                        if idle_spins > 16 {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        } else {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    idle_spins = 0;
                    let seen = explored.fetch_add(1, Ordering::Relaxed) + 1;
                    if seen > opts.max_boxes || (seen.is_multiple_of(32) && opts.interrupted()) {
                        out_of_budget.store(true, Ordering::Relaxed);
                        done.store(true, Ordering::Relaxed);
                        pending.fetch_sub(1, Ordering::AcqRel);
                        break;
                    }
                    // Stagnation cutoff (see the sequential search):
                    // exactly one worker observes the window boundary.
                    if stagnation_cut
                        && seen == STAGNATION_WINDOW
                        && opts.max_boxes > STAGNATION_WINDOW
                        && !inconclusive.load(Ordering::Relaxed)
                    {
                        stagnated.store(true, Ordering::Relaxed);
                        out_of_budget.store(true, Ordering::Relaxed);
                        done.store(true, Ordering::Relaxed);
                        pending.fetch_sub(1, Ordering::AcqRel);
                        break;
                    }
                    let box_refuted = engine.contract(&mut bx, dirty, &mut active)
                        == Contraction::Empty
                        || bx.iter().any(|iv| iv.is_empty());
                    if !box_refuted {
                        match examine_box(problem, opts, bx, &mut active) {
                            BoxStep::Sat(mid) => {
                                let mut w = witness.lock().expect("witness lock");
                                if w.is_none() {
                                    *w = Some(mid);
                                }
                                done.store(true, Ordering::Release);
                            }
                            BoxStep::Refuted => {}
                            BoxStep::Tiny => {
                                inconclusive.store(true, Ordering::Relaxed);
                            }
                            BoxStep::Split(dim, left, right) => {
                                let mut children: Vec<WorkItem> = Vec::with_capacity(2);
                                if !left[dim].is_empty() {
                                    children.push((left, Some(dim), active));
                                }
                                if !right[dim].is_empty() {
                                    children.push((right, Some(dim), active));
                                }
                                if !children.is_empty() {
                                    pending.fetch_add(children.len(), Ordering::AcqRel);
                                    let mut shared = queue.lock().expect("queue lock");
                                    for child in children {
                                        // Donate to starving siblings, keep
                                        // the rest for depth-first locality.
                                        if shared.len() < jobs {
                                            shared.push(child);
                                        } else {
                                            local.push(child);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    pending.fetch_sub(1, Ordering::AcqRel);
                }
                let mut t = totals.lock().expect("totals lock");
                t.absorb_cascade(&engine.stats);
            });
        }
    });

    let mut stats = totals.into_inner().expect("totals");
    stats.boxes_explored = explored.into_inner() as u64;
    stats.stagnation_cuts = stagnated.into_inner() as u64;
    let witness = witness.into_inner().expect("witness");
    let verdict = match witness {
        Some(w) => NlVerdict::Sat(w),
        None if out_of_budget.into_inner() || inconclusive.into_inner() => NlVerdict::Unknown,
        None => NlVerdict::Unsat,
    };
    (verdict, stats)
}

/// Minimal deterministic xorshift64* generator for multistart sampling
/// (keeps this crate dependency-free).
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Multistart projected gradient descent on the quadratic penalty
/// `P(x) = Σ violation(cᵢ, x)²` — the IPOPT-role numerical engine.
///
/// Returns a feasible point (within `opts.tolerance`) or `None`.
pub fn local_search(problem: &NlProblem, opts: &NlOptions) -> Option<Vec<f64>> {
    let n = problem.num_vars();
    if n == 0 {
        return problem.is_satisfied(&[], 0.0).then(Vec::new);
    }
    let mut rng = XorShift::new(opts.seed);
    // Fetch the simplified gradient tapes of each constraint's LHS — the
    // arena memoises per `(term, var)`, so repeated solves over the same
    // constraints skip the symbolic differentiation entirely.
    let grads: Vec<Vec<Arc<crate::term::TermTape>>> = problem
        .constraints
        .iter()
        .map(|c| {
            (0..n)
                .map(|v| crate::term::derivative_tape(c.term(), v).1)
                .collect()
        })
        .collect();
    let ranges: Vec<(f64, f64)> = problem
        .bounds
        .iter()
        .map(|&b| sampling_interval(b))
        .collect();

    let penalty = |x: &[f64]| -> f64 {
        problem
            .constraints
            .iter()
            .map(|c| {
                let v = c.violation(x, opts.strict_margin);
                v * v
            })
            .sum()
    };

    for _ in 0..opts.restarts {
        if opts.interrupted() {
            return None;
        }
        let mut x: Vec<f64> = ranges
            .iter()
            .map(|&(lo, hi)| lo + rng.next_f64() * (hi - lo))
            .collect();
        let mut lr = 0.1;
        let mut p = penalty(&x);
        for step in 0..opts.iterations {
            if problem.is_satisfied(&x, opts.tolerance) {
                return Some(x);
            }
            if step % 64 == 63 && opts.interrupted() {
                return None;
            }
            if !p.is_finite() {
                break; // restart from elsewhere
            }
            // ∇P = Σ 2·violation·(±∇lhs) over active constraints.
            let mut grad = vec![0.0f64; n];
            for (ci, c) in problem.constraints.iter().enumerate() {
                let viol = c.violation(&x, opts.strict_margin);
                if viol == 0.0 {
                    continue;
                }
                let lhs = c.lhs_f64(&x);
                let rhs = c.rhs.to_f64();
                // Direction of increasing violation w.r.t. lhs.
                let sign = match c.op {
                    absolver_linear::CmpOp::Lt | absolver_linear::CmpOp::Le => 1.0,
                    absolver_linear::CmpOp::Gt | absolver_linear::CmpOp::Ge => -1.0,
                    absolver_linear::CmpOp::Eq => {
                        if lhs >= rhs {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                };
                for (v, g) in grad.iter_mut().enumerate() {
                    let d = grads[ci][v].eval_f64(&x);
                    if d.is_finite() {
                        *g += 2.0 * viol * sign * d;
                    }
                }
            }
            let norm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm < 1e-14 {
                break; // flat (likely a non-feasible local minimum)
            }
            // Tentative step with simple backtracking.
            let trial: Vec<f64> = x
                .iter()
                .zip(&grad)
                .zip(&ranges)
                .map(|((&xi, &gi), &(lo, hi))| (xi - lr * gi / norm).clamp(lo, hi))
                .collect();
            let p_trial = penalty(&trial);
            if p_trial < p {
                x = trial;
                p = p_trial;
                lr = (lr * 1.3).min(1.0e3);
            } else {
                lr *= 0.5;
                if lr < 1e-15 {
                    break;
                }
            }
        }
        if problem.is_satisfied(&x, opts.tolerance) {
            return Some(x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use absolver_linear::CmpOp;
    use absolver_num::Rational;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn qd(s: &str) -> Rational {
        s.parse().unwrap()
    }

    #[test]
    fn trivially_sat_circle() {
        // x² + y² ≤ 1.
        let mut p = NlProblem::new(2);
        p.add_constraint(NlConstraint::new(x().pow(2) + y().pow(2), CmpOp::Le, q(1)));
        p.bound_var(0, Interval::new(-2.0, 2.0));
        p.bound_var(1, Interval::new(-2.0, 2.0));
        match p.solve() {
            NlVerdict::Sat(w) => assert!(w[0] * w[0] + w[1] * w[1] <= 1.0 + 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn proven_unsat_circle_vs_halfplane() {
        // x² + y² ≤ 1 ∧ x ≥ 3 over a bounded box: rigorous UNSAT.
        let mut p = NlProblem::new(2);
        p.add_constraint(NlConstraint::new(x().pow(2) + y().pow(2), CmpOp::Le, q(1)));
        p.add_constraint(NlConstraint::new(x(), CmpOp::Ge, q(3)));
        p.bound_var(0, Interval::new(-10.0, 10.0));
        p.bound_var(1, Interval::new(-10.0, 10.0));
        assert_eq!(p.solve(), NlVerdict::Unsat);
    }

    #[test]
    fn paper_nonlinear_unsat_style() {
        // Mirror of the paper's `nonlinear_unsat` flavour:
        // x² ≥ 1 ∧ x² ≤ 1/4 on a box.
        let mut p = NlProblem::new(1);
        p.add_constraint(NlConstraint::new(x().pow(2), CmpOp::Ge, q(1)));
        p.add_constraint(NlConstraint::new(x().pow(2), CmpOp::Le, qd("0.25")));
        p.bound_var(0, Interval::new(-100.0, 100.0));
        assert_eq!(p.solve(), NlVerdict::Unsat);
    }

    #[test]
    fn division_constraint() {
        // The paper's running example constraint:
        // a·x + 3.5/(4 − y) + 2y ≥ 7.1 (vars: 0 = a, 1 = x, 2 = y).
        let a = Expr::var(0);
        let xx = Expr::var(1);
        let yy = Expr::var(2);
        let lhs =
            a * xx + Expr::constant(qd("3.5")) / (Expr::int(4) - yy.clone()) + Expr::int(2) * yy;
        let mut p = NlProblem::new(3);
        p.add_constraint(NlConstraint::new(lhs, CmpOp::Ge, qd("7.1")));
        for v in 0..3 {
            p.bound_var(v, Interval::new(-20.0, 20.0));
        }
        match p.solve() {
            NlVerdict::Sat(w) => {
                let val = w[0] * w[1] + 3.5 / (4.0 - w[2]) + 2.0 * w[2];
                assert!(val >= 7.1 - 1e-5, "witness value {val}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_on_parabola() {
        // y = x² ∧ y = x + 1 has solutions (golden-ratio-ish x).
        let mut p = NlProblem::new(2);
        p.add_constraint(NlConstraint::new(y() - x().pow(2), CmpOp::Eq, q(0)));
        p.add_constraint(NlConstraint::new(y() - x() - Expr::int(1), CmpOp::Eq, q(0)));
        p.bound_var(0, Interval::new(-10.0, 10.0));
        p.bound_var(1, Interval::new(-10.0, 10.0));
        match p.solve() {
            NlVerdict::Sat(w) => {
                assert!((w[1] - w[0] * w[0]).abs() < 1e-4);
                assert!((w[1] - w[0] - 1.0).abs() < 1e-4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transcendental_sat() {
        // sin(x) ≥ 1/2 over [0, π].
        let mut p = NlProblem::new(1);
        p.add_constraint(NlConstraint::new(x().sin(), CmpOp::Ge, qd("0.5")));
        p.bound_var(0, Interval::new(0.0, std::f64::consts::PI));
        match p.solve() {
            NlVerdict::Sat(w) => assert!(w[0].sin() >= 0.5 - 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transcendental_unsat() {
        // exp(x) ≤ 0 is impossible.
        let mut p = NlProblem::new(1);
        p.add_constraint(NlConstraint::new(x().exp(), CmpOp::Le, q(0)));
        p.bound_var(0, Interval::new(-50.0, 50.0));
        assert_eq!(p.solve(), NlVerdict::Unsat);
    }

    #[test]
    fn strict_inequalities_get_interior_points() {
        // x·y > 1 ∧ x < 0 → y < 0 region; witness must be strictly inside.
        let mut p = NlProblem::new(2);
        p.add_constraint(NlConstraint::new(x() * y(), CmpOp::Gt, q(1)));
        p.add_constraint(NlConstraint::new(x(), CmpOp::Lt, q(0)));
        p.bound_var(0, Interval::new(-10.0, 10.0));
        p.bound_var(1, Interval::new(-10.0, 10.0));
        match p.solve() {
            NlVerdict::Sat(w) => {
                assert!(w[0] * w[1] > 1.0);
                assert!(w[0] < 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn local_search_only_handles_unbounded() {
        // x³ = 27 with unbounded domain (branch-and-prune gets ENTIRE box;
        // the cascade must still find x = 3).
        let mut p = NlProblem::new(1);
        p.add_constraint(NlConstraint::new(x().pow(3), CmpOp::Eq, q(27)));
        let opts = NlOptions {
            max_boxes: 500,
            ..NlOptions::default()
        };
        match p.solve_with(&opts) {
            NlVerdict::Sat(w) => assert!((w[0] - 3.0).abs() < 1e-3),
            NlVerdict::Unknown => panic!("should find x=3"),
            NlVerdict::Unsat => panic!("x^3=27 is satisfiable"),
        }
    }

    #[test]
    fn ground_problems() {
        let mut sat = NlProblem::new(0);
        sat.add_constraint(NlConstraint::new(Expr::int(1), CmpOp::Le, q(2)));
        assert!(sat.solve().is_sat());
        let mut unsat = NlProblem::new(0);
        unsat.add_constraint(NlConstraint::new(Expr::int(3), CmpOp::Le, q(2)));
        assert_eq!(unsat.solve(), NlVerdict::Unsat);
    }

    #[test]
    fn verdict_accessors() {
        let v = NlVerdict::Sat(vec![1.0]);
        assert!(v.is_sat());
        assert_eq!(v.witness(), Some(&[1.0][..]));
        assert!(!NlVerdict::Unsat.is_sat());
        assert_eq!(NlVerdict::Unknown.witness(), None);
    }
}
