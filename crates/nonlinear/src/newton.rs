//! Univariate parametric interval Newton contraction.
//!
//! For an equality constraint `f(x₁, …, xₙ) = c` and one variable `v`,
//! the mean-value theorem gives, for any solution point with `xᵥ = x*`
//! and the other coordinates fixed at `y*`:
//!
//! ```text
//! 0 = f(m, y*) − c + f′ᵥ(ξ, y*)·(x* − m)      for some ξ between m and x*
//! ```
//!
//! so `x* ∈ m − F(m)/F′`, where `F(m)` is a sound enclosure of
//! `f(m, ·) − c` over the box (midpoint in `v`, full intervals elsewhere)
//! and `F′` encloses `∂f/∂v` over the whole box. Intersecting that Newton
//! set with the current domain of `v` never discards a solution — and an
//! empty intersection *proves* the box contains none.
//!
//! The MVT argument needs `f` smooth in `v` along the segment, which the
//! contractor enforces conservatively: it only fires when the interval
//! evaluation of the symbolic derivative is non-empty and **bounded**.
//! Every non-smooth or partial spot (`abs`/`sqrt`/`ln`/`÷` at their
//! boundaries) inflates the derivative enclosure to an infinite endpoint
//! through the interval division involved, which vetoes the step.

use crate::constraint::NlConstraint;
use crate::hc4::Contraction;
use crate::term::{self, TermTape};
use absolver_linear::CmpOp;
use absolver_num::Interval;
use std::sync::Arc;

/// An equality constraint compiled for Newton contraction: the LHS tape,
/// a sound RHS enclosure, and the simplified symbolic partials for each
/// mentioned variable — all shared `Arc`s into the global term arena, so
/// compiling the same constraint twice (across solves, sessions,
/// requests) reuses one symbolic differentiation.
#[derive(Debug, Clone)]
pub struct NewtonConstraint {
    tape: Arc<TermTape>,
    rhs: Interval,
    derivs: Vec<(usize, Arc<TermTape>)>,
}

impl NewtonConstraint {
    /// Compiles an equality constraint; returns `None` for inequalities
    /// (Newton contracts roots, not half-spaces) and for constraints
    /// without variables.
    pub fn build(c: &NlConstraint) -> Option<NewtonConstraint> {
        if c.op != CmpOp::Eq {
            return None;
        }
        if c.variables().is_empty() {
            return None;
        }
        let derivs = c
            .variables()
            .iter()
            .map(|&v| (v, term::derivative_tape(c.term(), v).1))
            .collect();
        Some(NewtonConstraint {
            tape: Arc::clone(c.tape()),
            // For Eq the target interval *is* the RHS enclosure.
            rhs: c.target_interval(),
            derivs,
        })
    }

    /// One Newton pass over every compiled variable, narrowing `boxes` in
    /// place. Sound: only regions provably free of roots are removed.
    pub fn revise(&self, boxes: &mut [Interval]) -> Contraction {
        let mut changed = false;
        for (v, deriv) in &self.derivs {
            let v = *v;
            let domain = boxes[v];
            if domain.is_empty() || domain.is_point() {
                continue;
            }
            let fp = deriv.eval_interval(boxes);
            if fp.is_empty() || !fp.lo().is_finite() || !fp.hi().is_finite() {
                continue; // possibly non-smooth in v: MVT not applicable
            }
            let m = domain.midpoint();
            let saved = boxes[v];
            boxes[v] = Interval::point(m);
            let fm = self.tape.eval_interval(boxes).sub(self.rhs);
            boxes[v] = saved;
            if fm.is_empty() {
                continue; // f undefined at the midpoint slice: no info
            }
            let center = Interval::point(m);
            let narrowed = if fp.contains(0.0) {
                let (neg, pos) = fm.div_ext(fp);
                match (neg, pos) {
                    (None, None) => {
                        // F′ is identically zero: f is constant in v, so a
                        // root exists iff 0 ∈ F(m).
                        if fm.contains(0.0) {
                            continue;
                        }
                        return Contraction::Empty;
                    }
                    (neg, pos) => {
                        let from = |q: Option<Interval>| match q {
                            Some(q) => center.sub(q).intersect(domain),
                            None => Interval::EMPTY,
                        };
                        from(neg).hull(from(pos))
                    }
                }
            } else {
                center.sub(fm.div(fp)).intersect(domain)
            };
            if narrowed.is_empty() {
                return Contraction::Empty;
            }
            if narrowed != domain {
                boxes[v] = narrowed;
                changed = true;
            }
        }
        if changed {
            Contraction::Changed
        } else {
            Contraction::Unchanged
        }
    }
}

/// Convenience wrapper: compiles and applies one Newton pass for a single
/// constraint. Inequality constraints report [`Contraction::Unchanged`].
pub fn newton_revise(constraint: &NlConstraint, boxes: &mut [Interval]) -> Contraction {
    match NewtonConstraint::build(constraint) {
        Some(nc) => nc.revise(boxes),
        None => Contraction::Unchanged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use absolver_num::Rational;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn newton_converges_on_sqrt2() {
        // x² = 2 over [1, 2]: quadratic convergence toward √2.
        let c = NlConstraint::new(x().pow(2), CmpOp::Eq, q(2));
        let mut bx = vec![Interval::new(1.0, 2.0)];
        for _ in 0..8 {
            if newton_revise(&c, &mut bx) != Contraction::Changed {
                break;
            }
        }
        let root = std::f64::consts::SQRT_2;
        assert!(bx[0].contains(root), "lost √2: {}", bx[0]);
        assert!(bx[0].width() < 1e-6, "no convergence: {}", bx[0]);
    }

    #[test]
    fn newton_proves_rootless_box_empty() {
        // x² = 2 over [3, 4]: no root, and the derivative 2x is bounded
        // away from zero, so Newton proves emptiness.
        let c = NlConstraint::new(x().pow(2), CmpOp::Eq, q(2));
        let mut bx = vec![Interval::new(3.0, 4.0)];
        assert_eq!(newton_revise(&c, &mut bx), Contraction::Empty);
    }

    #[test]
    fn newton_keeps_both_roots_when_derivative_straddles_zero() {
        // x² = 2 over [-2, 2]: f′ = 2x straddles 0; extended division must
        // keep both ±√2.
        let c = NlConstraint::new(x().pow(2), CmpOp::Eq, q(2));
        let mut bx = vec![Interval::new(-2.0, 2.0)];
        let out = newton_revise(&c, &mut bx);
        assert_ne!(out, Contraction::Empty);
        let root = std::f64::consts::SQRT_2;
        assert!(bx[0].contains(root) && bx[0].contains(-root), "{}", bx[0]);
    }

    #[test]
    fn newton_skips_inequalities() {
        let c = NlConstraint::new(x().pow(2), CmpOp::Le, q(2));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_eq!(newton_revise(&c, &mut bx), Contraction::Unchanged);
        assert_eq!(bx[0], Interval::new(-10.0, 10.0));
    }

    #[test]
    fn newton_multivariate_parametric() {
        // x·y = 6 with y ∈ [2.9, 3.1]: contracting x toward 6/y ≈ 2.
        let c = NlConstraint::new(x() * Expr::var(1), CmpOp::Eq, q(6));
        let mut bx = vec![Interval::new(0.1, 10.0), Interval::new(2.9, 3.1)];
        for _ in 0..10 {
            if newton_revise(&c, &mut bx) != Contraction::Changed {
                break;
            }
        }
        assert!(bx[0].contains(2.0), "2 = 6/3 must survive: {}", bx[0]);
        assert!(bx[0].width() < 2.0, "x must have narrowed: {}", bx[0]);
    }

    #[test]
    fn newton_vetoes_nonsmooth_abs() {
        // |x| = 1 over [-2, 2]: derivative enclosure x·1/|x| has an
        // unbounded endpoint (division by an interval containing zero), so
        // the step is vetoed and both roots ±1 survive untouched.
        let c = NlConstraint::new(x().abs(), CmpOp::Eq, q(1));
        let mut bx = vec![Interval::new(-2.0, 2.0)];
        let out = newton_revise(&c, &mut bx);
        assert_ne!(out, Contraction::Empty);
        assert!(bx[0].contains(1.0) && bx[0].contains(-1.0));
    }
}
