//! Nonlinear arithmetic solving for the ABsolver constraint-solving
//! library — the reproduction's stand-in for IPOPT.
//!
//! The crate provides:
//!
//! * [`Expr`] — nonlinear expression trees over `+ − * /` plus the paper's
//!   "straightforward extensions" (`sin`, `cos`, `exp`, `ln`, `sqrt`,
//!   `abs`, integer powers), with `f64` evaluation, sound interval
//!   evaluation, symbolic differentiation, and affine-form extraction.
//! * [`term`] — the global hash-consed term arena: structurally equal
//!   terms intern to one dense `u32` [`TermId`], every term carries a
//!   shared flat evaluation tape, and derivatives are memoised per
//!   `(term, var)` — the id layer every cache below keys on.
//! * [`NlConstraint`] — comparisons `expr ⋈ c` with point, tolerance and
//!   box (three-valued) evaluation, stored in interned form.
//! * [`hc4`] — the HC4 forward–backward interval contractor, the cheap
//!   first stage of the contractor [`cascade`] (HC4 → BC3 bound shaving
//!   → interval [`newton`]), backed by a bounded contraction [`cache`].
//! * [`NlProblem`] — feasibility of constraint conjunctions via rigorous
//!   [`branch_and_prune`] (which can *prove* UNSAT over a box) cascaded
//!   with an IPOPT-style multistart [`local_search`].
//!
//! ```
//! use absolver_linear::CmpOp;
//! use absolver_nonlinear::{Expr, NlConstraint, NlProblem};
//! use absolver_num::{Interval, Rational};
//!
//! // x² + y² ≤ 1 ∧ x + y ≥ 1: feasible (e.g. on the chord).
//! let x = Expr::var(0);
//! let y = Expr::var(1);
//! let mut p = NlProblem::new(2);
//! p.add_constraint(NlConstraint::new(
//!     x.clone().pow(2) + y.clone().pow(2),
//!     CmpOp::Le,
//!     Rational::one(),
//! ));
//! p.add_constraint(NlConstraint::new(x + y, CmpOp::Ge, Rational::one()));
//! p.bound_var(0, Interval::new(-2.0, 2.0));
//! p.bound_var(1, Interval::new(-2.0, 2.0));
//! assert!(p.solve().is_sat());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cascade;
mod constraint;
mod expr;
pub mod hc4;
pub mod newton;
mod solve;
pub mod term;

pub use cascade::{
    bc3_revise, cascade_contract, ActiveSet, Cascade, CascadeStats, ContractorConfig,
};
pub use constraint::{IntervalVerdict, NlConstraint};
pub use expr::{Expr, VarId};
pub use newton::{newton_revise, NewtonConstraint};
pub use solve::{
    branch_and_prune, branch_and_prune_stats, local_search, NlOptions, NlProblem, NlSearchStats,
    NlVerdict,
};
pub use term::{ArenaStats, ConstraintId, TermId, TermTape};

#[cfg(test)]
mod proptests {
    use super::*;
    use absolver_linear::CmpOp;
    use absolver_num::{Interval, Rational};
    use absolver_testkit::{gen, property, Gen};

    /// Random polynomial-ish expressions over 2 variables, at most
    /// `depth` operator levels deep.
    fn expr_gen(depth: u32) -> Gen<Expr> {
        let leaf = gen::one_of(vec![
            gen::ints(-5i64..=5).map(Expr::int),
            gen::ints(0usize..2).map(Expr::var),
        ]);
        if depth == 0 {
            return leaf;
        }
        let inner = expr_gen(depth - 1);
        let binop = |f: fn(Expr, Expr) -> Expr| {
            let inner = inner.clone();
            Gen::new(move |src| f(inner.generate(src), inner.generate(src)))
        };
        let pow = {
            let inner = inner.clone();
            let n = gen::ints(0i32..4);
            Gen::new(move |src| inner.generate(src).pow(n.generate(src)))
        };
        gen::one_of(vec![
            leaf,
            binop(|a, b| a + b),
            binop(|a, b| a - b),
            binop(|a, b| a * b),
            binop(|a, b| a / b),
            inner.clone().map(|a| -a),
            pow,
            inner.clone().map(Expr::sin),
            inner.clone().map(Expr::cos),
            inner.map(Expr::abs),
        ])
    }

    fn expr_strategy() -> Gen<Expr> {
        expr_gen(3)
    }

    /// Real-definedness: every subexpression evaluates to a finite value
    /// (IEEE `f64` can "recover" from an undefined subterm, e.g.
    /// `0 / (1/0) = 0`, where real arithmetic — and hence interval
    /// arithmetic — says undefined).
    fn real_defined(e: &Expr, point: &[f64]) -> bool {
        let own = e.eval_f64(point).is_finite();
        own && match e {
            Expr::Const(_) | Expr::Var(_) => true,
            Expr::Neg(a)
            | Expr::Pow(a, _)
            | Expr::Sin(a)
            | Expr::Cos(a)
            | Expr::Exp(a)
            | Expr::Ln(a)
            | Expr::Sqrt(a)
            | Expr::Abs(a) => real_defined(a, point),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                real_defined(a, point) && real_defined(b, point)
            }
        }
    }

    /// Body of `interval_encloses_points`, shared with the regression
    /// tests below.
    fn check_interval_encloses_point(e: &Expr, tx: f64, ty: f64) {
        let bx = [Interval::new(-3.0, 2.0), Interval::new(0.5, 4.0)];
        let px = -3.0 + tx * 5.0;
        let py = 0.5 + ty * 3.5;
        if real_defined(e, &[px, py]) {
            let v = e.eval_f64(&[px, py]);
            let iv = e.eval_interval(&bx);
            assert!(iv.contains(v), "{v} escaped {iv} for {e}");
        }
    }

    /// Historical counterexample (from the proptest era): cos of a
    /// division used to lose enclosure tightness near the period
    /// boundary.
    #[test]
    fn regression_cos_of_division_enclosure() {
        let e = Expr::cos(Expr::var(0) / Expr::int(-2));
        check_interval_encloses_point(&e, 0.7366688729558212, 0.0);
    }

    /// Historical counterexample (from the proptest era): IEEE floats
    /// "recover" from the undefined subterm in `0 / (1/0)`, evaluating
    /// to 0, while real (and interval) arithmetic says undefined —
    /// `real_defined` must reject the point rather than comparing the
    /// two semantics.
    #[test]
    fn regression_division_by_infinite_subterm() {
        let e = Expr::int(0) / (Expr::int(1) / Expr::int(0));
        assert!(!real_defined(&e, &[-3.0, 0.5]));
        check_interval_encloses_point(&e, 0.0, 0.0);
    }

    property! {
        #![cases = 96]

        /// Interval evaluation must enclose point evaluation everywhere the
        /// expression is real-defined.
        fn interval_encloses_points(e in expr_strategy(), tx in gen::f64_unit(), ty in gen::f64_unit()) {
            check_interval_encloses_point(&e, tx, ty);
        }

        /// Simplification must preserve point semantics.
        fn simplify_preserves_value(e in expr_strategy(), tx in gen::f64_unit(), ty in gen::f64_unit()) {
            let px = -2.0 + tx * 4.0;
            let py = -2.0 + ty * 4.0;
            let v1 = e.eval_f64(&[px, py]);
            let v2 = e.simplify().eval_f64(&[px, py]);
            if v1.is_finite() && v2.is_finite() {
                let scale = v1.abs().max(1.0);
                assert!((v1 - v2).abs() / scale < 1e-9, "{e}: {v1} vs {v2}");
            }
        }

        /// Derivatives must match numeric differentiation on smooth points.
        fn derivative_matches_finite_difference(e in expr_strategy(), tx in gen::f64_in(0.1, 0.9), ty in gen::f64_in(0.1, 0.9)) {
            let px = -1.0 + tx * 2.0;
            let py = -1.0 + ty * 2.0;
            let h = 1e-6;
            let d = e.derivative(0);
            let sym = d.eval_f64(&[px, py]);
            let f1 = e.eval_f64(&[px + h, py]);
            let f0 = e.eval_f64(&[px - h, py]);
            let num = (f1 - f0) / (2.0 * h);
            // Only check smooth, well-conditioned samples.
            if sym.is_finite() && num.is_finite() && f1.abs() < 1e6 && f0.abs() < 1e6 {
                let scale = sym.abs().max(num.abs()).max(1.0);
                assert!(
                    (sym - num).abs() / scale < 1e-3,
                    "{e}: symbolic {sym} vs numeric {num} at ({px},{py})"
                );
            }
        }

        /// HC4 propagation never removes a known solution.
        fn hc4_keeps_known_solutions(e in expr_strategy(), tx in gen::f64_unit(), ty in gen::f64_unit()) {
            let px = -2.0 + tx * 4.0;
            let py = -2.0 + ty * 4.0;
            absolver_testkit::assume!(real_defined(&e, &[px, py]));
            let v = e.eval_f64(&[px, py]);
            absolver_testkit::assume!(v.abs() < 1e9);
            // Build a constraint this point definitely satisfies: e ≤ ⌈v⌉ + 1.
            let rhs = Rational::from_f64(v.ceil() + 1.0).unwrap();
            let c = NlConstraint::new(e, CmpOp::Le, rhs);
            let mut bx = vec![Interval::new(-2.0, 2.0), Interval::new(-2.0, 2.0)];
            let out = hc4::propagate(&[c], &mut bx, 10);
            assert_ne!(out, hc4::Contraction::Empty);
            assert!(bx[0].contains(px), "x={px} pruned from {}", bx[0]);
            assert!(bx[1].contains(py), "y={py} pruned from {}", bx[1]);
        }
    }
}
