//! The HC4 interval contractor.
//!
//! `HC4-revise` is the classic forward–backward constraint-propagation
//! operator: a forward pass computes a sound interval for every
//! subexpression, and a backward pass pushes the constraint's target
//! interval down, narrowing variable domains. Applied to a fixpoint over a
//! conjunction of constraints it prunes boxes without losing any
//! solution, which is the engine behind the branch-and-prune prover in
//! [`crate::solve`].
//!
//! Both passes run over the constraint's interned [`TermTape`]: the
//! forward pass is a single index loop over the postorder ops, the
//! backward pass a single reverse loop writing per-node targets into a
//! scratch array — no tree recursion, no per-call allocation. Child
//! targets depend only on forward intervals, so the loop computes exactly
//! the targets the old recursive traversal did, in a different (but
//! equivalent) order: variable-domain intersections commute, and a box
//! empties under one visit order iff it empties under the other.

use crate::constraint::NlConstraint;
use crate::term::{TapeOp, TermTape};
use absolver_num::Interval;

/// Result of contracting a box against one or more constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contraction {
    /// The box is proven to contain no solution.
    Empty,
    /// The box was narrowed.
    Changed,
    /// Nothing was learnt.
    Unchanged,
}

/// Reusable arenas for allocation-free HC4 revises. The forward pass
/// stores one interval per tape instruction; the backward pass stores one
/// target per instruction and addresses children by index arithmetic
/// (`right = idx − 1`, `left = idx − 1 − size[right]`, sizes precomputed
/// on the tape). One scratch per cascade engine keeps the hot path free
/// of per-call heap traffic.
#[derive(Debug, Default)]
pub struct ReviseScratch {
    iv: Vec<Interval>,
    tgt: Vec<Interval>,
}

/// Forward pass: fills `iv` with a sound enclosure per tape instruction.
fn forward(tape: &TermTape, boxes: &[Interval], iv: &mut Vec<Interval>) {
    iv.clear();
    iv.reserve(tape.len());
    for (i, op) in tape.ops.iter().enumerate() {
        let v = match *op {
            TapeOp::Const(k) => tape.const_iv[k as usize],
            TapeOp::Var(v) => boxes.get(v as usize).copied().unwrap_or(Interval::ENTIRE),
            TapeOp::Neg => iv[i - 1].neg(),
            TapeOp::Pow(n) => iv[i - 1].powi(n),
            TapeOp::Sin => iv[i - 1].sin(),
            TapeOp::Cos => iv[i - 1].cos(),
            TapeOp::Exp => iv[i - 1].exp(),
            TapeOp::Ln => iv[i - 1].ln(),
            TapeOp::Sqrt => iv[i - 1].sqrt(),
            TapeOp::Abs => iv[i - 1].abs(),
            TapeOp::Add | TapeOp::Sub | TapeOp::Mul | TapeOp::Div => {
                let r = i - 1;
                let l = r - tape.size[r] as usize;
                let (liv, riv) = (iv[l], iv[r]);
                match *op {
                    TapeOp::Add => liv.add(riv),
                    TapeOp::Sub => liv.sub(riv),
                    TapeOp::Mul => liv.mul(riv),
                    TapeOp::Div => liv.div(riv),
                    _ => unreachable!(),
                }
            }
        };
        iv.push(v);
    }
}

/// Interval cube root with outward widening (safe for backward passes).
fn cbrt_outward(iv: Interval) -> Interval {
    if iv.is_empty() {
        return Interval::EMPTY;
    }
    let lo = iv.lo().cbrt();
    let hi = iv.hi().cbrt();
    let lo = if lo.is_finite() {
        lo.next_down().next_down()
    } else {
        lo
    };
    let hi = if hi.is_finite() {
        hi.next_up().next_up()
    } else {
        hi
    };
    Interval::checked(lo, hi)
}

/// Signed nth root (odd `n`) of a single value, for [`nth_root_outward`].
fn signed_root(v: f64, n: i32) -> f64 {
    if v >= 0.0 {
        v.powf(1.0 / n as f64)
    } else {
        -(-v).powf(1.0 / n as f64)
    }
}

/// Interval nth root with generous outward widening (`powf` is not
/// correctly rounded, so widen four ulps per endpoint). For odd `n` the
/// root is signed and monotone over the whole line; callers handle the
/// even case by clipping to the non-negative range first.
fn nth_root_outward(iv: Interval, n: i32) -> Interval {
    debug_assert!(n >= 2);
    if iv.is_empty() {
        return Interval::EMPTY;
    }
    let widen_down = |mut v: f64| {
        for _ in 0..4 {
            if v.is_finite() {
                v = v.next_down();
            }
        }
        v
    };
    let widen_up = |mut v: f64| {
        for _ in 0..4 {
            if v.is_finite() {
                v = v.next_up();
            }
        }
        v
    };
    let lo = signed_root(iv.lo(), n);
    let hi = signed_root(iv.hi(), n);
    Interval::checked(widen_down(lo.min(hi)), widen_up(lo.max(hi)))
}

/// Backward propagation over the tape: narrows variable domains so every
/// subterm can still produce a value in its target. Returns `false` when
/// a domain (or a subterm's feasible range) becomes empty. Runs in
/// reverse postorder, so each node's unique parent has written its target
/// before it is visited; all child targets are functions of the forward
/// intervals alone.
fn backward(
    tape: &TermTape,
    root_target: Interval,
    boxes: &mut [Interval],
    s: &mut ReviseScratch,
    changed: &mut bool,
) -> bool {
    let n = tape.len();
    s.tgt.clear();
    s.tgt.resize(n, Interval::ENTIRE);
    s.tgt[n - 1] = root_target;
    for idx in (0..n).rev() {
        let target = s.tgt[idx].intersect(s.iv[idx]);
        if target.is_empty() {
            return false;
        }
        match tape.ops[idx] {
            TapeOp::Const(_) => {}
            TapeOp::Var(v) => {
                let v = v as usize;
                let narrowed = boxes[v].intersect(target);
                if narrowed.is_empty() {
                    return false;
                }
                if narrowed != boxes[v] {
                    boxes[v] = narrowed;
                    *changed = true;
                }
            }
            TapeOp::Neg => s.tgt[idx - 1] = target.neg(),
            TapeOp::Add => {
                let r = idx - 1;
                let l = r - tape.size[r] as usize;
                let (ia, ib) = (s.iv[l], s.iv[r]);
                s.tgt[l] = target.sub(ib);
                s.tgt[r] = target.sub(ia);
            }
            TapeOp::Sub => {
                let r = idx - 1;
                let l = r - tape.size[r] as usize;
                let (ia, ib) = (s.iv[l], s.iv[r]);
                s.tgt[l] = target.add(ib);
                s.tgt[r] = ia.sub(target);
            }
            TapeOp::Mul => {
                let r = idx - 1;
                let l = r - tape.size[r] as usize;
                let (ia, ib) = (s.iv[l], s.iv[r]);
                // a = target / b (conservative when b straddles zero).
                s.tgt[l] = if ib.contains(0.0) && target.contains(0.0) {
                    ia // no information
                } else {
                    target.div(ib)
                };
                s.tgt[r] = if ia.contains(0.0) && target.contains(0.0) {
                    ib
                } else {
                    target.div(ia)
                };
            }
            TapeOp::Div => {
                let r = idx - 1;
                let l = r - tape.size[r] as usize;
                let (ia, ib) = (s.iv[l], s.iv[r]);
                // a = target · b; b = a / target.
                s.tgt[l] = target.mul(ib);
                s.tgt[r] = if target.contains(0.0) {
                    ib // a/b ∋ 0 gives no bound on b
                } else {
                    ia.div(target)
                };
            }
            TapeOp::Pow(p) => {
                let c = idx - 1;
                s.tgt[c] = match p {
                    0 => s.iv[c], // no information
                    1 => target,
                    2 => {
                        let root = target.sqrt();
                        if root.is_empty() {
                            return false;
                        }
                        root.hull(root.neg())
                    }
                    3 => cbrt_outward(target),
                    p if p > 3 && p % 2 == 1 => nth_root_outward(target, p),
                    p if p > 3 => {
                        // Even power: xⁿ ≥ 0, root branches mirror around 0.
                        let nonneg = target.intersect(Interval::new(0.0, f64::INFINITY));
                        if nonneg.is_empty() {
                            return false;
                        }
                        let root = nth_root_outward(nonneg, p);
                        root.hull(root.neg())
                    }
                    _ => s.iv[c], // negative powers: skip backward step (sound)
                };
            }
            TapeOp::Exp => {
                let child_target = target.ln();
                if child_target.is_empty() {
                    // exp(x) can only be positive; a non-positive target is
                    // already ruled out by the initial intersection unless
                    // the target clipped to exactly {0⁻ boundary}; treat as
                    // empty.
                    return false;
                }
                s.tgt[idx - 1] = child_target;
            }
            TapeOp::Ln => s.tgt[idx - 1] = target.exp(),
            TapeOp::Sqrt => {
                let nonneg = target.intersect(Interval::new(0.0, f64::INFINITY));
                if nonneg.is_empty() {
                    return false;
                }
                s.tgt[idx - 1] = nonneg.powi(2);
            }
            TapeOp::Abs => {
                let nonneg = target.intersect(Interval::new(0.0, f64::INFINITY));
                if nonneg.is_empty() {
                    return false;
                }
                s.tgt[idx - 1] = nonneg.hull(nonneg.neg());
            }
            // Periodic functions: keep the forward check, skip backward
            // narrowing (always sound) — the child keeps its own forward
            // interval as target so deeper nodes still get their
            // consistency check.
            TapeOp::Sin | TapeOp::Cos => {
                let c = idx - 1;
                s.tgt[c] = s.iv[c];
            }
        }
    }
    true
}

/// Applies HC4-revise for a single constraint, narrowing `boxes` in place.
pub fn hc4_revise(constraint: &NlConstraint, boxes: &mut [Interval]) -> Contraction {
    let mut scratch = ReviseScratch::default();
    hc4_revise_scratch(
        constraint,
        constraint.target_interval(),
        boxes,
        &mut scratch,
    )
    .0
}

/// Allocation-free HC4-revise using a caller-owned [`ReviseScratch`] and a
/// precomputed `target` (= [`NlConstraint::target_interval`], hoisted out
/// of the hot loop because the rational→interval conversion is not free).
///
/// Also returns the *forward enclosure* of the constraint's LHS over the
/// input box — callers classify it against the RHS to detect entailment
/// (the constraint holding over the whole box) at no extra cost.
pub fn hc4_revise_scratch(
    constraint: &NlConstraint,
    target: Interval,
    boxes: &mut [Interval],
    scratch: &mut ReviseScratch,
) -> (Contraction, Interval) {
    let tape = constraint.tape();
    forward(tape, boxes, &mut scratch.iv);
    let lhs = scratch.iv[tape.len() - 1];
    if lhs.is_empty() {
        return (Contraction::Empty, lhs);
    }
    let mut changed = false;
    if !backward(tape, target, boxes, scratch, &mut changed) {
        return (Contraction::Empty, lhs);
    }
    let out = if changed {
        Contraction::Changed
    } else {
        Contraction::Unchanged
    };
    (out, lhs)
}

/// Propagates a conjunction of constraints to a fixpoint (bounded by
/// `max_rounds` sweeps), narrowing `boxes` in place.
pub fn propagate(
    constraints: &[NlConstraint],
    boxes: &mut [Interval],
    max_rounds: usize,
) -> Contraction {
    propagate_counted(constraints, boxes, max_rounds).0
}

/// Like [`propagate`], but also reports how many [`hc4_revise`] calls
/// actually narrowed a domain — the contraction count the observability
/// layer attributes to the nonlinear phase. An emptied box counts too
/// (it is the most effective contraction there is).
pub fn propagate_counted(
    constraints: &[NlConstraint],
    boxes: &mut [Interval],
    max_rounds: usize,
) -> (Contraction, u64) {
    let mut contractions = 0u64;
    let mut any_change = false;
    for _ in 0..max_rounds {
        let mut changed = false;
        for c in constraints {
            match hc4_revise(c, boxes) {
                Contraction::Empty => return (Contraction::Empty, contractions + 1),
                Contraction::Changed => {
                    contractions += 1;
                    changed = true;
                }
                Contraction::Unchanged => {}
            }
        }
        if !changed {
            break;
        }
        any_change = true;
    }
    let outcome = if any_change {
        Contraction::Changed
    } else {
        Contraction::Unchanged
    };
    (outcome, contractions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use absolver_linear::CmpOp;
    use absolver_num::Rational;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn contracts_simple_bound() {
        // x + 1 ≤ 3 over x ∈ [0, 10] → x ∈ [0, 2].
        let c = NlConstraint::new(x() + Expr::int(1), CmpOp::Le, q(3));
        let mut bx = vec![Interval::new(0.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Changed);
        assert!(bx[0].hi() <= 2.0 + 1e-9);
        assert!(bx[0].lo() == 0.0);
    }

    #[test]
    fn contracts_square() {
        // x² ≤ 4 over x ∈ [-10, 10] → x ∈ [-2, 2].
        let c = NlConstraint::new(x().pow(2), CmpOp::Le, q(4));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Changed);
        assert!(bx[0].lo() >= -2.0 - 1e-9 && bx[0].hi() <= 2.0 + 1e-9);
    }

    #[test]
    fn detects_empty() {
        // x² < -1 is impossible.
        let c = NlConstraint::new(x().pow(2), CmpOp::Lt, q(-1));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Empty);
    }

    #[test]
    fn never_loses_solutions() {
        // x·y = 6 ∧ box [1,10]×[1,10]; the point (2,3) must survive any
        // amount of propagation.
        let c = NlConstraint::new(x() * y(), CmpOp::Eq, q(6));
        let mut bx = vec![Interval::new(1.0, 10.0), Interval::new(1.0, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].contains(2.0));
        assert!(bx[1].contains(3.0));
        // And the contraction is real: y = 6/x ≤ 6 for x ≥ 1.
        assert!(bx[1].hi() <= 6.0 + 1e-9);
    }

    #[test]
    fn propagates_through_division() {
        // 10 / x ≥ 5 over x ∈ [0.1, 100] → x ≤ 2.
        let c = NlConstraint::new(Expr::int(10) / x(), CmpOp::Ge, q(5));
        let mut bx = vec![Interval::new(0.1, 100.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].hi() <= 2.0 + 1e-6, "{}", bx[0]);
        assert!(bx[0].contains(1.0));
    }

    #[test]
    fn conjunction_fixpoint() {
        // x + y = 10 ∧ x − y = 2. HC4 alone cannot intersect coupled
        // equations down to the solution point (that is what branching is
        // for), but it must contract, keep the solution (6, 4), and report
        // a fixpoint rather than looping forever.
        let c1 = NlConstraint::new(x() + y(), CmpOp::Eq, q(10));
        let c2 = NlConstraint::new(x() - y(), CmpOp::Eq, q(2));
        let mut bx = vec![Interval::new(-100.0, 100.0), Interval::new(-100.0, 100.0)];
        let out = propagate(&[c1, c2], &mut bx, 200);
        assert_ne!(out, Contraction::Empty);
        assert!(bx[0].contains(6.0));
        assert!(bx[1].contains(4.0));
        assert!(bx[0].width() < 200.0, "x narrowed to {}", bx[0]);
        assert!(bx[1].width() < 200.0, "y narrowed to {}", bx[1]);
    }

    #[test]
    fn exp_and_ln_backward() {
        // exp(x) ≤ 1 → x ≤ 0.
        let c = NlConstraint::new(x().exp(), CmpOp::Le, q(1));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].hi() <= 1e-9);
        // ln(x) ≥ 0 → x ≥ 1.
        let c = NlConstraint::new(x().ln(), CmpOp::Ge, q(0));
        let mut bx = vec![Interval::new(0.01, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].lo() >= 1.0 - 1e-9);
    }

    #[test]
    fn abs_backward() {
        // |x| ≤ 3 → x ∈ [-3, 3].
        let c = NlConstraint::new(x().abs(), CmpOp::Le, q(3));
        let mut bx = vec![Interval::new(-100.0, 100.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].lo() >= -3.0 - 1e-9 && bx[0].hi() <= 3.0 + 1e-9);
    }

    #[test]
    fn sin_forward_check_only() {
        // sin(x) ≥ 2 is impossible.
        let c = NlConstraint::new(x().sin(), CmpOp::Ge, q(2));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Empty);
        // sin(x) ≤ 1 teaches nothing but must not lose solutions.
        let c = NlConstraint::new(x().sin(), CmpOp::Le, q(1));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_ne!(hc4_revise(&c, &mut bx), Contraction::Empty);
        assert!(bx[0].contains(0.0));
    }

    #[test]
    fn cube_backward() {
        // x³ ≥ 8 → x ≥ 2.
        let c = NlConstraint::new(x().pow(3), CmpOp::Ge, q(8));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].lo() >= 2.0 - 1e-6, "{}", bx[0]);
    }

    #[test]
    fn higher_power_backward() {
        // x⁴ ≤ 16 → x ∈ [-2, 2], keeping the whole solution set.
        let c = NlConstraint::new(x().pow(4), CmpOp::Le, q(16));
        let mut bx = vec![Interval::new(-100.0, 100.0)];
        propagate(std::slice::from_ref(&c), &mut bx, 10);
        assert!(
            bx[0].lo() >= -2.0 - 1e-6 && bx[0].hi() <= 2.0 + 1e-6,
            "{}",
            bx[0]
        );
        assert!(bx[0].contains(2.0) && bx[0].contains(-2.0));
        // x⁵ ≥ 32 → x ≥ 2 (odd roots are signed).
        let c = NlConstraint::new(x().pow(5), CmpOp::Ge, q(32));
        let mut bx = vec![Interval::new(-100.0, 100.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].lo() >= 2.0 - 1e-6, "{}", bx[0]);
        assert!(bx[0].contains(2.0));
        // x⁶ ≥ 64 over a negative-only domain → x ≤ -2 survives.
        let c = NlConstraint::new(x().pow(6), CmpOp::Ge, q(64));
        let mut bx = vec![Interval::new(-100.0, -1.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].contains(-3.0));
    }

    #[test]
    fn shared_variable_narrows_from_both_occurrences() {
        // |x| + x ≤ 1 over [0, 10]: the variable appears twice and both
        // backward visits (through the abs branch and the bare occurrence)
        // must intersect into the same live domain, giving x ≤ 1.
        let e = x().abs() + x();
        let c = NlConstraint::new(e, CmpOp::Le, q(1));
        let mut bx = vec![Interval::new(0.0, 10.0)];
        assert_ne!(hc4_revise(&c, &mut bx), Contraction::Empty);
        assert!(bx[0].hi() <= 1.0 + 1e-9, "{}", bx[0]);
        assert!(bx[0].contains(0.5), "½ satisfies |x|+x ≤ 1: {}", bx[0]);
    }
}
