//! The HC4 interval contractor.
//!
//! `HC4-revise` is the classic forward–backward constraint-propagation
//! operator on expression trees: a forward pass computes a sound interval
//! for every subexpression, and a backward pass pushes the constraint's
//! target interval down the tree, narrowing variable domains. Applied to a
//! fixpoint over a conjunction of constraints it prunes boxes without
//! losing any solution, which is the engine behind the branch-and-prune
//! prover in [`crate::solve`].

use crate::constraint::NlConstraint;
use crate::expr::Expr;
use absolver_num::Interval;

/// Result of contracting a box against one or more constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contraction {
    /// The box is proven to contain no solution.
    Empty,
    /// The box was narrowed.
    Changed,
    /// Nothing was learnt.
    Unchanged,
}

/// Forward-evaluated expression tree (one interval per node).
#[derive(Debug)]
struct EvalTree {
    iv: Interval,
    kids: Vec<EvalTree>,
}

fn forward(e: &Expr, boxes: &[Interval]) -> EvalTree {
    let (iv, kids) = match e {
        Expr::Const(_) | Expr::Var(_) => (e.eval_interval(boxes), Vec::new()),
        Expr::Neg(a) => {
            let t = forward(a, boxes);
            (t.iv.neg(), vec![t])
        }
        Expr::Add(a, b) => {
            let (ta, tb) = (forward(a, boxes), forward(b, boxes));
            (ta.iv.add(tb.iv), vec![ta, tb])
        }
        Expr::Sub(a, b) => {
            let (ta, tb) = (forward(a, boxes), forward(b, boxes));
            (ta.iv.sub(tb.iv), vec![ta, tb])
        }
        Expr::Mul(a, b) => {
            let (ta, tb) = (forward(a, boxes), forward(b, boxes));
            (ta.iv.mul(tb.iv), vec![ta, tb])
        }
        Expr::Div(a, b) => {
            let (ta, tb) = (forward(a, boxes), forward(b, boxes));
            (ta.iv.div(tb.iv), vec![ta, tb])
        }
        Expr::Pow(a, n) => {
            let t = forward(a, boxes);
            (t.iv.powi(*n), vec![t])
        }
        Expr::Sin(a) => {
            let t = forward(a, boxes);
            (t.iv.sin(), vec![t])
        }
        Expr::Cos(a) => {
            let t = forward(a, boxes);
            (t.iv.cos(), vec![t])
        }
        Expr::Exp(a) => {
            let t = forward(a, boxes);
            (t.iv.exp(), vec![t])
        }
        Expr::Ln(a) => {
            let t = forward(a, boxes);
            (t.iv.ln(), vec![t])
        }
        Expr::Sqrt(a) => {
            let t = forward(a, boxes);
            (t.iv.sqrt(), vec![t])
        }
        Expr::Abs(a) => {
            let t = forward(a, boxes);
            (t.iv.abs(), vec![t])
        }
    };
    EvalTree { iv, kids }
}

/// Interval cube root with outward widening (safe for backward passes).
fn cbrt_outward(iv: Interval) -> Interval {
    if iv.is_empty() {
        return Interval::EMPTY;
    }
    let lo = iv.lo().cbrt();
    let hi = iv.hi().cbrt();
    let lo = if lo.is_finite() {
        lo.next_down().next_down()
    } else {
        lo
    };
    let hi = if hi.is_finite() {
        hi.next_up().next_up()
    } else {
        hi
    };
    Interval::checked(lo, hi)
}

/// Backward propagation: narrows variable domains so the subtree can still
/// produce a value in `target`. Returns `false` when a domain becomes
/// empty (the constraint is infeasible in the box).
fn backward(e: &Expr, t: &EvalTree, target: Interval, boxes: &mut [Interval]) -> bool {
    let target = target.intersect(t.iv);
    if target.is_empty() {
        return false;
    }
    match e {
        Expr::Const(_) => true,
        Expr::Var(v) => {
            let narrowed = boxes[*v].intersect(target);
            if narrowed.is_empty() {
                return false;
            }
            boxes[*v] = narrowed;
            true
        }
        Expr::Neg(a) => backward(a, &t.kids[0], target.neg(), boxes),
        Expr::Add(a, b) => {
            let (ia, ib) = (t.kids[0].iv, t.kids[1].iv);
            backward(a, &t.kids[0], target.sub(ib), boxes)
                && backward(b, &t.kids[1], target.sub(ia), boxes)
        }
        Expr::Sub(a, b) => {
            let (ia, ib) = (t.kids[0].iv, t.kids[1].iv);
            backward(a, &t.kids[0], target.add(ib), boxes)
                && backward(b, &t.kids[1], ia.sub(target), boxes)
        }
        Expr::Mul(a, b) => {
            let (ia, ib) = (t.kids[0].iv, t.kids[1].iv);
            // a = target / b (conservative when b straddles zero).
            let ta = if ib.contains(0.0) && target.contains(0.0) {
                ia // no information
            } else {
                target.div(ib)
            };
            let tb = if ia.contains(0.0) && target.contains(0.0) {
                ib
            } else {
                target.div(ia)
            };
            backward(a, &t.kids[0], ta, boxes) && backward(b, &t.kids[1], tb, boxes)
        }
        Expr::Div(a, b) => {
            let (ia, ib) = (t.kids[0].iv, t.kids[1].iv);
            // a = target · b; b = a / target.
            let ta = target.mul(ib);
            let tb = if target.contains(0.0) {
                ib // a/b ∋ 0 gives no bound on b
            } else {
                ia.div(target)
            };
            backward(a, &t.kids[0], ta, boxes) && backward(b, &t.kids[1], tb, boxes)
        }
        Expr::Pow(a, n) => {
            let child_target = match *n {
                0 => t.kids[0].iv, // no information
                1 => target,
                2 => {
                    let root = target.sqrt();
                    if root.is_empty() {
                        return false;
                    }
                    root.hull(root.neg())
                }
                3 => cbrt_outward(target),
                _ => t.kids[0].iv, // higher powers: skip backward step (sound)
            };
            backward(a, &t.kids[0], child_target, boxes)
        }
        Expr::Exp(a) => {
            let child_target = target.ln();
            if child_target.is_empty() {
                // exp(x) can only be positive; a non-positive target is
                // already ruled out by the initial intersection unless the
                // target clipped to exactly {0⁻ boundary}; treat as empty.
                return false;
            }
            backward(a, &t.kids[0], child_target, boxes)
        }
        Expr::Ln(a) => backward(a, &t.kids[0], target.exp(), boxes),
        Expr::Sqrt(a) => {
            let nonneg = target.intersect(Interval::new(0.0, f64::INFINITY));
            if nonneg.is_empty() {
                return false;
            }
            backward(a, &t.kids[0], nonneg.powi(2), boxes)
        }
        Expr::Abs(a) => {
            let nonneg = target.intersect(Interval::new(0.0, f64::INFINITY));
            if nonneg.is_empty() {
                return false;
            }
            backward(a, &t.kids[0], nonneg.hull(nonneg.neg()), boxes)
        }
        // Periodic functions: keep the forward check, skip backward
        // narrowing (always sound).
        Expr::Sin(a) | Expr::Cos(a) => backward_noop(a, &t.kids[0], boxes),
    }
}

fn backward_noop(e: &Expr, t: &EvalTree, boxes: &mut [Interval]) -> bool {
    // Still recurse with the child's own interval so deeper nodes get their
    // consistency check, but learn nothing new.
    backward(e, t, t.iv, boxes)
}

/// Applies HC4-revise for a single constraint, narrowing `boxes` in place.
pub fn hc4_revise(constraint: &NlConstraint, boxes: &mut [Interval]) -> Contraction {
    let before = boxes.to_vec();
    let tree = forward(&constraint.expr, boxes);
    if tree.iv.is_empty() {
        return Contraction::Empty;
    }
    if !backward(&constraint.expr, &tree, constraint.target_interval(), boxes) {
        return Contraction::Empty;
    }
    if boxes.iter().zip(&before).any(|(a, b)| a != b) {
        Contraction::Changed
    } else {
        Contraction::Unchanged
    }
}

/// Propagates a conjunction of constraints to a fixpoint (bounded by
/// `max_rounds` sweeps), narrowing `boxes` in place.
pub fn propagate(
    constraints: &[NlConstraint],
    boxes: &mut [Interval],
    max_rounds: usize,
) -> Contraction {
    propagate_counted(constraints, boxes, max_rounds).0
}

/// Like [`propagate`], but also reports how many [`hc4_revise`] calls
/// actually narrowed a domain — the contraction count the observability
/// layer attributes to the nonlinear phase. An emptied box counts too
/// (it is the most effective contraction there is).
pub fn propagate_counted(
    constraints: &[NlConstraint],
    boxes: &mut [Interval],
    max_rounds: usize,
) -> (Contraction, u64) {
    let mut contractions = 0u64;
    let mut any_change = false;
    for _ in 0..max_rounds {
        let mut changed = false;
        for c in constraints {
            match hc4_revise(c, boxes) {
                Contraction::Empty => return (Contraction::Empty, contractions + 1),
                Contraction::Changed => {
                    contractions += 1;
                    changed = true;
                }
                Contraction::Unchanged => {}
            }
        }
        if !changed {
            break;
        }
        any_change = true;
    }
    let outcome = if any_change {
        Contraction::Changed
    } else {
        Contraction::Unchanged
    };
    (outcome, contractions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_linear::CmpOp;
    use absolver_num::Rational;

    fn x() -> Expr {
        Expr::var(0)
    }

    fn y() -> Expr {
        Expr::var(1)
    }

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn contracts_simple_bound() {
        // x + 1 ≤ 3 over x ∈ [0, 10] → x ∈ [0, 2].
        let c = NlConstraint::new(x() + Expr::int(1), CmpOp::Le, q(3));
        let mut bx = vec![Interval::new(0.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Changed);
        assert!(bx[0].hi() <= 2.0 + 1e-9);
        assert!(bx[0].lo() == 0.0);
    }

    #[test]
    fn contracts_square() {
        // x² ≤ 4 over x ∈ [-10, 10] → x ∈ [-2, 2].
        let c = NlConstraint::new(x().pow(2), CmpOp::Le, q(4));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Changed);
        assert!(bx[0].lo() >= -2.0 - 1e-9 && bx[0].hi() <= 2.0 + 1e-9);
    }

    #[test]
    fn detects_empty() {
        // x² < -1 is impossible.
        let c = NlConstraint::new(x().pow(2), CmpOp::Lt, q(-1));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Empty);
    }

    #[test]
    fn never_loses_solutions() {
        // x·y = 6 ∧ box [1,10]×[1,10]; the point (2,3) must survive any
        // amount of propagation.
        let c = NlConstraint::new(x() * y(), CmpOp::Eq, q(6));
        let mut bx = vec![Interval::new(1.0, 10.0), Interval::new(1.0, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].contains(2.0));
        assert!(bx[1].contains(3.0));
        // And the contraction is real: y = 6/x ≤ 6 for x ≥ 1.
        assert!(bx[1].hi() <= 6.0 + 1e-9);
    }

    #[test]
    fn propagates_through_division() {
        // 10 / x ≥ 5 over x ∈ [0.1, 100] → x ≤ 2.
        let c = NlConstraint::new(Expr::int(10) / x(), CmpOp::Ge, q(5));
        let mut bx = vec![Interval::new(0.1, 100.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].hi() <= 2.0 + 1e-6, "{}", bx[0]);
        assert!(bx[0].contains(1.0));
    }

    #[test]
    fn conjunction_fixpoint() {
        // x + y = 10 ∧ x − y = 2. HC4 alone cannot intersect coupled
        // equations down to the solution point (that is what branching is
        // for), but it must contract, keep the solution (6, 4), and report
        // a fixpoint rather than looping forever.
        let c1 = NlConstraint::new(x() + y(), CmpOp::Eq, q(10));
        let c2 = NlConstraint::new(x() - y(), CmpOp::Eq, q(2));
        let mut bx = vec![Interval::new(-100.0, 100.0), Interval::new(-100.0, 100.0)];
        let out = propagate(&[c1, c2], &mut bx, 200);
        assert_ne!(out, Contraction::Empty);
        assert!(bx[0].contains(6.0));
        assert!(bx[1].contains(4.0));
        assert!(bx[0].width() < 200.0, "x narrowed to {}", bx[0]);
        assert!(bx[1].width() < 200.0, "y narrowed to {}", bx[1]);
    }

    #[test]
    fn exp_and_ln_backward() {
        // exp(x) ≤ 1 → x ≤ 0.
        let c = NlConstraint::new(x().exp(), CmpOp::Le, q(1));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].hi() <= 1e-9);
        // ln(x) ≥ 0 → x ≥ 1.
        let c = NlConstraint::new(x().ln(), CmpOp::Ge, q(0));
        let mut bx = vec![Interval::new(0.01, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].lo() >= 1.0 - 1e-9);
    }

    #[test]
    fn abs_backward() {
        // |x| ≤ 3 → x ∈ [-3, 3].
        let c = NlConstraint::new(x().abs(), CmpOp::Le, q(3));
        let mut bx = vec![Interval::new(-100.0, 100.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].lo() >= -3.0 - 1e-9 && bx[0].hi() <= 3.0 + 1e-9);
    }

    #[test]
    fn sin_forward_check_only() {
        // sin(x) ≥ 2 is impossible.
        let c = NlConstraint::new(x().sin(), CmpOp::Ge, q(2));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_eq!(hc4_revise(&c, &mut bx), Contraction::Empty);
        // sin(x) ≤ 1 teaches nothing but must not lose solutions.
        let c = NlConstraint::new(x().sin(), CmpOp::Le, q(1));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        assert_ne!(hc4_revise(&c, &mut bx), Contraction::Empty);
        assert!(bx[0].contains(0.0));
    }

    #[test]
    fn cube_backward() {
        // x³ ≥ 8 → x ≥ 2.
        let c = NlConstraint::new(x().pow(3), CmpOp::Ge, q(8));
        let mut bx = vec![Interval::new(-10.0, 10.0)];
        propagate(&[c], &mut bx, 10);
        assert!(bx[0].lo() >= 2.0 - 1e-6, "{}", bx[0]);
    }
}
