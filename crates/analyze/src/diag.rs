//! Diagnostic data model: severity, stable code, span, message — plus the
//! human (`file:line:col: severity[ABxxx]: message`) and JSON renderings
//! used by `absolver check`.

use absolver_core::Span;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but well-defined input; solving proceeds normally.
    Warning,
    /// Malformed or self-contradictory input.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes of the AB-problem analyzer. The numeric part
/// never changes meaning across releases; retired codes are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// The input failed to parse at all.
    AB001,
    /// A `def` repeats a constraint already attached to the same variable.
    AB002,
    /// A defined Boolean variable occurs in no clause.
    AB003,
    /// `range` directives on one variable contradict each other.
    AB004,
    /// Two Boolean variables carry identical definitions (shadowed def).
    AB005,
    /// A clause is tautological (contains `x` and `¬x`).
    AB006,
    /// Clauses are contradictory (empty clause or complementary units).
    AB007,
    /// A clause mentions a variable beyond the declared header count.
    AB008,
    /// A clause duplicates an earlier clause.
    AB009,
    /// A theory atom is statically true throughout the declared box.
    AB010,
    /// A theory atom is statically false throughout the declared box
    /// (including ranges that empty a constraint's interval).
    AB011,
    /// An arithmetic variable is declared but used in no definition.
    AB012,
}

impl Code {
    /// The default severity this code is reported with.
    pub fn severity(self) -> Severity {
        match self {
            Code::AB001 | Code::AB004 | Code::AB007 => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always `code.severity()` today, kept explicit so future
    /// codes can be promoted per-context).
    pub severity: Severity,
    /// Source position the finding anchors on.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
        }
    }
}

/// The full report of one `check` run, ordered by (line, column, code).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Sorts findings into the canonical (line, column, code) order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.span.line, d.span.col, d.code));
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Returns `true` when no findings were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the compiler-style human form, one finding per line:
    /// `file:line:col: severity[ABxxx]: message`.
    pub fn render_human(&self, file: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{file}:{}:{}: {}[{}]: {}\n",
                d.span.line, d.span.col, d.severity, d.code, d.message
            ));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            file,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Renders the stable JSON form:
    /// `{"errors":N,"warnings":N,"diagnostics":[{code,severity,line,col,message}…]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.errors(),
            self.warnings()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                d.code,
                d.severity,
                d.span.line,
                d.span.col,
                escape_json(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (the diagnostic messages are ASCII).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_and_counts() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            Code::AB007,
            Span::new(4, 1),
            "empty clause",
        ));
        r.push(Diagnostic::new(Code::AB006, Span::new(2, 1), "tautology"));
        r.push(Diagnostic::new(Code::AB009, Span::new(2, 1), "duplicate"));
        r.sort();
        assert_eq!(r.diagnostics[0].code, Code::AB006);
        assert_eq!(r.diagnostics[1].code, Code::AB009);
        assert_eq!(r.diagnostics[2].code, Code::AB007);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn renderings_are_stable() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            Code::AB006,
            Span::new(2, 1),
            "clause is a \"tautology\"",
        ));
        assert_eq!(
            r.render_human("in.dimacs"),
            "in.dimacs:2:1: warning[AB006]: clause is a \"tautology\"\n\
             in.dimacs: 0 error(s), 1 warning(s)\n"
        );
        assert_eq!(
            r.render_json(),
            "{\"errors\":0,\"warnings\":1,\"diagnostics\":[{\"code\":\"AB006\",\
             \"severity\":\"warning\",\"line\":2,\"col\":1,\"message\":\
             \"clause is a \\\"tautology\\\"\"}]}"
        );
    }
}
