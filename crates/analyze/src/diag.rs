//! Diagnostic data model: severity, stable code, span, message — plus the
//! human (`file:line:col: severity[ABxxx]: message`) and JSON renderings
//! used by `absolver check`.

use absolver_core::Span;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but well-defined input; solving proceeds normally.
    Warning,
    /// Malformed or self-contradictory input.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes of the AB-problem analyzer. The numeric part
/// never changes meaning across releases; retired codes are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// The input failed to parse at all.
    AB001,
    /// A `def` repeats a constraint already attached to the same variable.
    AB002,
    /// A defined Boolean variable occurs in no clause.
    AB003,
    /// `range` directives on one variable contradict each other.
    AB004,
    /// Two Boolean variables carry identical definitions (shadowed def).
    AB005,
    /// A clause is tautological (contains `x` and `¬x`).
    AB006,
    /// Clauses are contradictory (empty clause or complementary units).
    AB007,
    /// A clause mentions a variable beyond the declared header count.
    AB008,
    /// A clause duplicates an earlier clause.
    AB009,
    /// A theory atom is statically true throughout the declared box.
    AB010,
    /// A theory atom is statically false throughout the declared box
    /// (including ranges that empty a constraint's interval).
    AB011,
    /// An arithmetic variable is declared but used in no definition.
    AB012,
    /// A constraint is repeated verbatim (same interned id) in the
    /// definitions of two different variables (not wholly identical
    /// definitions — that is [`Code::AB005`]).
    AB013,
    /// A conjunct of a definition is affine-dominated by a sibling
    /// conjunct (`a·x ≤ b` makes `a·x ≤ b'` redundant for `b ≤ b'`).
    AB014,
    /// Two affine conjuncts of one definition contradict each other
    /// (`a·x ≥ l ∧ a·x ≤ u` with `l > u`): the atom can never hold.
    AB015,
    /// A clause is subsumed by a strictly shorter clause (equal clauses
    /// are [`Code::AB009`]).
    AB016,
    /// The interval-dataflow fixpoint refuted the problem: constraints
    /// forced in every model empty an arithmetic domain (or Boolean unit
    /// propagation alone conflicts). The problem is unsatisfiable
    /// without solving.
    AB017,
    /// The dataflow-derived hull of a variable misses its declared
    /// `range` entirely: every possible model lies outside the box the
    /// nonlinear engine will search.
    AB018,
}

impl Code {
    /// The default severity this code is reported with.
    pub fn severity(self) -> Severity {
        match self {
            Code::AB001 | Code::AB004 | Code::AB007 | Code::AB017 => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always `code.severity()` today, kept explicit so future
    /// codes can be promoted per-context).
    pub severity: Severity,
    /// Source position the finding anchors on.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
        }
    }
}

/// The structure block of a report: what the semantic analysis derived
/// about a well-formed problem, independent of any finding. Intervals
/// are pre-rendered strings so the report stays `Eq`-comparable and the
/// JSON stays byte-stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StructureSummary {
    /// Independent connected components of the variable–constraint
    /// incidence graph.
    pub components: usize,
    /// Component sizes (clauses + definitions), in partition order.
    pub component_sizes: Vec<usize>,
    /// Constraints and clauses a subsumption-aware preprocessor would
    /// drop (duplicate conjuncts, dominated conjuncts, subsumed clauses).
    pub subsumed: usize,
    /// `(variable name, interval)` pairs for every arithmetic variable
    /// the dataflow fixpoint bounded more tightly than the entire line.
    pub derived_ranges: Vec<(String, String)>,
}

impl StructureSummary {
    /// Renders the stable JSON object for the report's `structure` key.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"components\":{}", self.components));
        out.push_str(",\"component_sizes\":[");
        for (i, s) in self.component_sizes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push_str(&format!("],\"subsumed\":{}", self.subsumed));
        out.push_str(",\"derived_ranges\":[");
        for (i, (name, range)) in self.derived_ranges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"var\":\"{}\",\"range\":\"{}\"}}",
                escape_json(name),
                escape_json(range)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The full report of one `check` run, ordered by (line, column, code).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
    /// The structure block, present when the input parsed (the semantic
    /// analysis needs a problem to analyze).
    pub structure: Option<StructureSummary>,
}

impl Report {
    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Sorts findings into the canonical (line, column, code) order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.span.line, d.span.col, d.code));
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Returns `true` when no findings were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the compiler-style human form, one finding per line:
    /// `file:line:col: severity[ABxxx]: message`.
    pub fn render_human(&self, file: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{file}:{}:{}: {}[{}]: {}\n",
                d.span.line, d.span.col, d.severity, d.code, d.message
            ));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            file,
            self.errors(),
            self.warnings()
        ));
        if let Some(s) = &self.structure {
            let sizes = s
                .component_sizes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{file}: structure: components={} sizes=[{sizes}] subsumed={}\n",
                s.components, s.subsumed
            ));
            for (name, range) in &s.derived_ranges {
                out.push_str(&format!("{file}: derived: {name} in {range}\n"));
            }
        }
        out
    }

    /// Renders the stable JSON form:
    /// `{"errors":N,"warnings":N,"diagnostics":[{code,severity,line,col,message}…]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.errors(),
            self.warnings()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                d.code,
                d.severity,
                d.span.line,
                d.span.col,
                escape_json(&d.message)
            ));
        }
        out.push(']');
        if let Some(structure) = &self.structure {
            out.push_str(",\"structure\":");
            out.push_str(&structure.render_json());
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (the diagnostic messages are ASCII).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_and_counts() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            Code::AB007,
            Span::new(4, 1),
            "empty clause",
        ));
        r.push(Diagnostic::new(Code::AB006, Span::new(2, 1), "tautology"));
        r.push(Diagnostic::new(Code::AB009, Span::new(2, 1), "duplicate"));
        r.sort();
        assert_eq!(r.diagnostics[0].code, Code::AB006);
        assert_eq!(r.diagnostics[1].code, Code::AB009);
        assert_eq!(r.diagnostics[2].code, Code::AB007);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn renderings_are_stable() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            Code::AB006,
            Span::new(2, 1),
            "clause is a \"tautology\"",
        ));
        assert_eq!(
            r.render_human("in.dimacs"),
            "in.dimacs:2:1: warning[AB006]: clause is a \"tautology\"\n\
             in.dimacs: 0 error(s), 1 warning(s)\n"
        );
        assert_eq!(
            r.render_json(),
            "{\"errors\":0,\"warnings\":1,\"diagnostics\":[{\"code\":\"AB006\",\
             \"severity\":\"warning\",\"line\":2,\"col\":1,\"message\":\
             \"clause is a \\\"tautology\\\"\"}]}"
        );
    }
}
